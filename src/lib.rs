//! # SketchTree
//!
//! Approximate tree-pattern counts over streaming labeled trees — a
//! from-scratch Rust implementation of *SketchTree* (Rao & Moon,
//! ICDE 2006).
//!
//! A [`SketchTree`] synopsis reads a stream of ordered labeled trees (XML
//! documents, parse trees, …) exactly once, keeps a few hundred kilobytes
//! of AMS sketches, and then answers — at any time, for *any* pattern, with
//! provable probabilistic error bounds:
//!
//! * `COUNT_ord(Q)` — how many ordered embeddings of pattern `Q` occurred;
//! * `COUNT(Q)` — unordered embeddings;
//! * totals over sets of patterns, and full `+ − ×` expressions over
//!   counts;
//! * `*` (wildcard) and `//` (descendant) queries through an online
//!   structural summary.
//!
//! ```
//! use sketchtree::{SketchTreeConfig, XmlSketchTree};
//!
//! let mut st = XmlSketchTree::new(SketchTreeConfig::default());
//! st.ingest_xml("<a><b/><c/></a><a><b/></a>").unwrap();
//! let est = st.count_ordered("a(b)").unwrap();
//! assert!(est.abs() <= 10.0); // an approximate count, near 2
//! ```
//!
//! The facade re-exports the substrate crates: [`tree`] (arena trees and
//! extended Prüfer sequences), [`hash`] (k-wise independent signs, Rabin
//! fingerprints, pairing functions), [`xml`] (streaming parser/writer),
//! [`sketch`] (AMS sketch banks, virtual streams, top-k, expressions),
//! [`core`] (EnumTree and the synopsis itself), [`datagen`] (seeded
//! TREEBANK/DBLP-like stream generators), [`server`] (a threaded TCP
//! daemon speaking the `SKTP` wire protocol for remote ingest and online
//! queries) and [`standing`] (registered standing queries with compiled
//! resident plans, re-evaluated once per ingest batch and pushed to
//! subscribers).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub use sketchtree_core as core;
pub use sketchtree_datagen as datagen;
pub use sketchtree_hash as hash;
pub use sketchtree_server as server;
pub use sketchtree_sketch as sketch;
pub use sketchtree_standing as standing;
pub use sketchtree_tree as tree;
pub use sketchtree_xml as xml;

pub use sketchtree_core::bounds::BoundedEstimate;
pub use sketchtree_core::concurrent::SharedSketchTree;
pub use sketchtree_core::exprparse::parse_expr;
pub use sketchtree_core::sketchtree::{CountExpr, SketchTree, SketchTreeConfig, SketchTreeError};
pub use sketchtree_core::snapshot::{read_snapshot, write_snapshot};
pub use sketchtree_core::window::WindowedSketchTree;
pub use sketchtree_sketch::SynopsisConfig;
pub use sketchtree_tree::{LabelTable, Tree};
pub use sketchtree_xml::builder::BuildXmlError;

use sketchtree_xml::{DocumentSplitter, XmlTreeBuilder};

/// A [`SketchTree`] synopsis fed directly from XML text.
///
/// Wraps the core synopsis with an XML-to-tree builder sharing its label
/// table: element names become labels, non-whitespace character data
/// becomes value leaf nodes (so queries can match values, as in the paper's
/// DBLP workload).
pub struct XmlSketchTree {
    inner: SketchTree,
    builder: XmlTreeBuilder,
}

impl XmlSketchTree {
    /// Creates an empty synopsis.
    pub fn new(config: SketchTreeConfig) -> Self {
        Self {
            inner: SketchTree::new(config),
            builder: XmlTreeBuilder::default(),
        }
    }

    /// Parses `xml` (one document or a forest of top-level elements) and
    /// ingests every tree.  Returns the number of trees ingested.
    pub fn ingest_xml(&mut self, xml: &str) -> Result<usize, BuildXmlError> {
        let trees = self.builder.parse_forest(xml, self.inner.labels_mut())?;
        let n = trees.len();
        for t in &trees {
            self.inner.ingest(t);
        }
        Ok(n)
    }

    /// The underlying synopsis.
    pub fn inner(&self) -> &SketchTree {
        &self.inner
    }

    /// Mutable access to the underlying synopsis.
    pub fn inner_mut(&mut self) -> &mut SketchTree {
        &mut self.inner
    }

    /// Streams documents from a reader, one top-level element at a time,
    /// with memory bounded by the largest single document.  Returns the
    /// number of trees ingested.
    pub fn ingest_reader(
        &mut self,
        reader: impl std::io::BufRead,
    ) -> Result<usize, Box<dyn std::error::Error>> {
        let mut splitter = DocumentSplitter::new(reader);
        let mut n = 0;
        while let Some(doc) = splitter.next_document()? {
            let tree = self.builder.parse_document(&doc, self.inner.labels_mut())?;
            self.inner.ingest(&tree);
            n += 1;
        }
        Ok(n)
    }
}

impl std::ops::Deref for XmlSketchTree {
    type Target = SketchTree;
    fn deref(&self) -> &SketchTree {
        &self.inner
    }
}

impl std::ops::DerefMut for XmlSketchTree {
    fn deref_mut(&mut self) -> &mut SketchTree {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_facade_end_to_end() {
        let config = SketchTreeConfig {
            track_exact: true,
            ..SketchTreeConfig::default()
        };
        let mut st = XmlSketchTree::new(config);
        let mut doc = String::new();
        for _ in 0..20 {
            doc.push_str("<article><author>knuth</author><year>1968</year></article>");
        }
        for _ in 0..5 {
            doc.push_str("<article><author>dijkstra</author><year>1972</year></article>");
        }
        let n = st.ingest_xml(&doc).unwrap();
        assert_eq!(n, 25);
        assert_eq!(st.exact_count_ordered("author(knuth)").unwrap(), 20);
        assert_eq!(st.exact_count_ordered("article(author(knuth))").unwrap(), 20);
        let est = st.count_ordered("author(knuth)").unwrap();
        assert!((est - 20.0).abs() < 12.0, "est {est}");
    }

    #[test]
    fn xml_errors_propagate() {
        let mut st = XmlSketchTree::new(SketchTreeConfig::default());
        assert!(st.ingest_xml("<a><b></a>").is_err());
    }
}
