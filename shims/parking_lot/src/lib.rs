//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *API subset it actually uses* as thin wrappers
//! over `std::sync`.  Semantics match parking_lot where the workspace
//! depends on them: no lock poisoning (a panicking holder does not wedge
//! later users), guards deref to the protected value, and `RwLock` allows
//! many concurrent readers.
//!
//! Swap back to the real crate by restoring the version requirement in
//! the workspace `Cargo.toml`; no source changes are needed.

use std::ops::{Deref, DerefMut};

/// A reader-writer lock (std-backed, poison-free API).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A mutual-exclusion lock (std-backed, poison-free API).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_many_readers_one_writer() {
        let lock = Arc::new(RwLock::new(0u64));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _ = *lock.read();
                    }
                })
            })
            .collect();
        for _ in 0..1000 {
            *lock.write() += 1;
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*lock.read(), 1000);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let lock = Arc::new(Mutex::new(7));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: the lock is usable afterwards.
        assert_eq!(*lock.lock(), 7);
    }
}
