//! Offline shim for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the benchmarking surface its `benches/` use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: warm up briefly, then time a
//! fixed wall-clock window and report mean ns/iter plus derived
//! throughput as plain text.  No statistics, plots or baselines — the
//! numbers are for quick relative comparisons, not publication.  When
//! invoked with `--test` (as `cargo test --benches` does) each benchmark
//! body runs exactly once so CI verifies the code without paying for
//! measurement.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a benchmark processes per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (trees, values, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark's display identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times one closure; passed to benchmark bodies.
pub struct Bencher {
    mode: Mode,
    /// (iterations, total) captured by [`Bencher::iter`].
    result: Option<(u64, Duration)>,
}

#[derive(Clone, Copy)]
enum Mode {
    /// Run the body once — compile/behavior check only.
    Test,
    /// Warm up then measure for roughly this long.
    Measure(Duration),
}

impl Bencher {
    /// Calls `routine` repeatedly and records mean time per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.result = Some((1, Duration::ZERO));
            }
            Mode::Measure(budget) => {
                // Warm-up: run until ~10% of the budget is spent, counting
                // how many iterations fit so the timed loop can batch.
                let warm_budget = budget / 10 + Duration::from_millis(1);
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_start.elapsed() < warm_budget {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
                let target = ((budget.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(1, 1 << 24);
                let start = Instant::now();
                for _ in 0..target {
                    black_box(routine());
                }
                self.result = Some((target, start.elapsed()));
            }
        }
    }

    /// Like [`Bencher::iter`], but re-creates the input with `setup`
    /// before every call; only `routine` is timed.
    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        match self.mode {
            Mode::Test => {
                black_box(routine(setup()));
                self.result = Some((1, Duration::ZERO));
            }
            Mode::Measure(budget) => {
                // Warm up once to size the timed loop, then time only the
                // routine, excluding setup, accumulating across calls.
                let warm_start = Instant::now();
                black_box(routine(setup()));
                let per_iter = warm_start.elapsed();
                let target = ((budget.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(1, 1 << 16);
                let mut total = Duration::ZERO;
                for _ in 0..target {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed();
                }
                self.result = Some((target, total));
            }
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        Self {
            mode: if test_mode {
                Mode::Test
            } else {
                Mode::Measure(Duration::from_millis(300))
            },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.mode, &id.to_string(), None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes runs by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets per-iteration units for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.mode, &label, self.throughput, f);
        self
    }

    /// Runs a benchmark receiving an input by reference.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.mode, &label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (report lines are printed as benchmarks run).
    pub fn finish(self) {}
}

fn run_one(mode: Mode, label: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mode, result: None };
    f(&mut bencher);
    let Some((iters, total)) = bencher.result else {
        println!("{label:<50} (no iter() call)");
        return;
    };
    match mode {
        Mode::Test => println!("{label:<50} ok (test mode, 1 iteration)"),
        Mode::Measure(_) => {
            let ns = total.as_nanos() as f64 / iters as f64;
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / (ns * 1e-9)),
                Throughput::Bytes(n) => {
                    format!("  {:>12.1} MiB/s", n as f64 / (ns * 1e-9) / (1024.0 * 1024.0))
                }
            });
            println!(
                "{label:<50} {ns:>14.1} ns/iter ({iters} iters){}",
                rate.unwrap_or_default()
            );
        }
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            mode: Mode::Measure(Duration::from_millis(5)),
            result: None,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        let (iters, total) = b.result.expect("iter ran");
        assert!(iters >= 1);
        assert!(count >= iters);
        assert!(total > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            mode: Mode::Test,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
