//! Generation of strings matching a regex subset.
//!
//! Supports the constructs the workspace's tests use: literal chars,
//! escapes (`\\`, `\[`, …), `\PC` (any printable character), character
//! classes with ranges (`[a-zA-Z0-9 .,]`), groups, alternation (`|`) and
//! the quantifiers `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`. Unsupported
//! constructs panic with the offending pattern so a new test fails
//! loudly instead of silently testing nothing.

use crate::test_runner::TestRng;

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let ast = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        pattern,
    }
    .parse();
    let mut out = String::new();
    emit(&ast, rng, &mut out);
    out
}

/// Unbounded quantifiers cap their repetition here.
const UNBOUNDED_CAP: u32 = 12;

#[derive(Debug)]
enum Ast {
    /// Alternatives, one chosen uniformly.
    Alt(Vec<Ast>),
    /// Items in sequence, each with a repetition count range.
    Seq(Vec<(Ast, u32, u32)>),
    Lit(char),
    /// Inclusive char ranges; singletons are `(c, c)`.
    Class(Vec<(char, char)>),
    /// `\PC`: any printable character.
    Printable,
}

fn emit(ast: &Ast, rng: &mut TestRng, out: &mut String) {
    match ast {
        Ast::Alt(options) => {
            let i = rng.below(options.len() as u64) as usize;
            emit(&options[i], rng, out);
        }
        Ast::Seq(items) => {
            for (item, lo, hi) in items {
                let n = lo + rng.below(u64::from(hi - lo) + 1) as u32;
                for _ in 0..n {
                    emit(item, rng, out);
                }
            }
        }
        Ast::Lit(c) => out.push(*c),
        Ast::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|&(a, b)| u64::from(b) - u64::from(a) + 1)
                .sum();
            let mut i = rng.below(total);
            for &(a, b) in ranges {
                let span = u64::from(b) - u64::from(a) + 1;
                if i < span {
                    // Skip the surrogate gap if a range crosses it.
                    let code = u32::try_from(u64::from(a) + i).expect("range in char space");
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    return;
                }
                i -= span;
            }
            unreachable!("class selection within total");
        }
        Ast::Printable => {
            // Mostly printable ASCII, occasionally multi-byte chars so
            // UTF-8 handling gets exercised.
            if rng.chance(1, 10) {
                const EXOTIC: [char; 8] = ['é', 'ß', 'λ', 'Ω', '中', '日', '\u{00A0}', '🦀'];
                out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
            } else {
                out.push(char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).expect("ascii"));
            }
        }
    }
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl Parser<'_> {
    fn parse(mut self) -> Ast {
        let ast = self.parse_alt();
        assert!(
            self.pos == self.chars.len(),
            "unsupported regex construct at byte {} of {:?}",
            self.pos,
            self.pattern
        );
        ast
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!(
            "regex shim: unsupported {what} at position {} in {:?}",
            self.pos, self.pattern
        );
    }

    fn parse_alt(&mut self) -> Ast {
        let mut options = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            options.push(self.parse_seq());
        }
        if options.len() == 1 {
            options.pop().expect("one option")
        } else {
            Ast::Alt(options)
        }
    }

    fn parse_seq(&mut self) -> Ast {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.parse_atom();
            let (lo, hi) = self.parse_quantifier();
            items.push((atom, lo, hi));
        }
        Ast::Seq(items)
    }

    fn parse_atom(&mut self) -> Ast {
        match self.bump() {
            '\\' => self.parse_escape(),
            '[' => self.parse_class(),
            '(' => {
                let inner = self.parse_alt();
                if self.peek() != Some(')') {
                    self.unsupported("unclosed group");
                }
                self.bump();
                inner
            }
            '.' => Ast::Printable,
            c @ ('*' | '+' | '?' | '{') => {
                self.unsupported(&format!("dangling quantifier '{c}'"))
            }
            c => Ast::Lit(c),
        }
    }

    fn parse_escape(&mut self) -> Ast {
        match self.peek() {
            None => self.unsupported("trailing backslash"),
            Some('P') => {
                // Only the \PC (printable) category is used here.
                self.bump();
                if self.peek() == Some('C') {
                    self.bump();
                    Ast::Printable
                } else {
                    self.unsupported("unicode category other than \\PC")
                }
            }
            Some('d') => {
                self.bump();
                Ast::Class(vec![('0', '9')])
            }
            Some('w') => {
                self.bump();
                Ast::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')])
            }
            Some('s') => {
                self.bump();
                Ast::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')])
            }
            Some('n') => {
                self.bump();
                Ast::Lit('\n')
            }
            Some('t') => {
                self.bump();
                Ast::Lit('\t')
            }
            Some(_) => Ast::Lit(self.bump()),
        }
    }

    fn parse_class(&mut self) -> Ast {
        if self.peek() == Some('^') {
            self.unsupported("negated character class");
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let c = match self.peek() {
                None => self.unsupported("unclosed character class"),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('\\') => {
                    self.bump();
                    if self.peek().is_none() {
                        self.unsupported("trailing backslash in class");
                    }
                    self.bump()
                }
                Some(_) => self.bump(),
            };
            // Range if a '-' follows and is not the closing position.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi = match self.peek() {
                    None => self.unsupported("unclosed range in class"),
                    Some('\\') => {
                        self.bump();
                        self.bump()
                    }
                    Some(_) => self.bump(),
                };
                assert!(c <= hi, "inverted class range {c}-{hi}");
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        Ast::Class(ranges)
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.peek() {
            Some('*') => {
                self.bump();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.bump();
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                self.bump();
                (0, 1)
            }
            Some('{') => {
                self.bump();
                let lo = self.parse_number();
                match self.peek() {
                    Some('}') => {
                        self.bump();
                        (lo, lo)
                    }
                    Some(',') => {
                        self.bump();
                        let hi = if self.peek() == Some('}') {
                            lo + UNBOUNDED_CAP
                        } else {
                            self.parse_number()
                        };
                        if self.peek() != Some('}') {
                            self.unsupported("unclosed {} quantifier");
                        }
                        self.bump();
                        assert!(lo <= hi, "inverted quantifier {{{lo},{hi}}}");
                        (lo, hi)
                    }
                    _ => self.unsupported("malformed {} quantifier"),
                }
            }
            _ => (1, 1),
        }
    }

    fn parse_number(&mut self) -> u32 {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            self.unsupported("expected number in quantifier");
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .expect("digits parse")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pattern: &str, verify: impl Fn(&str) -> bool) {
        let mut rng = TestRng::from_seed(1234);
        for _ in 0..500 {
            let s = generate_matching(pattern, &mut rng);
            assert!(verify(&s), "pattern {pattern:?} generated {s:?}");
        }
    }

    #[test]
    fn printable_star() {
        check("\\PC*", |s| s.chars().all(|c| !c.is_control()));
    }

    #[test]
    fn soup_class() {
        check("[<>/a-z \"'!?\\[\\]=-]{0,120}", |s| {
            s.len() <= 480
                && s.chars().all(|c| {
                    "<>/\"'!?[]=- ".contains(c) || c.is_ascii_lowercase()
                })
        });
    }

    #[test]
    fn query_pattern_shape() {
        check("[A-Z]{1,3}(\\([A-Z]{1,3}(,[A-Z]{1,3}){0,2}\\))?", |s| {
            let head_len = s.chars().take_while(|c| c.is_ascii_uppercase()).count();
            (1..=3).contains(&head_len)
                && (s.chars().count() == head_len
                    || (s[s.char_indices().nth(head_len).unwrap().0..].starts_with('(')
                        && s.ends_with(')')))
        });
    }

    #[test]
    fn text_class() {
        check("[a-zA-Z0-9 .,&<>']{1,12}", |s| {
            let n = s.chars().count();
            (1..=12).contains(&n)
        });
    }

    #[test]
    fn alternation_and_plus() {
        check("(ab|cd)+x?", |s| {
            let stripped = s.strip_suffix('x').unwrap_or(s);
            !stripped.is_empty()
                && stripped.len() % 2 == 0
                && stripped
                    .as_bytes()
                    .chunks(2)
                    .all(|p| p == b"ab" || p == b"cd")
        });
    }

    #[test]
    fn exact_repetition() {
        check("a{4}", |s| s == "aaaa");
    }
}
