//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

/// A generator of values of one type.
///
/// Unlike upstream there is no shrinking; a strategy is just a seeded
/// sampler plus the combinators the workspace uses.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value: fmt::Debug + 'static;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `f` receives a strategy for the next depth
    /// down and returns the expanded level. `depth` bounds recursion;
    /// the other two parameters (upstream's size hints) are accepted for
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            let leaf = base.clone();
            // Mix in leaves at every level so generated depths vary.
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.chance(1, 4) {
                    leaf.new_value(rng)
                } else {
                    deeper.new_value(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy::from_fn(move |rng| self.new_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self { sample: Rc::new(f) }
    }
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug + 'static,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of one value type ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T: fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: fmt::Debug + Sized + 'static {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` — `any::<u64>()` etc.
pub struct Any<T>(PhantomData<T>);

/// Canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                // Bias 1-in-8 toward boundary values: cheap edge coverage
                // in lieu of shrinking.
                if rng.chance(1, 8) {
                    const EDGES: [$t; 5] = [0, 1, 2, <$t>::MAX, <$t>::MAX - 1];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                if rng.chance(1, 8) {
                    const EDGES: [$t; 6] = [0, 1, -1, 2, <$t>::MAX, <$t>::MIN];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite, moderately sized values.
        (rng.f64() - 0.5) * 2e6
    }
}

// ---- integer and float range strategies ----

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).new_value(rng)
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

// ---- tuple strategies ----

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---- string strategies from regex-subset patterns ----

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

// ---- collections ----

/// Collection strategies (`prop::collection` facade).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Size specifications accepted by the collection strategies.
    pub trait IntoSizeRange: 'static {
        /// Draws a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: Box::new(size),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn IntoSizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `BTreeMap`s with `size` *attempted* insertions (duplicate keys
    /// collapse, so the result can be smaller — same as acceptable
    /// upstream behavior for the tests here).
    pub fn btree_map<K, V>(keys: K, values: V, size: impl IntoSizeRange) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: Box::new(size),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Box<dyn IntoSizeRange>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.keys.new_value(rng), self.values.new_value(rng));
            }
            out
        }
    }

    /// `BTreeSet`s with `size` attempted insertions.
    pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: Box::new(size),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Box<dyn IntoSizeRange>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n {
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }
}
