//! Case driver and RNG for the proptest shim.

use crate::ProptestConfig;
use std::fmt;

/// Why a single property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed; the runner panics with this message.
    Fail(String),
    /// The inputs were rejected (`prop_assume!`); the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (discard) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Outcome of one property case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The shim's generation RNG: xoshiro256++ seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expands a 64-bit seed to full state.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn seed_for(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Drives one property: generates inputs, runs the body, panics on the
/// first failure with a reproducible description of the inputs.
pub fn run_cases<V: fmt::Debug>(
    name: &str,
    config: ProptestConfig,
    mut generate: impl FnMut(&mut TestRng) -> V,
    mut run: impl FnMut(V) -> TestCaseResult,
) {
    let mut rng = TestRng::from_seed(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    while accepted < config.cases {
        let value = generate(&mut rng);
        let desc = format!("{value:?}");
        match run(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > u64::from(config.cases) * 32 + 1024 {
                    panic!("property '{name}': too many rejected cases ({rejected})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{name}' failed after {accepted} passing case(s): {msg}\n  \
                     input: {desc}\n  \
                     (set PROPTEST_SEED={} to pin this sequence)",
                    seed_for(name)
                );
            }
        }
    }
}
