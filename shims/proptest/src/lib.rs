//! Offline shim for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the property-testing surface its tests actually use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_recursive` / `boxed`,
//! integer and float range strategies, regex-subset string strategies,
//! tuple strategies, `prop::collection::{vec, btree_map, btree_set}`,
//! [`prop_oneof!`], `any::<T>()`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream, deliberate for size:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering; re-running reproduces it because the RNG is
//!   seeded from the test name (override with `PROPTEST_SEED`).
//! * **Regex strategies** support the subset used here: literals,
//!   escapes, `\PC` (printable), classes with ranges, groups,
//!   alternation, and `* + ? {n} {n,m} {n,}` quantifiers.
//! * Sizes/probabilities are tuned for small structured inputs, not
//!   configurable per-strategy.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{TestCaseError, TestCaseResult, TestRng};

/// Runtime knobs for [`proptest!`] blocks.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// `prop::collection` and friends, mirroring upstream's `prop` facade.
pub mod prop {
    /// Strategies for collections.
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, btree_set, vec};
    }
}

/// The glob import every test file uses.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(any::<u64>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                stringify!($name),
                $cfg,
                |__rng| ( $( $crate::Strategy::new_value(&($strat), __rng), )* ),
                |__vals| {
                    let ( $($arg,)* ) = __vals;
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Asserts within a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __l = &$a;
        let __r = &$b;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __l, __r
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __l = &$a;
        let __r = &$b;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Inequality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __l = &$a;
        let __r = &$b;
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a), stringify!($b), __l
                ),
            ));
        }
    }};
}

/// Discards the current case (does not count toward `cases`) if `cond`
/// is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::Strategy::boxed($s) ),+ ])
    };
}
