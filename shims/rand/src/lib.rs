//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the slice of `rand` it uses: a seedable `StdRng`, the [`Rng`] trait
//! with `gen`, `gen_bool` and `gen_range` over integer ranges, and
//! blanket `&mut R` forwarding.  `StdRng` here is xoshiro256++ seeded
//! through SplitMix64 — different numbers than upstream's ChaCha12, but
//! every consumer in this workspace only relies on *seeded determinism*
//! and reasonable equidistribution, both of which hold.

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of rand 0.8's `Rng` used by this workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (see [`Standard`] impls).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (panics if `p` is outside `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        sample_f64(self) < p
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

fn sample_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        sample_f64(rng)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                // Offset arithmetic in the unsigned twin handles signed
                // ranges and full-width spans alike.
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let v = if inclusive {
                    assert!(lo <= hi, "empty gen_range");
                    if span == <$u>::MAX as u64 {
                        return rng.next_u64() as $t;
                    }
                    uniform_u64(rng, span + 1)
                } else {
                    assert!(lo < hi, "empty gen_range");
                    uniform_u64(rng, span)
                };
                ((lo as $u).wrapping_add(v as $u)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "empty gen_range");
        lo + sample_f64(rng) * (hi - lo)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
///
/// The single blanket impl per range shape (rather than per-type impls)
/// matters: it ties the range's element type directly to `T`, so integer
/// literal fallback works exactly as with upstream rand
/// (`gen_range(0..5)` infers `i32`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform draw from `[0, span)` (`span > 0`) by rejection, bias-free.
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection zone: multiples of span fit `zone` times in 2^64.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Produces different streams than upstream rand's ChaCha12-based
    /// `StdRng`; callers here depend only on seeded determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_u64_unbiased_small_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 600, "{counts:?}");
        }
    }
}
