#!/usr/bin/env sh
# Full pre-merge gate: build, test, doc-build, doc-link check, then run
# the workspace's own static analyzer (sketchtree-lint).  Exits non-zero
# on the first failure, and on any undocumented lint finding — see
# docs/lints.md for the rules and for how to document a deliberate
# exception.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --all-targets"
cargo build --workspace --all-targets

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> doc link check"
# The checker is an ordinary test (tests/doc_links.rs) so it also runs in
# the plain test sweep above; invoking it by name here makes a broken
# link fail the gate with its own banner instead of drowning in the
# workspace test noise.
cargo test --quiet -p sketchtree --test doc_links

echo "==> parallel-ingest parity (SKETCHTREE_INGEST_THREADS=1 and =8)"
# The sharded pipeline must produce a snapshot byte-identical to
# sequential ingest at any width.  The proptest already sweeps explicit
# thread counts internally; forcing the *default* width through the
# environment additionally pins the env-driven path at both extremes.
# RUST_TEST_THREADS=1 keeps the process-global env var race-free.
RUST_TEST_THREADS=1 SKETCHTREE_INGEST_THREADS=1 \
    cargo test --quiet -p sketchtree-core --lib snapshot_parity_across_thread_counts
RUST_TEST_THREADS=1 SKETCHTREE_INGEST_THREADS=8 \
    cargo test --quiet -p sketchtree-core --lib snapshot_parity_across_thread_counts

echo "==> sketchtree-lint"
# --show-allowed keeps the documented exceptions visible in CI logs so
# reviewers can see what has been excused and why.
cargo run --quiet -p sketchtree-lint -- --show-allowed

echo "ok: build + tests + lint all clean"
