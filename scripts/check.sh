#!/usr/bin/env sh
# Full pre-merge gate: build, test, doc-build, doc-link check, then run
# the workspace's own static analyzer (sketchtree-lint).  Exits non-zero
# on the first failure, and on any undocumented lint finding — see
# docs/lints.md for the rules and for how to document a deliberate
# exception.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --all-targets"
cargo build --workspace --all-targets

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> doc link check"
# The checker is an ordinary test (tests/doc_links.rs) so it also runs in
# the plain test sweep above; invoking it by name here makes a broken
# link fail the gate with its own banner instead of drowning in the
# workspace test noise.
cargo test --quiet -p sketchtree --test doc_links

echo "==> parallel-ingest parity (SKETCHTREE_INGEST_THREADS=1 and =8)"
# The sharded pipeline must produce a snapshot byte-identical to
# sequential ingest at any width.  The proptest already sweeps explicit
# thread counts internally; forcing the *default* width through the
# environment additionally pins the env-driven path at both extremes.
# RUST_TEST_THREADS=1 keeps the process-global env var race-free.
RUST_TEST_THREADS=1 SKETCHTREE_INGEST_THREADS=1 \
    cargo test --quiet -p sketchtree-core --lib snapshot_parity_across_thread_counts
RUST_TEST_THREADS=1 SKETCHTREE_INGEST_THREADS=8 \
    cargo test --quiet -p sketchtree-core --lib snapshot_parity_across_thread_counts

echo "==> hotpath-parity (allocation-free ingest path == legacy path, 1 and 8 threads)"
# The wire-speed insert path (sign cache, fused restore delta, power-basis
# xi evaluation, flattened counter slab) must stay bit-identical to the
# straightforward per-element path it replaced.  The lib test compares the
# fast path against the legacy observer path element by element, at both
# env-driven ingest widths; together with the snapshot-parity sweep above
# this pins the rewrite to byte-identical synopses at 1 and 8 threads.
# RUST_TEST_THREADS=1 keeps the process-global env var race-free.
RUST_TEST_THREADS=1 SKETCHTREE_INGEST_THREADS=1 \
    cargo test --quiet -p sketchtree-core --lib fast_ingest_path_matches_legacy_observer_path
RUST_TEST_THREADS=1 SKETCHTREE_INGEST_THREADS=8 \
    cargo test --quiet -p sketchtree-core --lib fast_ingest_path_matches_legacy_observer_path

echo "==> synopsis merge parity (shard-split vs sequential ingest)"
# Merging shard synopses must be byte-identical to sequential ingest
# with top-k off (and totals-preserving with it on), across random
# split points and label interning orders.  Both the property test and
# the cross-interning unit test run in the sweep above; naming them
# here gives merge regressions their own banner.
cargo test --quiet -p sketchtree-core --test core_props merge_parity_property
cargo test --quiet -p sketchtree-core --lib merge_is_exact_across_different_interning_orders

echo "==> standing-query parity (pushed == ad-hoc, bit-for-bit)"
# A pushed EstimateUpdate must be bit-identical to an ad-hoc COUNT of
# the same pattern at the same synopsis epoch.  The property test runs
# in the sweep above; naming it here gives any divergence between the
# compiled-plan path and the ad-hoc path its own banner.
cargo test --quiet -p sketchtree-standing --test parity \
    pushed_estimates_are_bit_identical_to_adhoc_at_same_epoch

echo "==> loadgen-smoke (mixed-load harness end-to-end + BENCH schema)"
# One short open-loop run against an in-process server: the emitted
# report must pass the BENCH_loadgen_*.json schema (every percentile
# field present), carry non-empty histograms for every op kind, and show
# monotone epochs on pushed standing-query updates.  The schema unit
# tests prove the validator still *rejects* malformed reports — a
# validator that accepts anything is a green gate that checks nothing.
cargo test --quiet -p sketchtree --test loadgen_smoke
cargo test --quiet -p sketchtree-loadgen schema_
cargo test --quiet -p sketchtree-loadgen missing_

echo "==> wal-recovery (crash-injection: any truncation point, bit-identical)"
# Power-cut drills over the durability subsystem: the truncation-sweep
# proptest (recovered synopsis byte-identical to the acked prefix at ANY
# cut byte), checkpoint-atomicity regressions (garbage tmp never goes
# live), corrupt-checkpoint quarantine + rebuild-from-WAL, and the
# end-to-end abort/restart parity drill.  All run in the sweep above;
# naming the suite here gives a durability regression its own banner.
cargo test --quiet -p sketchtree-server --test crash_injection
cargo test --quiet -p sketchtree-wal --lib every_truncation_point_recovers_the_intact_prefix

echo "==> workspace lint gates (L6 lock-order, L7 blocking, L8 epoch, L9 spec-drift)"
# The graph-aware workspace rules each get a named gate so a regression
# fails under its own banner, and the seeded-bug self-tests prove each
# pass still *fires* — a silently dead pass is a green gate that
# enforces nothing.
cargo test --quiet -p sketchtree --test lint_clean l6_lock_order_is_clean
cargo test --quiet -p sketchtree --test lint_clean l7_blocking_under_lock_is_clean
cargo test --quiet -p sketchtree --test lint_clean l8_epoch_determinism_is_clean
cargo test --quiet -p sketchtree --test lint_clean l9_spec_drift_is_clean
cargo test --quiet -p sketchtree-lint --test seeded_bugs l6_
cargo test --quiet -p sketchtree-lint --test seeded_bugs l7_
cargo test --quiet -p sketchtree-lint --test seeded_bugs l8_
cargo test --quiet -p sketchtree-lint --test seeded_bugs l9_

echo "==> sketchtree-lint"
# --show-allowed keeps the documented exceptions visible in CI logs so
# reviewers can see what has been excused and why.
cargo run --quiet -p sketchtree-lint -- --show-allowed

echo "ok: build + tests + lint all clean"
