//! Quickstart: stream XML documents through a SketchTree synopsis and ask
//! for approximate pattern counts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sketchtree::{SketchTreeConfig, SynopsisConfig, XmlSketchTree};

fn main() {
    // A synopsis that tracks exact counts alongside the sketches so this
    // example can show the approximation error. Production deployments
    // leave `track_exact` off — the whole point is not to pay for exact
    // counters.
    let config = SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 50,
            s2: 7,
            virtual_streams: 229,
            topk: 20,
            independence: 5, // allows product expressions of two counts
            ..SynopsisConfig::default()
        },
        track_exact: true,
        ..SketchTreeConfig::default()
    };
    let mut st = XmlSketchTree::new(config);

    // Simulate a stream of bibliography-ish documents arriving one by one.
    let mut stream = String::new();
    for i in 0..3000 {
        let author = match i % 10 {
            0..=4 => "smith",   // a heavy hitter
            5..=7 => "jones",
            8 => "garcia",
            _ => "ito",
        };
        let year = 1990 + (i % 8);
        stream.push_str(&format!(
            "<article><author>{author}</author><year>{year}</year></article>"
        ));
    }
    let trees = st.ingest_xml(&stream).expect("well-formed stream");
    println!("ingested {trees} documents");
    println!(
        "  pattern instances sketched : {}",
        st.patterns_processed()
    );
    println!(
        "  synopsis memory            : {} KB",
        st.memory_bytes() / 1024
    );
    println!(
        "  exact-counter memory       : {} B   (deterministic counters grow with distinct patterns)",
        st.exact().expect("tracking on").memory_bytes()
    );

    // Ordered pattern counts: COUNT_ord(Q), paper Theorem 1.
    println!("\nordered pattern counts:");
    for q in [
        "author(smith)",
        "article(author(smith))",
        "article(author,year)",
        "year(1995)",
    ] {
        let exact = st.exact_count_ordered(q).expect("tracking on");
        let approx = st.count_ordered(q).expect("valid pattern");
        println!("  COUNT_ord({q:<28}) = {approx:>9.1}   (exact {exact})");
    }

    // A label the stream has never seen is exactly zero — no estimation
    // noise, the label table proves absence.
    let ghost = st.count_ordered("article(author(knuth))").expect("valid");
    println!("  COUNT_ord(article(author(knuth))) = {ghost:>9.1}   (label never seen)");

    // Unordered counts (Section 3.3) sum over all ordered arrangements.
    let unordered = st.count_unordered("article(year,author)").expect("valid");
    let exact_u = st.exact_count_unordered("article(year,author)").expect("ok");
    println!("\nunordered count:");
    println!("  COUNT(article{{year,author}})      = {unordered:>9.1}   (exact {exact_u})");

    // Expressions (Section 4): how many more smith-articles than
    // jones-articles are there?
    use sketchtree::CountExpr;
    let diff = CountExpr::ordered("author(smith)").sub(CountExpr::ordered("author(jones)"));
    println!("\nexpression:");
    println!(
        "  COUNT(smith) - COUNT(jones)       = {:>9.1}   (exact {})",
        st.estimate(&diff).expect("valid"),
        st.exact_value(&diff).expect("ok"),
    );

    // Wildcards via the structural summary (Section 6.2).
    let wild = st.count_ordered("article(*(smith))").expect("valid");
    println!("\nwildcard via structural summary:");
    println!("  COUNT_ord(article(*(smith)))      = {wild:>9.1}");
}
