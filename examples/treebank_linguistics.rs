//! The paper's linguistics use cases (Examples 4–7) on a treebank stream.
//!
//! * **Example 4** — free word order: count subject-verb-object style
//!   arrangements with an *unordered* pattern versus each ordered variant.
//! * **Example 5** — question counting: how many `who`-style questions does
//!   the treebank contain (sum of distinct patterns, Theorem 2).
//! * **Example 6** — negated context: occurrences of a clause *not* under a
//!   question root (difference of counts).
//! * **Example 7** — PCFG rule probabilities: products and ratios of rule
//!   (pattern) counts.
//!
//! ```sh
//! cargo run --release --example treebank_linguistics
//! ```

use sketchtree::datagen::TreebankGen;
use sketchtree::{CountExpr, SketchTree, SketchTreeConfig, SynopsisConfig};

fn main() {
    let config = SketchTreeConfig {
        max_pattern_edges: 4,
        synopsis: SynopsisConfig {
            s1: 50,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            independence: 5,
            ..SynopsisConfig::default()
        },
        track_exact: true,
        ..SketchTreeConfig::default()
    };
    let mut st = SketchTree::new(config);

    // Stream 4,000 parse trees.
    let mut gen = TreebankGen::new(77, st.labels_mut());
    let trees: Vec<_> = (0..4000).map(|_| gen.next_tree()).collect();
    for t in &trees {
        st.ingest(t);
    }
    println!(
        "streamed {} parse trees ({} pattern instances, synopsis {} KB)",
        st.trees_processed(),
        st.patterns_processed(),
        st.memory_bytes() / 1024
    );

    let show = |st: &SketchTree, label: &str, q: &str| {
        let approx = st.count_ordered(q).expect("valid");
        let exact = st.exact_count_ordered(q).expect("tracking on");
        println!("  {label:<34} {approx:>10.1}  (exact {exact})");
    };

    // Example 4: free word order. An S with NP before VP versus an S
    // containing both in either order.
    println!("\nExample 4 — word order:");
    show(&st, "COUNT_ord(S(NP,VP))", "S(NP,VP)");
    let unordered = st.count_unordered("S(NP,VP)").expect("valid");
    let exact_u = st.exact_count_unordered("S(NP,VP)").expect("ok");
    println!("  COUNT(S{{NP,VP}}) unordered          {unordered:>10.1}  (exact {exact_u})");
    println!("  (a free-word-order language would show the unordered count well above the ordered one)");

    // Example 5: counting questions. WH-questions are SBARQ(WHNP|WRB, SQ);
    // count the union of the distinct forms — a Theorem 2 sum.
    println!("\nExample 5 — counting questions:");
    let who = CountExpr::ordered("SBARQ(WHNP,SQ)").add(CountExpr::ordered("SBARQ(WRB,SQ)"));
    println!(
        "  #questions (WHNP|WRB under SBARQ)  {:>10.1}  (exact {})",
        st.estimate(&who).expect("valid"),
        st.exact_value(&who).expect("ok"),
    );

    // Example 6: occurrences of SQ(VBZ,NP,NP) whose parent is NOT SBARQ:
    // COUNT(SQ(VBZ,NP,NP)) − COUNT(SBARQ(SQ(VBZ,NP,NP))).
    println!("\nExample 6 — negated context:");
    let bare = CountExpr::ordered("SQ(VBZ,NP,NP)");
    let under_q = CountExpr::ordered("SBARQ(SQ(VBZ,NP,NP))");
    let not_under = bare.sub(under_q);
    println!(
        "  COUNT(SQ...) - COUNT(SBARQ(SQ...)) {:>10.1}  (exact {})",
        st.estimate(&not_under).expect("valid"),
        st.exact_value(&not_under).expect("ok"),
    );

    // Example 7: PCFG probabilities. P(S → NP VP) is the ratio of the
    // rule-pattern count to all S-rules; the product of two rule counts is
    // the paper's example of a product expression.
    println!("\nExample 7 — PCFG rules:");
    show(&st, "COUNT(S -> NP VP)", "S(NP,VP)");
    show(&st, "COUNT(VP -> VBD NP)", "VP(VBD,NP)");
    let product = CountExpr::ordered("S(NP,VP)").mul(CountExpr::ordered("VP(VBD,NP)"));
    println!(
        "  product of the two rule counts     {:>10.0}  (exact {})",
        st.estimate(&product).expect("valid"),
        st.exact_value(&product).expect("ok"),
    );
    // Rule probability estimate: count(S→NP VP) / count(any S expansion we
    // model), both numerator and denominator estimated from the sketches.
    let any_s = CountExpr::ordered("S(NP,VP)")
        .add(CountExpr::ordered("S(NP,VP,PP)"))
        .add(CountExpr::ordered("S(SBAR,NP,VP)"))
        .add(CountExpr::ordered("S(NP,ADVP,VP)"));
    let num = st.estimate(&CountExpr::ordered("S(NP,VP)")).expect("ok");
    let den = st.estimate(&any_s).expect("ok");
    let exact_num = st.exact_count_ordered("S(NP,VP)").expect("ok") as f64;
    let exact_den = st.exact_value(&any_s).expect("ok");
    println!(
        "  P(S -> NP VP)                      {:>10.3}  (exact {:.3})",
        num / den,
        exact_num / exact_den
    );
}
