//! Sliding-window monitoring: track pattern rates over the *recent* stream
//! and detect a shift in the data distribution — the extension module
//! `core::window` in action.
//!
//! A feed of bibliographic records changes character halfway through
//! (conference papers take over from journal articles).  A whole-history
//! synopsis dilutes the change; a windowed synopsis over the last 500
//! documents tracks it almost immediately.
//!
//! ```sh
//! cargo run --release --example windowed_monitoring
//! ```

use sketchtree::datagen::DblpGen;
use sketchtree::{SketchTree, SketchTreeConfig, SynopsisConfig, Tree, WindowedSketchTree};

fn main() {
    let config = SketchTreeConfig {
        max_pattern_edges: 2,
        synopsis: SynopsisConfig {
            s1: 50,
            s2: 7,
            virtual_streams: 31,
            topk: 0,
            ..SynopsisConfig::default()
        },
        track_exact: false,
        maintain_summary: false,
        ..SketchTreeConfig::default()
    };
    let mut whole = SketchTree::new(config.clone());
    let mut window = WindowedSketchTree::new(config, 500);

    // Build two phases of the stream: mostly articles, then mostly
    // inproceedings. (Sort a generated batch by root label to fake the
    // regime change while keeping realistic record contents.)
    let trees: Vec<Tree> = {
        let labels = window.labels_mut();
        let mut gen = DblpGen::new(4, labels, 300);
        let article = labels.lookup("article").expect("generator interned");
        let mut batch: Vec<Tree> = (0..4000).map(|_| gen.next_tree()).collect();
        batch.sort_by_key(|t| t.label(t.root()) != article); // articles first
        batch
    };
    // Mirror the label table into the whole-history synopsis by re-interning
    // in the same order (ids match because both tables started empty).
    for (_, name) in window.labels().iter().collect::<Vec<_>>() {
        whole.labels_mut().intern(name);
    }

    println!("phase 1: article-dominated; phase 2: inproceedings-dominated\n");
    println!(
        "{:>6} {:>22} {:>22}",
        "docs", "articles (window)", "articles (whole)"
    );
    for (i, t) in trees.iter().enumerate() {
        window.ingest(t);
        whole.ingest(t);
        let n = i + 1;
        if n % 500 == 0 {
            let w = window.count_ordered("article(title)").unwrap();
            let h = whole.count_ordered("article(title)").unwrap();
            // Rates: per window for the windowed, per whole stream for the
            // global synopsis.
            println!(
                "{n:>6} {:>20.1}% {:>20.1}%",
                100.0 * w / window.window_len() as f64,
                100.0 * h / n as f64,
            );
        }
    }
    println!(
        "\nthe windowed rate collapses once the regime changes; the whole-history \
         rate only drifts (window memory: {} KB incl. {} buffered values)",
        window.memory_bytes() / 1024,
        window.buffered_values()
    );
}
