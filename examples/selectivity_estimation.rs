//! Selectivity estimation for a query optimizer — the use case the paper's
//! conclusion calls out ("SketchTree can be useful for tasks such as
//! selectivity estimation over stored data, especially when the data is
//! very large and multiple passes are impractically expensive").
//!
//! The scenario: one pass over a document collection builds the synopsis;
//! the synopsis is persisted; later (e.g. inside an optimizer process) it
//! is restored and consulted for pattern selectivities, side by side with
//! the classic Markov-table path estimator — which only handles linear
//! paths and leans on an independence assumption, while SketchTree prices
//! arbitrary branching patterns.
//!
//! ```sh
//! cargo run --release --example selectivity_estimation
//! ```

use sketchtree::core::snapshot::{read_snapshot, write_snapshot};
use sketchtree::core::MarkovPathTable;
use sketchtree::datagen::TreebankGen;
use sketchtree::{SketchTree, SketchTreeConfig, SynopsisConfig};

fn main() {
    // --- Pass 1: one scan over the collection. ---
    let mut st = SketchTree::new(SketchTreeConfig {
        max_pattern_edges: 4,
        synopsis: SynopsisConfig {
            s1: 50,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            ..SynopsisConfig::default()
        },
        track_exact: true, // only so this demo can print true selectivities
        ..SketchTreeConfig::default()
    });
    let mut markov = MarkovPathTable::new();
    let mut gen = TreebankGen::new(99, st.labels_mut());
    let trees: Vec<_> = (0..3000).map(|_| gen.next_tree()).collect();
    for t in &trees {
        st.ingest(t);
        markov.observe(t);
    }
    let total = st.patterns_processed() as f64;
    println!(
        "scanned {} documents once ({} pattern instances)",
        trees.len(),
        st.patterns_processed()
    );

    // --- Persist the synopsis, as an optimizer statistics file. ---
    let snapshot = write_snapshot(&st);
    println!(
        "persisted synopsis: {} KB (markov table: {} KB)",
        snapshot.len() / 1024,
        markov.memory_bytes() / 1024
    );

    // --- Later: restore and price candidate query patterns. ---
    let restored = read_snapshot(&snapshot).expect("snapshot readable");
    println!("\nselectivity estimates from the restored synopsis:");
    println!(
        "  {:<22} {:>12} {:>12} {:>12}",
        "pattern", "sketchtree", "markov", "true"
    );
    let patterns = [
        // Linear paths: both estimators apply.
        ("S(NP(DT))", true),
        ("NP(NP(PP))", true),
        ("S(NP(NP(PP)))", true),
        // Branching patterns: only SketchTree can price these.
        ("S(NP,VP)", false),
        ("NP(DT,JJ,NN)", false),
        ("S(NP(DT,NN),VP)", false),
    ];
    for (q, is_path) in patterns {
        let sk = restored.count_ordered(q).expect("valid") / total;
        let truth = st.exact_count_ordered(q).expect("tracking on") as f64 / total;
        let mk = if is_path {
            let path: Vec<_> = q
                .replace(['(', ')'], " ")
                .split_whitespace()
                .filter_map(|n| restored.labels().lookup(n))
                .collect();
            format!("{:.2e}", markov.estimate_path(&path) / total)
        } else {
            "n/a".to_string()
        };
        println!("  {q:<22} {sk:>12.2e} {mk:>12} {truth:>12.2e}");
    }
    println!(
        "\n(the Markov table cannot price the branching patterns at all; \
         SketchTree prices every pattern from the same one-pass synopsis)"
    );
}
