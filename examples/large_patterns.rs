//! Estimating patterns larger than k — the paper's future-work item
//! (`core::large`) in action.
//!
//! The synopsis only enumerates patterns up to k edges; a bigger query is
//! decomposed into ≤ k-edge pieces and combined by a chain rule under a
//! conditional-independence assumption. This example shows both the happy
//! case and the assumption breaking.
//!
//! ```sh
//! cargo run --release --example large_patterns
//! ```

use sketchtree::datagen::TreebankGen;
use sketchtree::{SketchTree, SketchTreeConfig, SynopsisConfig};

fn main() {
    // k = 3, but we will ask 4- and 5-edge questions.
    let mut st = SketchTree::new(SketchTreeConfig {
        max_pattern_edges: 3,
        include_single_nodes: true, // decomposition denominators
        synopsis: SynopsisConfig {
            s1: 50,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            ..SynopsisConfig::default()
        },
        track_exact: true, // to print the truth next to the heuristic
        ..SketchTreeConfig::default()
    });
    // Also build a k = 6 synopsis purely as ground truth for the big
    // queries (in production you would not have this — that is the point).
    let mut truth = SketchTree::new(SketchTreeConfig {
        max_pattern_edges: 6,
        track_exact: true,
        maintain_summary: false,
        synopsis: SynopsisConfig {
            s1: 2,
            s2: 2,
            virtual_streams: 3,
            topk: 0,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    });

    let mut gen = TreebankGen::new(31, st.labels_mut());
    let trees: Vec<_> = (0..2500).map(|_| gen.next_tree()).collect();
    for (_, name) in st.labels().iter().collect::<Vec<_>>() {
        truth.labels_mut().intern(name);
    }
    for t in &trees {
        st.ingest(t);
        truth.ingest(t);
    }
    println!(
        "synopsis built at k = 3 ({} pattern instances); querying beyond it:\n",
        st.patterns_processed()
    );

    let queries = [
        "S(NP(DT,NN),VP(VBD))",    // 5 edges
        "S(NP(NP(PP(IN))))",       // 4 edges
        "S(NP(DT),VP(VBD,NP))",    // 5 edges
        "NP(NP(PP(IN(NP))))",      // 4 edges
    ];
    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "pattern (> k edges)", "chain-rule", "true", "ratio"
    );
    for q in queries {
        let pattern = sketchtree::core::parse_pattern(q)
            .expect("valid")
            .to_tree(st.labels())
            .expect("labels seen");
        let est = st.count_large_ordered(&pattern).expect("singles sketched");
        let exact = truth.exact_count_ordered(q).expect("tracking on") as f64;
        let ratio = if exact > 0.0 { est / exact } else { f64::NAN };
        println!("{q:<26} {est:>12.1} {exact:>12.0} {ratio:>9.2}");
    }
    println!(
        "\nratios near 1.0 mean the independence assumption holds at the cut \
         labels; systematic deviation is the documented Markov-style bias \
         (see docs/THEORY.md and core::large)."
    );
}
