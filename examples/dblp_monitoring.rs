//! Streaming analytics over a bibliographic feed: the "no standing
//! queries" scenario from the paper's introduction.
//!
//! Documents arrive continuously; nobody registered any query up front.
//! At arbitrary points an analyst asks ad-hoc questions — how many papers
//! by this author? how many VLDB-venue records this year? — and SketchTree
//! answers from its fixed-size synopsis, including for patterns that were
//! streaming past long before anyone thought to ask.
//!
//! ```sh
//! cargo run --release --example dblp_monitoring
//! ```

use sketchtree::datagen::DblpGen;
use sketchtree::{SketchTree, SketchTreeConfig, SynopsisConfig};

fn main() {
    let config = SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 50,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            ..SynopsisConfig::default()
        },
        track_exact: true, // only to display errors in this demo
        ..SketchTreeConfig::default()
    };
    let mut st = SketchTree::new(config);
    let mut gen = DblpGen::new(2024, st.labels_mut(), 800);

    // Phase 1: 3,000 records arrive before anyone asks anything.
    let batch1: Vec<_> = (0..3000).map(|_| gen.next_tree()).collect();
    for t in &batch1 {
        st.ingest(t);
    }
    println!(
        "t1: {} records streamed, synopsis {} KB",
        st.trees_processed(),
        st.memory_bytes() / 1024
    );

    // An analyst shows up with ad-hoc queries about the *past* stream.
    let queries = [
        r#"author("Author 00000")"#,
        r#"article(author("Author 00000"))"#,
        r#"article(journal("Venue 000"))"#,
        "inproceedings(author,title)",
        "article(year(1995))",
    ];
    println!("\nad-hoc queries at t1:");
    for q in queries {
        let approx = st.count_ordered(q).expect("valid");
        let exact = st.exact_count_ordered(q).expect("tracking on");
        println!("  {q:<44} ≈ {approx:>9.1}  (exact {exact})");
    }

    // Phase 2: the stream keeps flowing; counts move, the synopsis follows.
    let batch2: Vec<_> = (0..3000).map(|_| gen.next_tree()).collect();
    for t in &batch2 {
        st.ingest(t);
    }
    println!("\nt2: {} records total", st.trees_processed());
    println!("same queries at t2:");
    for q in queries {
        let approx = st.count_ordered(q).expect("valid");
        let exact = st.exact_count_ordered(q).expect("tracking on");
        println!("  {q:<44} ≈ {approx:>9.1}  (exact {exact})");
    }

    // The top-k trackers have been identifying the heaviest patterns the
    // whole time — a free heavy-hitter report.
    println!("\nheaviest tracked patterns (mapped value, est. frequency):");
    for (v, f) in st.tracked_heavy_hitters().into_iter().take(8) {
        println!("  {v:>12}  ~{f}");
    }
    println!(
        "\nresidual self-join size after heavy-hitter deletion: {:.2e}",
        st.residual_self_join()
    );
}
