//! End-to-end XML pipeline: generate records, serialise them to XML,
//! re-parse the text as a stream, and sketch it — exercising every
//! substrate layer (datagen → writer → pull parser → tree builder →
//! EnumTree → Prüfer → Rabin → AMS).
//!
//! ```sh
//! cargo run --release --example xml_stream
//! ```

use sketchtree::datagen::DblpGen;
use sketchtree::tree::LabelTable;
use sketchtree::xml::writer::write_forest;
use sketchtree::{SketchTreeConfig, SynopsisConfig, XmlSketchTree};

fn main() {
    // Build a corpus and serialise it to real XML text.
    let mut gen_labels = LabelTable::new();
    let mut gen = DblpGen::new(7, &mut gen_labels, 300);
    let trees: Vec<_> = (0..2000).map(|_| gen.next_tree()).collect();
    // Values in the generator are the leaves under field elements; write
    // them back as character data.
    let is_text = |l: sketchtree::tree::Label| {
        let name = gen_labels.name(l);
        name.contains(' ') || name.chars().all(|c| c.is_ascii_digit()) || name.contains('-')
    };
    let xml = write_forest(&trees, &gen_labels, &is_text);
    println!(
        "serialised {} records to {} KB of XML",
        trees.len(),
        xml.len() / 1024
    );

    // Stream the XML text through the synopsis in chunks, the way a feed
    // would arrive.
    let mut st = XmlSketchTree::new(SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 25,
            s2: 7,
            virtual_streams: 229,
            topk: 25,
            ..SynopsisConfig::default()
        },
        track_exact: true,
        ..SketchTreeConfig::default()
    });
    let mut ingested = 0;
    // Split the forest on document boundaries ("</article>" etc. all end
    // with ">\n"? simplest robust chunking: one document per line).
    for line in xml.lines().filter(|l| !l.trim().is_empty()) {
        ingested += st.ingest_xml(line).expect("well-formed document");
    }
    println!(
        "re-parsed and sketched {} documents ({} pattern instances)",
        ingested,
        st.patterns_processed()
    );

    println!("\nqueries against the re-parsed stream:");
    for q in [
        "article(author,title)",
        "inproceedings(booktitle)",
        r#"author("Author 00001")"#,
    ] {
        let approx = st.count_ordered(q).expect("valid");
        let exact = st.exact_count_ordered(q).expect("tracking on");
        let err = if exact > 0 {
            format!("{:+.1}%", 100.0 * (approx - exact as f64) / exact as f64)
        } else {
            "-".into()
        };
        println!("  {q:<32} ≈ {approx:>9.1}  (exact {exact}, err {err})");
    }
}
