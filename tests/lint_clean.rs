//! Tier-1 gate: the workspace must be clean under its own analyzer.
//!
//! Every finding the passes raise must either be fixed or carry a
//! `lint:allow` marker with a written reason (see docs/lints.md).  This
//! test is the enforcement point — it fails the ordinary `cargo test`
//! run the moment an undocumented violation lands, so panic-freedom,
//! cast-safety, arithmetic discipline, lock ordering and wire
//! exhaustiveness cannot silently regress.

use std::path::Path;

#[test]
fn workspace_has_zero_undocumented_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = sketchtree_lint::analyze_workspace(root);
    assert!(
        !report.files_scanned.is_empty(),
        "analyzer scanned no files — workspace discovery is broken"
    );
    assert!(
        report.is_clean(),
        "undocumented lint findings (fix them or add a reasoned lint:allow — see docs/lints.md):\n{}",
        report.to_text(false)
    );
}

#[test]
fn every_allow_carries_a_nonempty_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = sketchtree_lint::analyze_workspace(root);
    for f in report.allowed() {
        let reason = f.allowed.as_deref().unwrap_or_default();
        assert!(
            !reason.trim().is_empty(),
            "{}:{} [{}] has an allow marker with an empty reason",
            f.file,
            f.line,
            f.rule
        );
    }
}
