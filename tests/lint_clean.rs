//! Tier-1 gate: the workspace must be clean under its own analyzer.
//!
//! Every finding the passes raise must either be fixed or carry a
//! `lint:allow` marker with a written reason (see docs/lints.md).  This
//! test is the enforcement point — it fails the ordinary `cargo test`
//! run the moment an undocumented violation lands, so panic-freedom,
//! cast-safety, arithmetic discipline, lock ordering, blocking-under-
//! lock, epoch/determinism discipline, wire exhaustiveness and
//! spec-document drift cannot silently regress.  The workspace rules
//! additionally get named per-rule gates so a regression fails with its
//! own banner (and `scripts/check.sh` invokes them by name).

use std::path::Path;

/// Fails if any undocumented finding of `rule` exists workspace-wide.
fn assert_rule_clean(rule: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = sketchtree_lint::analyze_workspace(root);
    let hits: Vec<String> = report
        .undocumented()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{}:{}: {}", f.file, f.line, f.message))
        .collect();
    assert!(
        hits.is_empty(),
        "undocumented {rule} findings (fix, or add a reasoned lint:allow — see docs/lints.md):\n{}",
        hits.join("\n")
    );
}

#[test]
fn workspace_has_zero_undocumented_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = sketchtree_lint::analyze_workspace(root);
    assert!(
        !report.files_scanned.is_empty(),
        "analyzer scanned no files — workspace discovery is broken"
    );
    assert!(
        report.is_clean(),
        "undocumented lint findings (fix them or add a reasoned lint:allow — see docs/lints.md):\n{}",
        report.to_text(false)
    );
}

#[test]
fn l6_lock_order_is_clean() {
    assert_rule_clean("L6");
}

#[test]
fn l7_blocking_under_lock_is_clean() {
    assert_rule_clean("L7");
}

#[test]
fn l8_epoch_determinism_is_clean() {
    assert_rule_clean("L8");
}

#[test]
fn l9_spec_drift_is_clean() {
    assert_rule_clean("L9");
}

/// The L9 pass only has teeth while both spec documents exist and still
/// contain their tables; a deleted or emptied doc must fail loudly here
/// rather than pass vacuously.
#[test]
fn l9_spec_documents_are_present_and_tabled() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in sketchtree_lint::DOC_FILES {
        let text = std::fs::read_to_string(root.join(rel))
            .unwrap_or_else(|e| panic!("{rel} must exist for the L9 gate: {e}"));
        let rows = text.lines().filter(|l| l.trim_start().starts_with('|')).count();
        assert!(rows >= 5, "{rel} has only {rows} table lines — spec tables missing?");
    }
}

#[test]
fn every_allow_carries_a_nonempty_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = sketchtree_lint::analyze_workspace(root);
    for f in report.allowed() {
        let reason = f.allowed.as_deref().unwrap_or_default();
        assert!(
            !reason.trim().is_empty(),
            "{}:{} [{}] has an allow marker with an empty reason",
            f.file,
            f.line,
            f.rule
        );
    }
}
