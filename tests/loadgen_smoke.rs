//! Smoke e2e for the `sketchtree-loadgen` harness (the `loadgen-smoke`
//! gate in scripts/check.sh): one short mixed run against an in-process
//! server must produce a schema-valid report with real latency samples
//! for every op kind, pushed standing-query updates with monotone
//! epochs, and a populated batch sweep.

use sketchtree_loadgen::json::Json;
use sketchtree_loadgen::{report, schema, RunConfig, Scenario};

#[test]
fn short_mixed_run_produces_a_schema_valid_report() {
    let scenario = Scenario::parse("dblp-steady").expect("known scenario");
    let cfg = RunConfig::smoke(scenario);
    let output = sketchtree_loadgen::run(&cfg).expect("run completes");
    let report = &output.report;

    // The contract the BENCH trajectory depends on.
    if let Err(errs) = schema::validate(report) {
        panic!("smoke report fails schema: {errs:?}");
    }

    // Re-validate through a disk-format round trip, exactly as the gate
    // and cross-PR diff tooling will read it.
    let text = report.render_pretty();
    let parsed = Json::parse(&text).expect("rendered report parses");
    assert!(schema::validate(&parsed).is_ok());

    let num =
        |p: &[&str]| report.get_path(p).and_then(Json::as_f64).unwrap_or_else(|| panic!("{p:?}"));

    // Every op kind in the default mix actually executed, error-free
    // enough to measure, and its histogram is non-empty (p999 and max
    // are only nonzero when samples landed).
    for kind in ["ingest", "count", "expr", "subscribe"] {
        let count = num(&["ops", kind, "count"]);
        let errors = num(&["ops", kind, "errors"]);
        assert!(count >= 1.0, "{kind}: no ops completed");
        assert_eq!(errors, 0.0, "{kind}: {errors} errors");
        assert!(num(&["ops", kind, "latency_us", "max"]) > 0.0, "{kind}: empty histogram");
        let p50 = num(&["ops", kind, "latency_us", "p50"]);
        let p999 = num(&["ops", kind, "latency_us", "p999"]);
        assert!(p50 <= p999, "{kind}: p50 {p50} > p999 {p999}");
    }

    // Standing queries: updates flowed and epochs never went backwards
    // on any subscription (guarded server-side by the broadcast gate).
    assert!(num(&["push", "updates"]) >= 1.0, "no pushed updates");
    assert!(num(&["push", "max_epoch"]) >= 1.0);
    assert_eq!(
        report.get_path(&["push", "epochs_monotone"]).and_then(Json::as_bool),
        Some(true),
        "subscriber saw epochs regress"
    );

    // Ingest volume flowed and the closed-loop sweep produced rows.
    assert!(num(&["ingest", "trees"]) >= 1.0);
    match report.get("batch_sweep") {
        Some(Json::Arr(rows)) => assert!(!rows.is_empty(), "sweep produced no rows"),
        other => panic!("batch_sweep missing or not an array: {other:?}"),
    }

    // The scheduled window completed (hard stop untripped) — otherwise
    // the box is too slow for the smoke preset and the preset should
    // shrink, not the assertion.
    assert_eq!(
        report.get_path(&["completed_all_scheduled"]).and_then(Json::as_bool),
        Some(true),
        "smoke run abandoned scheduled ops"
    );

    // File-name contract the committed BENCH files follow.
    assert_eq!(report::bench_path("dblp-steady"), "BENCH_loadgen_dblp-steady.json");
}
