//! Documentation link checker: every relative markdown link in the
//! repository's own docs must point at a file (or directory) that exists.
//!
//! Runs as a plain test so `cargo test` — and therefore
//! `scripts/check.sh` — fails when a doc is moved without its references
//! being updated.  External (`http://`, `https://`), in-page (`#…`) and
//! `mailto:` links are skipped: this gate is about repo-internal
//! integrity, not the reachability of the wider internet.

use std::path::{Path, PathBuf};

/// Markdown files that are *checked* for outgoing links.  Scratch files
/// (ISSUE/CHANGES/SNIPPETS, the paper dumps) accumulate references to
/// things that never existed in this repo, so the gate covers the curated
/// docs only.
const CHECKED: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "CONTRIBUTING.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/README.md",
    "docs/THEORY.md",
    "docs/TUNING.md",
    "docs/lints.md",
    "docs/wire-protocol.md",
    "docs/observability.md",
    "docs/benchmarks.md",
];

/// Extracts inline markdown link targets: `[text](target)`.  Good enough
/// for the docs in this repo — no reference-style links, no nested
/// brackets inside link text.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let lb = line.as_bytes();
        let mut j = 0;
        while j < lb.len() {
            if lb[j] == b']' && j + 1 < lb.len() && lb[j + 1] == b'(' {
                let rest = &line[j + 2..];
                if let Some(end) = rest.find(')') {
                    out.push(rest[..end].trim().to_string());
                    j += 2 + end;
                    continue;
                }
            }
            j += 1;
        }
    }
    out
}

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root package *is* the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn relative_doc_links_resolve() {
    let root = repo_root();
    let mut broken = Vec::new();
    for doc in CHECKED {
        let path = root.join(doc);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                broken.push(format!("{doc}: listed in CHECKED but missing"));
                continue;
            }
        };
        let base = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        for target in link_targets(&text) {
            if target.is_empty()
                || target.starts_with('#')
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            // Strip any in-page anchor from a file target.
            let file_part = target.split('#').next().unwrap_or(&target);
            if file_part.is_empty() {
                continue;
            }
            let resolved = if let Some(stripped) = file_part.strip_prefix('/') {
                root.join(stripped)
            } else {
                base.join(file_part)
            };
            if !resolved.exists() {
                broken.push(format!("{doc}: broken link -> {target}"));
            }
        }
    }
    assert!(broken.is_empty(), "broken documentation links:\n  {}", broken.join("\n  "));
}

#[test]
fn link_extraction_understands_markdown() {
    let md = "See [the guide](docs/TUNING.md) and [api](#anchor).\n\
              ```\n[not a link](ignored.md)\n```\n\
              Also [ext](https://example.com) and [two](a.md) [links](b.md).";
    let links = link_targets(md);
    assert_eq!(links, vec!["docs/TUNING.md", "#anchor", "https://example.com", "a.md", "b.md"]);
}
