//! End-to-end observability test: drive a scripted workload through a
//! live server and assert that the *same* instrumented state is visible
//! through every exposition surface — the SKTP `Metrics` opcode (text and
//! JSON) and the HTTP scrape endpoint — with counter deltas that match
//! the workload exactly.

use sketchtree::server::{Client, Server, ServerConfig};
use sketchtree::{SketchTreeConfig, SynopsisConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn config() -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 30,
            s2: 5,
            virtual_streams: 13,
            topk: 8,
            seed: 7,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

/// Value of an unlabeled series (`name 42`) in Prometheus text, if present.
fn series_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// One blocking HTTP/1.0 GET against the scrape endpoint.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("metrics endpoint reachable");
    s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    out
}

#[test]
fn workload_moves_every_exposition_surface() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            sketch: config(),
            metrics_addr: Some("127.0.0.1:0".parse().expect("addr")),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let scrape_addr = server.metrics_addr().expect("metrics endpoint up");
    let mut client = Client::connect(server.addr()).expect("client connects");

    // Baseline scrape before the workload: the exposition itself works on
    // an empty synopsis and the pipeline counters start at zero.
    let before = client.metrics(false).expect("baseline metrics");
    assert_eq!(series_value(&before, "sketchtree_ingest_trees_total"), Some(0.0), "{before}");

    // The workload: 60 documents, three query shapes, and one parse error.
    let docs: Vec<String> = (0..60)
        .map(|i| format!("<r><a>x{}</a><b/></r>", i % 5))
        .collect();
    let summary = client.ingest_xml(&docs).expect("ingest");
    assert_eq!(summary.total_trees, 60);
    client.count_ordered("r(a)").expect("ordered query");
    client.count_ordered("r(b)").expect("ordered query");
    client.count_unordered("r(a,b)").expect("unordered query");
    client.expr("COUNT_ord(r(a)) - COUNT_ord(r(b))").expect("expression");
    client.count_ordered("((broken").expect_err("parse error reaches the client");

    // Surface 1: SKTP Metrics opcode, Prometheus text.
    let after = client.metrics(false).expect("metrics after workload");
    assert_eq!(series_value(&after, "sketchtree_ingest_trees_total"), Some(60.0), "{after}");
    let patterns =
        series_value(&after, "sketchtree_ingest_patterns_total").expect("patterns series");
    assert!(patterns > 60.0, "each tree yields multiple pattern instances: {patterns}");
    // Per-kind query counters: 3 ordered (incl. the failed parse), 1
    // unordered, 1 expression, 1 error.
    assert!(after.contains("sketchtree_query_total{kind=\"ordered\"} 3"), "{after}");
    assert!(after.contains("sketchtree_query_total{kind=\"unordered\"} 1"), "{after}");
    assert!(after.contains("sketchtree_query_total{kind=\"expr\"} 1"), "{after}");
    assert_eq!(series_value(&after, "sketchtree_query_errors_total"), Some(1.0), "{after}");
    // Per-opcode latency histograms observed for every opcode we used.
    for opcode in ["ingest_xml", "count", "expr", "metrics"] {
        let line = format!("sktp_request_seconds_count{{opcode=\"{opcode}\"}}");
        assert!(after.contains(&line), "missing histogram for {opcode}: {after}");
    }
    // Transport counters move and include our frames.
    let frames_in = after
        .lines()
        .find(|l| l.starts_with("sktp_frames_total{direction=\"in\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .expect("frames_in series");
    assert!(frames_in >= 7.0, "at least one frame per request: {frames_in}");
    assert_eq!(series_value(&after, "sktp_error_responses_total"), Some(1.0), "{after}");
    // Sketch-health gauges are fresh: the scrape refreshed them.
    assert_eq!(series_value(&after, "sketchtree_trees_processed"), Some(60.0), "{after}");
    let values = series_value(&after, "sketchtree_values_processed").expect("values series");
    assert!(values > 0.0, "synopsis saw pattern values: {after}");

    // Surface 2: SKTP Metrics opcode, JSON rendering.
    let json = client.metrics(true).expect("json metrics");
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("\"sketchtree_ingest_trees_total\""), "{json}");

    // Surface 3: HTTP scrape endpoint — same registry, same numbers.
    let scrape = http_get(scrape_addr, "/metrics");
    assert!(scrape.starts_with("HTTP/1.0 200"), "{scrape}");
    assert!(scrape.contains("text/plain; version=0.0.4"), "{scrape}");
    let body = scrape.split("\r\n\r\n").nth(1).expect("body");
    assert_eq!(series_value(body, "sketchtree_ingest_trees_total"), Some(60.0), "{body}");
    assert!(body.contains("sktp_request_seconds_bucket{opcode=\"ingest_xml\""), "{body}");

    let health = http_get(scrape_addr, "/healthz");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"trees_processed\":60"), "{health}");

    // Deltas keep accruing: a second batch moves the same counters again.
    client.ingest_xml(&docs[..10].to_vec()).expect("second batch");
    let third = client.metrics(false).expect("third scrape");
    assert_eq!(series_value(&third, "sketchtree_ingest_trees_total"), Some(70.0), "{third}");

    server.shutdown().expect("clean shutdown");
}
