//! End-to-end test of the network subsystem against the in-process
//! synopsis: a server fed over TCP must give *bit-identical* answers to a
//! `SketchTree` with the same configuration and seed fed the same
//! documents in the same order — the wire is transport, not math.

use sketchtree::server::{Client, Server, ServerConfig};
use sketchtree::{SketchTreeConfig, SynopsisConfig, XmlSketchTree};
use std::time::Duration;

fn config(seed: u64) -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 40,
            s2: 7,
            virtual_streams: 31,
            topk: 10,
            seed,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

fn corpus() -> Vec<String> {
    let mut docs = Vec::new();
    for i in 0..300 {
        docs.push(match i % 4 {
            0 => "<article><author>a</author><title>t</title></article>".to_string(),
            1 => "<article><author>a</author><author>b</author></article>".to_string(),
            2 => "<book><title>t</title><year>2006</year></book>".to_string(),
            _ => format!("<misc><k{}/></misc>", i % 7),
        });
    }
    docs
}

const QUERIES: &[&str] = &["article(author)", "article(author,title)", "book(year)", "misc(k0)"];

#[test]
fn remote_estimates_match_in_process_bit_for_bit() {
    let seed = 42;
    let docs = corpus();

    // Reference: plain in-process ingest, same config, same order.
    let mut reference = XmlSketchTree::new(config(seed));
    let mid = docs.len() / 2;
    for doc in &docs[..mid] {
        reference.ingest_xml(doc).unwrap();
    }
    let mid_answers: Vec<f64> =
        QUERIES.iter().map(|q| reference.count_ordered(q).unwrap()).collect();
    for doc in &docs[mid..] {
        reference.ingest_xml(doc).unwrap();
    }
    let final_answers: Vec<f64> =
        QUERIES.iter().map(|q| reference.count_ordered(q).unwrap()).collect();
    let final_unordered: Vec<f64> =
        QUERIES.iter().map(|q| reference.count_unordered(q).unwrap()).collect();

    // Networked: same documents through the TCP server.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(seed), ..ServerConfig::default() },
    )
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");

    let summary = client.ingest_xml(&docs[..mid]).expect("first half ingests");
    assert_eq!(summary.total_trees, mid as u64);

    // Query mid-stream: estimates must be exactly the reference's
    // mid-stream estimates (same sketch state ⇒ same bits).
    for (q, want) in QUERIES.iter().zip(&mid_answers) {
        let got = client.count_ordered(q).expect("mid-stream query");
        assert_eq!(got.to_bits(), want.to_bits(), "mid-stream {q}: {got} != {want}");
    }

    let summary = client.ingest_xml(&docs[mid..]).expect("second half ingests");
    assert_eq!(summary.total_trees, docs.len() as u64);

    for (q, want) in QUERIES.iter().zip(&final_answers) {
        let got = client.count_ordered(q).expect("final query");
        assert_eq!(got.to_bits(), want.to_bits(), "final {q}: {got} != {want}");
    }
    for (q, want) in QUERIES.iter().zip(&final_unordered) {
        let got = client.count_unordered(q).expect("final unordered query");
        assert_eq!(got.to_bits(), want.to_bits(), "unordered {q}: {got} != {want}");
    }

    // Stats agree with the reference synopsis.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.trees_processed, reference.inner().trees_processed());
    assert_eq!(stats.patterns_processed, reference.inner().patterns_processed());

    server.shutdown().expect("clean shutdown");
}

#[test]
fn checkpoint_survives_server_restart() {
    let seed = 7;
    let docs = corpus();
    let snap = {
        let mut p = std::env::temp_dir();
        p.push(format!("sketchtree-e2e-ckpt-{}.bin", std::process::id()));
        p
    };
    std::fs::remove_file(&snap).ok();

    // Reference for the final answers.
    let mut reference = XmlSketchTree::new(config(seed));
    for doc in &docs {
        reference.ingest_xml(doc).unwrap();
    }

    // First server life: ingest everything, shut down (which checkpoints).
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            sketch: config(seed),
            checkpoint_path: Some(snap.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    client.ingest_xml(&docs).expect("ingest");
    server.shutdown().expect("shutdown checkpoints");
    assert!(snap.exists(), "shutdown must leave a checkpoint");

    // Second life: restore from the checkpoint; counts and answers are
    // exactly what the first life would have given.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            sketch: config(seed),
            checkpoint_path: Some(snap.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server restarts");
    let mut client = Client::connect(server.addr()).expect("client reconnects");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.trees_processed, docs.len() as u64);
    for q in QUERIES {
        let got = client.count_ordered(q).expect("restored query");
        let want = reference.count_ordered(q).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "restored {q}: {got} != {want}");
    }

    // The restored server keeps ingesting from where it left off.
    client.ingest_xml(&docs[..10]).expect("post-restore ingest");
    reference.ingest_xml(&docs[..10].concat()).unwrap();
    let got = client.count_ordered(QUERIES[0]).expect("post-restore query");
    let want = reference.count_ordered(QUERIES[0]).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());

    server.shutdown().expect("clean shutdown");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn queries_do_not_block_queries() {
    // While one client holds a long-running expression query, other
    // clients' queries must still complete promptly: readers share the
    // lock.  We bound "promptly" loosely (1s) to stay robust on slow CI.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(3), ..ServerConfig::default() },
    )
    .expect("server starts");
    let mut seed_client = Client::connect(server.addr()).expect("connect");
    let docs = corpus();
    seed_client.ingest_xml(&docs).expect("ingest");

    let addr = server.addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let start = std::time::Instant::now();
                for _ in 0..50 {
                    c.count_ordered("article(author)").expect("query");
                }
                start.elapsed()
            })
        })
        .collect();
    for h in handles {
        let elapsed = h.join().expect("query thread");
        assert!(
            elapsed < Duration::from_secs(5),
            "50 queries took {elapsed:?} under concurrent read load"
        );
    }
    server.shutdown().expect("clean shutdown");
}
