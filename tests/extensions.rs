//! Integration tests for the extension features through the facade:
//! snapshots, windows, error bounds, expression text, concurrent handles
//! and reader-based ingestion.

use sketchtree::datagen::{Dataset, StreamSpec};
use sketchtree::{
    parse_expr, read_snapshot, write_snapshot, SharedSketchTree, SketchTree, SketchTreeConfig,
    SynopsisConfig, WindowedSketchTree, XmlSketchTree,
};

fn config() -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 40,
            s2: 7,
            virtual_streams: 31,
            topk: 10,
            independence: 5,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

#[test]
fn snapshot_roundtrip_through_facade() {
    let mut st = SketchTree::new(config());
    let spec = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 200,
        seed: 1,
    };
    let trees = spec.generate(st.labels_mut());
    for t in &trees {
        st.ingest(t);
    }
    let bytes = write_snapshot(&st);
    let restored = read_snapshot(&bytes).expect("valid snapshot");
    for q in ["article(author)", "inproceedings(title)", "author"] {
        assert_eq!(
            st.count_ordered(q).unwrap(),
            restored.count_ordered(q).unwrap(),
            "{q}"
        );
    }
    // Expression text evaluates identically.
    let e = parse_expr("COUNT_ord(article(author)) - COUNT_ord(article(year))").unwrap();
    assert_eq!(st.estimate(&e).unwrap(), restored.estimate(&e).unwrap());
}

#[test]
fn reader_ingestion_equals_string_ingestion() {
    let xml = "<a><b>v</b></a><c/><a><b>w</b></a>".repeat(40);
    let mut via_string = XmlSketchTree::new(config());
    via_string.ingest_xml(&xml).unwrap();
    let mut via_reader = XmlSketchTree::new(config());
    let n = via_reader
        .ingest_reader(std::io::BufReader::with_capacity(
            64,
            std::io::Cursor::new(xml.into_bytes()),
        ))
        .unwrap();
    assert_eq!(n as u64, via_string.trees_processed());
    for q in ["a(b)", "b(v)", "a(b(w))"] {
        assert_eq!(
            via_string.count_ordered(q).unwrap(),
            via_reader.count_ordered(q).unwrap(),
            "{q}"
        );
    }
}

#[test]
fn bounded_estimates_order_sensibly() {
    let mut st = SketchTree::new(SketchTreeConfig {
        synopsis: SynopsisConfig {
            topk: 0,
            ..config().synopsis
        },
        ..config()
    });
    let spec = StreamSpec {
        dataset: Dataset::Treebank,
        n_trees: 300,
        seed: 3,
    };
    let trees = spec.generate(st.labels_mut());
    for t in &trees {
        st.ingest(t);
    }
    let frequent = st.count_ordered_bounded("S(NP,VP)").unwrap();
    let rare = st.count_ordered_bounded("SBARQ(WRB,SQ)").unwrap();
    assert!(frequent.estimate > rare.estimate);
    assert!(
        frequent.epsilon < rare.epsilon,
        "frequent {frequent:?} rare {rare:?}"
    );
    assert!(frequent.display().contains('%'));
}

#[test]
fn window_and_whole_history_disagree_after_shift() {
    let mut whole = SketchTree::new(config());
    let mut window = WindowedSketchTree::new(config(), 50);
    let (a, b, c) = {
        let l = window.labels_mut();
        (l.intern("A"), l.intern("B"), l.intern("C"))
    };
    for name in ["A", "B", "C"] {
        whole.labels_mut().intern(name);
    }
    use sketchtree::Tree;
    let old_shape = Tree::node(a, vec![Tree::leaf(b)]);
    let new_shape = Tree::node(a, vec![Tree::leaf(c)]);
    for _ in 0..100 {
        whole.ingest(&old_shape);
        window.ingest(&old_shape);
    }
    for _ in 0..60 {
        whole.ingest(&new_shape);
        window.ingest(&new_shape);
    }
    // Whole history still sees ~100 A(B); the window sees none.
    let whole_ab = whole.count_ordered("A(B)").unwrap();
    let window_ab = window.count_ordered("A(B)").unwrap();
    assert!(whole_ab > 60.0, "whole {whole_ab}");
    assert!(window_ab.abs() < 10.0, "window {window_ab}");
}

#[test]
fn shared_handle_concurrent_mixed_workload() {
    let st = SharedSketchTree::new(SketchTree::new(config()));
    let (a, b) = st.with_labels(|l| (l.intern("A"), l.intern("B")));
    use sketchtree::Tree;
    let tree = Tree::node(a, vec![Tree::leaf(b)]);
    let writers: Vec<_> = (0..2)
        .map(|_| {
            let st = st.clone();
            let tree = tree.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    st.ingest(&tree);
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let st = st.clone();
            std::thread::spawn(move || {
                let mut last = -1.0f64;
                for _ in 0..50 {
                    let v = st.count_ordered("A(B)").expect("valid");
                    assert!(v >= -50.0);
                    last = v;
                }
                last
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(st.trees_processed(), 400);
}

#[test]
fn expression_text_through_facade() {
    let mut st = XmlSketchTree::new(SketchTreeConfig {
        track_exact: true,
        ..config()
    });
    let mut xml = String::new();
    for _ in 0..60 {
        xml.push_str("<p><q/><r/></p>");
    }
    for _ in 0..25 {
        xml.push_str("<p><r/><q/></p>");
    }
    st.ingest_xml(&xml).unwrap();
    let e = parse_expr("COUNT_ord(p(q,r)) - COUNT_ord(p(r,q))").unwrap();
    assert_eq!(st.exact_value(&e).unwrap(), 35.0);
    let est = st.estimate(&e).unwrap();
    assert!((est - 35.0).abs() < 20.0, "est {est}");
    // The unordered count covers both orders.
    let u = parse_expr("COUNT(p(q,r))").unwrap();
    assert_eq!(st.exact_value(&u).unwrap(), 85.0);
}
