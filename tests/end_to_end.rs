//! End-to-end integration: XML text in, approximate counts out, across all
//! substrate crates, with the theoretical knobs behaving as Theorems 1–2
//! predict.

use sketchtree::datagen::{Dataset, DblpGen, StreamSpec};
use sketchtree::tree::LabelTable;
use sketchtree::xml::writer::write_forest;
use sketchtree::{SketchTree, SketchTreeConfig, SynopsisConfig, XmlSketchTree};

fn synopsis(s1: usize, topk: usize, seed: u64) -> SynopsisConfig {
    SynopsisConfig {
        s1,
        s2: 7,
        virtual_streams: 31,
        topk,
        independence: 5,
        topk_probability: u16::MAX,
        seed,
    }
}

/// Full pipeline: generate records → serialise to XML → parse → sketch →
/// query, asserting estimates track exact counts.
#[test]
fn xml_pipeline_accuracy() {
    // Generate and serialise.
    let mut gen_labels = LabelTable::new();
    let mut gen = DblpGen::new(5, &mut gen_labels, 200);
    let trees: Vec<_> = (0..800).map(|_| gen.next_tree()).collect();
    let is_text = |l: sketchtree::tree::Label| {
        let n = gen_labels.name(l);
        n.contains(' ') || n.chars().all(|c| c.is_ascii_digit()) || n.contains('-')
    };
    let xml = write_forest(&trees, &gen_labels, &is_text);

    // Parse + sketch.
    let mut st = XmlSketchTree::new(SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: synopsis(60, 20, 3),
        track_exact: true,
        ..SketchTreeConfig::default()
    });
    let n = st.ingest_xml(&xml).expect("well-formed");
    assert_eq!(n, 800);

    // Moderately frequent queries estimate within a loose band.
    for q in [
        "article(author,title)",
        "inproceedings(author)",
        "article(journal)",
    ] {
        let exact = st.exact_count_ordered(q).unwrap() as f64;
        assert!(exact > 0.0, "query {q} should occur");
        let est = st.count_ordered(q).unwrap();
        assert!(
            (est - exact).abs() <= (0.35 * exact).max(15.0),
            "{q}: est {est} vs exact {exact}"
        );
    }
}

/// Theorem 1's knob: larger s1 (more averaged sketches) reduces the mean
/// relative error over a query set. Checked with common random queries and
/// many runs to keep the comparison statistically meaningful.
#[test]
fn error_decreases_with_s1() {
    let spec = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 300,
        seed: 7,
    };
    let err = |s1: usize| -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for seed in 0..3u64 {
            let mut st = SketchTree::new(SketchTreeConfig {
                max_pattern_edges: 2,
                synopsis: synopsis(s1, 0, 100 + seed),
                track_exact: true,
                ..SketchTreeConfig::default()
            });
            let trees = spec.generate(st.labels_mut());
            for t in &trees {
                st.ingest(t);
            }
            let exact = st.exact().unwrap();
            // Queries: mid-frequency values from the exact counter.
            let queries: Vec<(u64, u64)> = {
                let mut v: Vec<(u64, u64)> = exact
                    .iter()
                    .filter(|&(_, c)| (20..200).contains(&c))
                    .collect();
                v.sort_unstable();
                v.truncate(40);
                v
            };
            assert!(queries.len() >= 10, "not enough mid-frequency patterns");
            for (value, c) in queries {
                let est = st.estimate_value(value).max(0.1 * c as f64);
                total += (est - c as f64).abs() / c as f64;
                count += 1;
            }
        }
        total / count as f64
    };
    let (e_small, e_big) = (err(6), err(96));
    assert!(
        e_big < e_small * 0.7,
        "16x more sketches should cut error well below 0.7x: {e_small:.3} -> {e_big:.3}"
    );
}

/// Top-k tracking reduces residual self-join size and improves estimates
/// for non-tracked patterns — the Section 5.2 claim end to end.
#[test]
fn topk_improves_accuracy_end_to_end() {
    let spec = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 400,
        seed: 9,
    };
    let build = |topk: usize| {
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 3,
            synopsis: synopsis(25, topk, 11),
            track_exact: true,
            ..SketchTreeConfig::default()
        });
        let trees = spec.generate(st.labels_mut());
        for t in &trees {
            st.ingest(t);
        }
        st
    };
    let plain = build(0);
    let tracked = build(30);
    assert!(
        tracked.residual_self_join() < plain.residual_self_join() * 0.5,
        "self-join not reduced: {} vs {}",
        plain.residual_self_join(),
        tracked.residual_self_join()
    );
    // Error over light patterns improves.
    let light: Vec<(u64, u64)> = {
        let mut v: Vec<(u64, u64)> = plain
            .exact()
            .unwrap()
            .iter()
            .filter(|&(_, c)| (10..60).contains(&c))
            .collect();
        v.sort_unstable();
        v.truncate(50);
        v
    };
    assert!(light.len() >= 10);
    let err = |st: &SketchTree| -> f64 {
        light
            .iter()
            .map(|&(v, c)| {
                let est = st.estimate_value(v).max(0.1 * c as f64);
                (est - c as f64).abs() / c as f64
            })
            .sum::<f64>()
            / light.len() as f64
    };
    let (e_plain, e_tracked) = (err(&plain), err(&tracked));
    assert!(
        e_tracked < e_plain,
        "top-k did not improve light-pattern error: {e_plain:.3} vs {e_tracked:.3}"
    );
}

/// Determinism: the same stream, configuration and seed produce identical
/// estimates — the property every experiment in EXPERIMENTS.md relies on.
#[test]
fn deterministic_given_seed() {
    let build = || {
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 3,
            synopsis: synopsis(20, 10, 42),
            ..SketchTreeConfig::default()
        });
        let spec = StreamSpec {
            dataset: Dataset::Treebank,
            n_trees: 100,
            seed: 5,
        };
        let trees = spec.generate(st.labels_mut());
        for t in &trees {
            st.ingest(t);
        }
        st
    };
    let a = build();
    let b = build();
    assert_eq!(a.patterns_processed(), b.patterns_processed());
    for q in ["S(NP,VP)", "NP(DT,NN)", "VP(VBD)"] {
        assert_eq!(a.count_ordered(q).unwrap(), b.count_ordered(q).unwrap(), "{q}");
    }
    assert_eq!(a.residual_self_join(), b.residual_self_join());
}

/// Memory stays fixed as the stream grows (the defining synopsis
/// property), while the exact baseline grows.
#[test]
fn synopsis_memory_is_stream_independent() {
    let mut st = SketchTree::new(SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: synopsis(25, 10, 1),
        maintain_summary: false,
        track_exact: true,
        ..SketchTreeConfig::default()
    });
    let spec = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 600,
        seed: 2,
    };
    let trees = spec.generate(st.labels_mut());
    for t in trees.iter().take(100) {
        st.ingest(t);
    }
    let mem_early = st.memory_bytes();
    let exact_early = st.exact().unwrap().memory_bytes();
    for t in trees.iter().skip(100) {
        st.ingest(t);
    }
    assert_eq!(st.memory_bytes(), mem_early, "synopsis memory grew");
    assert!(
        st.exact().unwrap().memory_bytes() > exact_early * 2,
        "exact baseline should keep growing"
    );
}
