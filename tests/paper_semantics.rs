//! Integration tests pinning the paper's own worked examples to the public
//! API: the Figure 1 counting semantics, Example 1's Prüfer sequences,
//! Example 3's expression estimator, and Figure 7's query rewriting.

use sketchtree::core::query::parse_pattern;
use sketchtree::tree::{LabelTable, PruferSeq, Tree};
use sketchtree::{CountExpr, SketchTree, SketchTreeConfig, SynopsisConfig};

fn test_config() -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 2,
        synopsis: SynopsisConfig {
            s1: 80,
            s2: 7,
            virtual_streams: 31,
            topk: 0,
            independence: 5,
            topk_probability: u16::MAX,
            seed: 99,
        },
        track_exact: true,
        ..SketchTreeConfig::default()
    }
}

/// Figure 1: a stream of three trees and the query Q = A(B, C).
/// `COUNT_ord(Q) = 3` (two matches in T1, one in T3) and `COUNT(Q) = 5`
/// (plus two unordered matches in T2).
#[test]
fn figure1_counting_semantics() {
    let mut st = SketchTree::new(test_config());
    let (a, b, c) = {
        let l = st.labels_mut();
        (l.intern("A"), l.intern("B"), l.intern("C"))
    };
    // T1: A(B, A(B,C), C) — the outer A matches with its B and C children
    // (B precedes C), and the inner A(B,C) matches: 2 ordered matches.
    let t1 = Tree::node(
        a,
        vec![
            Tree::leaf(b),
            Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]),
            Tree::leaf(c),
        ],
    );
    // T2: A(C, B, A(C,B)) — two matches with C preceding B: unordered only.
    let t2 = Tree::node(
        a,
        vec![
            Tree::leaf(c),
            Tree::leaf(b),
            Tree::node(a, vec![Tree::leaf(c), Tree::leaf(b)]),
        ],
    );
    // T3: A(B, C) — one ordered match.
    let t3 = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
    for t in [&t1, &t2, &t3] {
        st.ingest(t);
    }
    assert_eq!(st.exact_count_ordered("A(B,C)").unwrap(), 3);
    assert_eq!(st.exact_count_unordered("A(B,C)").unwrap(), 5);
    // The estimates agree closely on this tiny stream.
    let ord = st.count_ordered("A(B,C)").unwrap();
    let unord = st.count_unordered("A(B,C)").unwrap();
    assert!((ord - 3.0).abs() < 2.0, "ordered estimate {ord}");
    assert!((unord - 5.0).abs() < 3.0, "unordered estimate {unord}");
}

/// Example 1: the extended Prüfer sequences of the two pattern trees.
#[test]
fn example1_prufer_sequences() {
    let mut labels = LabelTable::new();
    let (x, y, z) = (labels.intern("X"), labels.intern("Y"), labels.intern("Z"));
    // T1 = X → Y → Z (a chain).
    let t1 = Tree::node(x, vec![Tree::node(y, vec![Tree::leaf(z)])]);
    let s1 = PruferSeq::encode(&t1);
    assert_eq!(s1.lps, vec![z, y, x]);
    assert_eq!(s1.nps, vec![2, 3, 4]);
    // T2 = X with ordered children Y, Z.
    let t2 = Tree::node(x, vec![Tree::leaf(y), Tree::leaf(z)]);
    let s2 = PruferSeq::encode(&t2);
    assert_eq!(s2.lps, vec![y, x, z, x]);
    assert_eq!(s2.nps, vec![2, 5, 4, 5]);
    // Both decode back to the original trees (the bijection the
    // one-dimensional mapping depends on).
    assert_eq!(s1.decode().unwrap(), t1);
    assert_eq!(s2.decode().unwrap(), t2);
}

/// Example 3's expression shape: products, sums and differences of six
/// distinct counts, estimated unbiasedly.
#[test]
fn example3_expression_estimation() {
    let mut st = SketchTree::new(SketchTreeConfig {
        synopsis: SynopsisConfig {
            s1: 200,
            s2: 9,
            virtual_streams: 31,
            topk: 0,
            independence: 5,
            topk_probability: u16::MAX,
            seed: 3,
        },
        ..test_config()
    });
    let labels: Vec<_> = {
        let lt = st.labels_mut();
        (0..6).map(|i| lt.intern(&format!("L{i}"))).collect()
    };
    let parent = st.labels_mut().intern("P");
    // Six distinct single-edge patterns with known counts 60, 50, ..., 10.
    for (i, &l) in labels.iter().enumerate() {
        let t = Tree::node(parent, vec![Tree::leaf(l)]);
        for _ in 0..(60 - i * 10) {
            st.ingest(&t);
        }
    }
    // C(P(L0))·C(P(L1)) + C(P(L2))·C(P(L3)) − C(P(L4))·C(P(L5))
    let e = CountExpr::ordered("P(L0)")
        .mul(CountExpr::ordered("P(L1)"))
        .add(CountExpr::ordered("P(L2)").mul(CountExpr::ordered("P(L3)")))
        .sub(CountExpr::ordered("P(L4)").mul(CountExpr::ordered("P(L5)")));
    let exact = st.exact_value(&e).unwrap();
    assert_eq!(exact, 60.0 * 50.0 + 40.0 * 30.0 - 20.0 * 10.0);
    let est = st.estimate(&e).unwrap();
    assert!(
        (est - exact).abs() / exact < 0.30,
        "estimate {est} vs exact {exact}"
    );
}

/// Figure 7: `*` and `//` queries rewritten through the structural summary
/// into sets of parent-child patterns whose total equals the original.
#[test]
fn figure7_rewrites() {
    let mut st = SketchTree::new(test_config());
    let (a, b, c, d) = {
        let l = st.labels_mut();
        (l.intern("A"), l.intern("B"), l.intern("C"), l.intern("D"))
    };
    // Stream where A's children are B or C, each with a D below.
    let via_b = Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(d)])]);
    let via_c = Tree::node(a, vec![Tree::node(c, vec![Tree::leaf(d)])]);
    for _ in 0..30 {
        st.ingest(&via_b);
    }
    for _ in 0..20 {
        st.ingest(&via_c);
    }
    // Q1 = A(*(D)): resolves to {A(B(D)), A(C(D))}, total 50.
    assert_eq!(st.exact_count_ordered("A(*(D))").unwrap(), 50);
    let q1 = st.count_ordered("A(*(D))").unwrap();
    assert!((q1 - 50.0).abs() < 10.0, "Q1 estimate {q1}");
    // Q2 = A(//D): same two concrete patterns here.
    assert_eq!(st.exact_count_ordered("A(//D)").unwrap(), 50);
    let q2 = st.count_ordered("A(//D)").unwrap();
    assert!((q2 - 50.0).abs() < 10.0, "Q2 estimate {q2}");
}

/// The paper's introduction: XPath counts targets, SketchTree counts
/// pattern occurrences. For the Figure 1 stream, XPath //A[B]/C would give
/// 4; SketchTree's COUNT gives 5.
#[test]
fn query_semantics_differ_from_xpath() {
    // Already implied by figure1_counting_semantics: the unordered count is
    // 5 because the outer A of T1 contributes one occurrence per (B, C)
    // child pair, not one per C target. Assert the distinction on a
    // focused case: A with two Bs and one C has 2 occurrences of A(B,C)
    // (unordered), while XPath //A[B]/C has 1 target.
    let mut st = SketchTree::new(test_config());
    let (a, b, c) = {
        let l = st.labels_mut();
        (l.intern("A"), l.intern("B"), l.intern("C"))
    };
    let t = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(b), Tree::leaf(c)]);
    st.ingest(&t);
    assert_eq!(st.exact_count_unordered("A(B,C)").unwrap(), 2);
}

/// Queries are ad hoc — anything can be asked at any time, including
/// patterns that never occurred (exact zero via the label table) and
/// patterns that stopped occurring.
#[test]
fn ad_hoc_queries_any_time() {
    let mut st = SketchTree::new(test_config());
    let (a, b) = {
        let l = st.labels_mut();
        (l.intern("A"), l.intern("B"))
    };
    let t = Tree::node(a, vec![Tree::leaf(b)]);
    // Query before any data: 0.
    assert_eq!(st.count_ordered("A(B)").unwrap(), 0.0);
    st.ingest(&t);
    let one = st.count_ordered("A(B)").unwrap();
    assert!((one - 1.0).abs() < 1.0, "estimate {one}");
    // A pattern over known labels that never occurred in that shape.
    let zero = st.count_ordered("B(A)").unwrap();
    assert!(zero.abs() < 1.0, "estimate {zero}");
    // Unknown labels are exactly zero.
    assert_eq!(st.count_ordered("Z").unwrap(), 0.0);
    assert_eq!(parse_pattern("Z").unwrap().edge_count(), 0);
}
