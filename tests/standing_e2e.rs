//! End-to-end tests of the standing-query subsystem: subscribed clients
//! against a live server, pushed `EstimateUpdate` frames checked
//! bit-for-bit against ad-hoc queries at the same epoch, plus the
//! lifecycle and invalidation edge cases (unsubscribe, disconnect
//! reaping, duplicate subscriptions, merge-driven refresh).

use sketchtree::server::{Client, Server, ServerConfig, SubscribeMode, Update};
use sketchtree::{SketchTreeConfig, SynopsisConfig, XmlSketchTree};
use std::collections::HashMap;
use std::time::Duration;

fn config(seed: u64) -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 40,
            s2: 7,
            virtual_streams: 31,
            topk: 10,
            seed,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

fn corpus() -> Vec<String> {
    let mut docs = Vec::new();
    for i in 0..240 {
        docs.push(match i % 4 {
            0 => "<article><author>a</author><title>t</title></article>".to_string(),
            1 => "<article><author>a</author><author>b</author></article>".to_string(),
            2 => "<book><title>t</title><year>2006</year></book>".to_string(),
            _ => format!("<misc><k{}/></misc>", i % 7),
        });
    }
    docs
}

/// Drains exactly `n` pushed updates, keyed by subscription id.
fn collect(client: &mut Client, n: usize) -> HashMap<u64, Update> {
    let mut got = HashMap::new();
    for _ in 0..n {
        let u = client
            .next_update(Duration::from_secs(5))
            .expect("update stream healthy")
            .expect("update arrives within the window");
        got.insert(u.id, u);
    }
    got
}

/// The acceptance scenario: two subscribed clients plus one ad-hoc
/// client against one server.  After every ingest batch each pushed
/// estimate must be bit-identical to an ad-hoc query at that same epoch,
/// the per-batch re-evaluation cost must be independent of the reader
/// count (one evaluation pass per batch, however many subscribers), and
/// repeated ad-hoc queries between batches must hit the epoch cache.
#[test]
fn pushed_updates_match_adhoc_bit_for_bit() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(42), ..ServerConfig::default() },
    )
    .expect("server starts");

    let mut sub1 = Client::connect(server.addr()).expect("subscriber 1 connects");
    let mut sub2 = Client::connect(server.addr()).expect("subscriber 2 connects");
    let mut adhoc = Client::connect(server.addr()).expect("ad-hoc client connects");

    let (s1_article, _) = sub1
        .subscribe(SubscribeMode::Ordered, "article(author)")
        .expect("subscribe article(author)");
    let (s1_book, _) = sub1
        .subscribe(SubscribeMode::Unordered, "book(title,year)")
        .expect("subscribe book(title,year)");
    // Subscriber 2 watches the same article query — a duplicate that
    // must share the compiled plan, not add a second one.
    let (s2_article, _) = sub2
        .subscribe(SubscribeMode::Ordered, "article(author)")
        .expect("duplicate subscribe");
    assert_eq!(server.subscriptions().active(), 3);
    assert_eq!(
        server.subscriptions().distinct_queries(),
        2,
        "duplicate subscription must share one compiled plan"
    );

    let docs = corpus();
    let batches: Vec<&[String]> = docs.chunks(40).collect();
    for batch in &batches {
        adhoc.ingest_xml(batch).expect("batch ingests");

        // Every subscription gets exactly one update per batch.
        let got1 = collect(&mut sub1, 2);
        let got2 = collect(&mut sub2, 1);
        let epoch = server.shared().epoch();

        // The pushes carry the post-batch epoch...
        for u in got1.values().chain(got2.values()) {
            assert_eq!(u.epoch, epoch, "update epoch is the post-batch epoch");
        }
        // ...and are bit-identical to ad-hoc queries at that same epoch
        // (this test is the only writer, so the epoch cannot move under
        // the ad-hoc client between here and the assertions).
        let want_article = adhoc.count_ordered("article(author)").expect("ad-hoc ordered");
        let want_book = adhoc.count_unordered("book(title,year)").expect("ad-hoc unordered");
        for (id, want) in [(s1_article, want_article), (s1_book, want_book)] {
            let pushed = got1[&id].result.as_ref().expect("pushed estimate ok");
            assert_eq!(
                pushed.to_bits(),
                want.to_bits(),
                "sub1 id {id}: pushed {pushed} != ad-hoc {want} at epoch {epoch}"
            );
        }
        let pushed = got2[&s2_article].result.as_ref().expect("pushed estimate ok");
        assert_eq!(pushed.to_bits(), want_article.to_bits(), "sub2 diverged from ad-hoc");
    }

    // Re-evaluation cost is per *batch*, not per reader: the standing
    // evaluation histogram saw exactly one sample per batch even with
    // three subscriptions listening.
    let text = server.metrics().render(false);
    let evals: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("sketchtree_standing_eval_seconds_count "))
        .expect("standing eval histogram rendered")
        .trim()
        .parse()
        .expect("count parses");
    println!(
        "standing re-eval: {} batches -> {} evaluation passes ({} subscriptions, {} distinct plans)",
        batches.len(),
        evals,
        server.subscriptions().active(),
        server.subscriptions().distinct_queries(),
    );
    assert_eq!(
        evals,
        batches.len() as u64,
        "one standing evaluation pass per batch, independent of reader count"
    );

    // Between batches, repeated ad-hoc queries are cache hits: one miss
    // to compute, then pure lookups while the epoch stands still.
    let (hits0, misses0) = (server.metrics().cache_hits.get(), server.metrics().cache_misses.get());
    for _ in 0..200 {
        adhoc.count_ordered("misc(k0)").expect("repeated ad-hoc query");
    }
    let hits = server.metrics().cache_hits.get() - hits0;
    let misses = server.metrics().cache_misses.get() - misses0;
    let rate = hits as f64 / (hits + misses) as f64;
    println!("ad-hoc cache: {hits} hits / {misses} misses between batches ({:.1}%)", rate * 100.0);
    assert!(rate >= 0.99, "cache hit rate {rate} below 99% ({hits} hits, {misses} misses)");

    server.shutdown().expect("clean shutdown");
}

/// Satellite regression: a merge must invalidate everything.  Both the
/// ad-hoc result cache and the pushed standing estimates have to reflect
/// the post-merge synopsis — never a stale pre-merge value — because
/// `merge` bumps the epoch and fires the batch hook like any ingest.
#[test]
fn merge_refreshes_subscribed_and_cached_estimates() {
    let seed = 7;
    let docs = corpus();
    let (local, remote) = docs.split_at(docs.len() / 2);

    // The shard another node would ship us, and the reference synopsis
    // holding the expected post-merge state.
    let mut shard = XmlSketchTree::new(config(seed));
    for doc in remote {
        shard.ingest_xml(doc).unwrap();
    }
    let shard_bytes = sketchtree::write_snapshot(shard.inner());
    let mut reference = XmlSketchTree::new(config(seed));
    for doc in local {
        reference.ingest_xml(doc).unwrap();
    }

    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(seed), ..ServerConfig::default() },
    )
    .expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    client.ingest_xml(local).expect("local half ingests");

    let (id, _) = client
        .subscribe(SubscribeMode::Ordered, "article(author)")
        .expect("subscribe");
    // Drain the queue and warm the ad-hoc cache with the pre-merge value.
    while client.next_update(Duration::from_millis(300)).expect("drain").is_some() {}
    let before = client.count_ordered("article(author)").expect("pre-merge query");
    let epoch_before = server.shared().epoch();
    assert_eq!(
        before.to_bits(),
        reference.count_ordered("article(author)").unwrap().to_bits()
    );

    // Merge the shard over SKTP.  The reference does the same in-process.
    client.merge_snapshot(&shard_bytes).expect("merge applies");
    reference.inner_mut().merge(shard.inner()).unwrap();
    let want = reference.count_ordered("article(author)").unwrap();
    assert_ne!(want.to_bits(), before.to_bits(), "corpus halves must actually differ");

    // The merge pushed a fresh estimate at a new epoch...
    let update = client
        .next_update(Duration::from_secs(5))
        .expect("update stream healthy")
        .expect("merge broadcasts an update");
    assert_eq!(update.id, id);
    assert!(update.epoch > epoch_before, "merge must bump the epoch");
    assert_eq!(
        update.result.as_ref().expect("pushed estimate ok").to_bits(),
        want.to_bits(),
        "pushed post-merge estimate matches the reference"
    );
    // ...and the ad-hoc cache cannot serve the stale pre-merge value.
    let after = client.count_ordered("article(author)").expect("post-merge query");
    assert_eq!(after.to_bits(), want.to_bits(), "cache served a stale pre-merge estimate");

    server.shutdown().expect("clean shutdown");
}

/// Lifecycle over the wire: unsubscribing stops the pushes (updates
/// already in flight notwithstanding), a vanished client's subscriptions
/// are reaped, and unknown ids answer an error instead of wedging the
/// connection.
#[test]
fn subscription_lifecycle_over_the_wire() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: config(3), ..ServerConfig::default() },
    )
    .expect("server starts");
    let mut feeder = Client::connect(server.addr()).expect("feeder connects");
    let docs = corpus();

    // Unsubscribe stops the stream.
    let mut sub = Client::connect(server.addr()).expect("subscriber connects");
    let (id, _) = sub.subscribe(SubscribeMode::Ordered, "article(author)").expect("subscribe");
    feeder.ingest_xml(&docs[..40]).expect("batch 1");
    assert!(
        sub.next_update(Duration::from_secs(5)).expect("stream ok").is_some(),
        "subscribed: batch 1 pushes"
    );
    sub.unsubscribe(id).expect("unsubscribe acks");
    assert_eq!(server.subscriptions().active(), 0);
    // Drain anything that raced the unsubscribe, then verify silence.
    while sub.next_update(Duration::from_millis(300)).expect("drain").is_some() {}
    feeder.ingest_xml(&docs[40..80]).expect("batch 2");
    assert!(
        sub.next_update(Duration::from_millis(600)).expect("stream ok").is_none(),
        "unsubscribed: batch 2 must not push"
    );
    // Unknown ids (including double-unsubscribe) answer an error frame.
    assert!(sub.unsubscribe(id).is_err(), "double unsubscribe is an error");

    // A disconnected subscriber is reaped — table entry and metrics gauge
    // both return to zero without any batch needing to notice first.
    let mut doomed = Client::connect(server.addr()).expect("doomed subscriber connects");
    doomed.subscribe(SubscribeMode::Ordered, "book(title)").expect("subscribe");
    assert_eq!(server.subscriptions().active(), 1);
    drop(doomed);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.subscriptions().active() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect did not reap the subscription table"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(server.subscriptions().distinct_queries(), 0, "registry refcount reaped too");
    assert_eq!(server.metrics().subscriptions_active.get(), 0.0);

    server.shutdown().expect("clean shutdown");
}
