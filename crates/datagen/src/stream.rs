//! Stream specification: which dataset, how many trees, which seed.

use crate::dblp::DblpGen;
use crate::treebank::TreebankGen;
use sketchtree_tree::{LabelTable, Tree};

/// Which synthetic dataset to stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Deep, narrow, recursive — the paper's TREEBANK analogue (k = 6).
    Treebank,
    /// Shallow, bushy, value-rich, highly skewed — the DBLP analogue
    /// (k = 4).
    Dblp,
}

impl Dataset {
    /// The paper's maximum EnumTree pattern size for this dataset
    /// (Table 1).
    pub fn paper_k(self) -> usize {
        match self {
            Dataset::Treebank => 6,
            Dataset::Dblp => 4,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Treebank => "TREEBANK",
            Dataset::Dblp => "DBLP",
        }
    }
}

/// A reproducible stream of trees.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// The dataset shape.
    pub dataset: Dataset,
    /// Number of trees to stream.
    pub n_trees: usize,
    /// Generator seed.
    pub seed: u64,
}

impl StreamSpec {
    /// Materialises the stream, interning labels into `labels`.
    pub fn generate(&self, labels: &mut LabelTable) -> Vec<Tree> {
        match self.dataset {
            Dataset::Treebank => {
                let gen = TreebankGen::new(self.seed, labels);
                gen.take(self.n_trees).collect()
            }
            Dataset::Dblp => {
                let gen = DblpGen::new(self.seed, labels, 2000);
                gen.take(self.n_trees).collect()
            }
        }
    }

    /// Streams trees through a callback without materialising the vector.
    pub fn for_each(&self, labels: &mut LabelTable, mut f: impl FnMut(Tree)) {
        match self.dataset {
            Dataset::Treebank => {
                let mut gen = TreebankGen::new(self.seed, labels);
                for _ in 0..self.n_trees {
                    f(gen.next_tree());
                }
            }
            Dataset::Dblp => {
                let mut gen = DblpGen::new(self.seed, labels, 2000);
                for _ in 0..self.n_trees {
                    f(gen.next_tree());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_matches_for_each() {
        let spec = StreamSpec {
            dataset: Dataset::Treebank,
            n_trees: 25,
            seed: 4,
        };
        let mut l1 = LabelTable::new();
        let mut l2 = LabelTable::new();
        let a = spec.generate(&mut l1);
        let mut b = Vec::new();
        spec.for_each(&mut l2, |t| b.push(t));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_sexpr(), y.to_sexpr());
        }
    }

    #[test]
    fn paper_ks() {
        assert_eq!(Dataset::Treebank.paper_k(), 6);
        assert_eq!(Dataset::Dblp.paper_k(), 4);
    }

    #[test]
    fn dblp_spec_generates() {
        let spec = StreamSpec {
            dataset: Dataset::Dblp,
            n_trees: 10,
            seed: 1,
        };
        let mut labels = LabelTable::new();
        assert_eq!(spec.generate(&mut labels).len(), 10);
    }
}
