//! TREEBANK-like stream generator: deep, narrow, recursive parse trees.
//!
//! The paper's TREEBANK dataset is the Penn Treebank rendered as XML:
//! 28,699 trees that are "narrow and deep with recursive element names" and
//! encrypted values (so queries use element names only, Section 7.3).  This
//! generator produces seeded phrase-structure trees over the real Penn
//! Treebank tag set using a small probabilistic grammar: sentences expand
//! into clauses and phrases, phrases recurse (`NP → NP PP`, `SBAR → IN S`),
//! and recursion is depth-damped so trees stay in the 5–30 node range with
//! occasional deep chains — the same shape regime as the original.
//!
//! Rule choice is Zipf-weighted per nonterminal, giving the pattern
//! distribution the moderate skew Section 7.6 observes for TREEBANK
//! (contrast with [`crate::dblp`]'s much stronger skew).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchtree_tree::{Label, LabelTable, Tree};

/// Nonterminal tags (expand into children).
const NONTERMINALS: &[&str] = &[
    "S", "NP", "VP", "PP", "SBAR", "SBARQ", "SQ", "ADJP", "ADVP", "WHNP", "PRN",
];

/// Part-of-speech (terminal) tags.
const TERMINALS: &[&str] = &[
    "NN", "NNS", "NNP", "DT", "JJ", "IN", "PRP", "VBD", "VBZ", "VBP", "VB", "RB", "CC", "CD",
    "TO", "MD", "WP", "WRB", "EX", "POS",
];

/// One grammar rule: left-hand nonterminal index → right-hand tag names.
struct Rule {
    lhs: usize,
    rhs: &'static [&'static str],
}

/// The grammar: per paper Example 7, each rule is itself a tree pattern.
/// Probabilities are rank-based (earlier rules for a nonterminal are more
/// likely, Zipf-weighted), which yields skewed pattern counts.
const RULES: &[Rule] = &[
    // S
    Rule { lhs: 0, rhs: &["NP", "VP"] },
    Rule { lhs: 0, rhs: &["NP", "VP", "PP"] },
    Rule { lhs: 0, rhs: &["SBAR", "NP", "VP"] },
    Rule { lhs: 0, rhs: &["VP"] },
    Rule { lhs: 0, rhs: &["NP", "ADVP", "VP"] },
    // NP
    Rule { lhs: 1, rhs: &["DT", "NN"] },
    Rule { lhs: 1, rhs: &["NP", "PP"] },
    Rule { lhs: 1, rhs: &["DT", "JJ", "NN"] },
    Rule { lhs: 1, rhs: &["PRP"] },
    Rule { lhs: 1, rhs: &["NNP"] },
    Rule { lhs: 1, rhs: &["NP", "SBAR"] },
    Rule { lhs: 1, rhs: &["NN", "NNS"] },
    Rule { lhs: 1, rhs: &["CD", "NNS"] },
    // VP
    Rule { lhs: 2, rhs: &["VBD", "NP"] },
    Rule { lhs: 2, rhs: &["VBZ", "NP"] },
    Rule { lhs: 2, rhs: &["VBP", "NP", "PP"] },
    Rule { lhs: 2, rhs: &["MD", "VP"] },
    Rule { lhs: 2, rhs: &["VB", "NP"] },
    Rule { lhs: 2, rhs: &["VBD", "SBAR"] },
    Rule { lhs: 2, rhs: &["TO", "VP"] },
    Rule { lhs: 2, rhs: &["VBD"] },
    // PP
    Rule { lhs: 3, rhs: &["IN", "NP"] },
    Rule { lhs: 3, rhs: &["TO", "NP"] },
    // SBAR
    Rule { lhs: 4, rhs: &["IN", "S"] },
    Rule { lhs: 4, rhs: &["WHNP", "S"] },
    // SBARQ
    Rule { lhs: 5, rhs: &["WHNP", "SQ"] },
    Rule { lhs: 5, rhs: &["WRB", "SQ"] },
    // SQ
    Rule { lhs: 6, rhs: &["VBZ", "NP", "NP"] },
    Rule { lhs: 6, rhs: &["VBD", "NP", "VP"] },
    Rule { lhs: 6, rhs: &["MD", "NP", "VP"] },
    // ADJP
    Rule { lhs: 7, rhs: &["RB", "JJ"] },
    Rule { lhs: 7, rhs: &["JJ", "PP"] },
    // ADVP
    Rule { lhs: 8, rhs: &["RB"] },
    Rule { lhs: 8, rhs: &["RB", "RB"] },
    // WHNP
    Rule { lhs: 9, rhs: &["WP"] },
    Rule { lhs: 9, rhs: &["WP", "NN"] },
    // PRN
    Rule { lhs: 10, rhs: &["NP", "VP"] },
];

/// Seeded generator of treebank-like parse trees.
#[derive(Debug)]
pub struct TreebankGen {
    rng: StdRng,
    nonterminal_labels: Vec<Label>,
    terminal_labels: Vec<Label>,
    /// Per nonterminal: indices into RULES.
    rules_of: Vec<Vec<usize>>,
    /// Maximum expansion depth before forcing terminals.
    max_depth: usize,
    /// "Encrypted" word tokens under each POS leaf.  The real TREEBANK's
    /// values were encrypted but still present as distinct node labels —
    /// they are what pushed its distinct-pattern count into the millions
    /// (Table 1) despite only 28,699 trees.
    vocab: Vec<Label>,
    vocab_dist: Zipf,
}

impl TreebankGen {
    /// Creates a generator; labels are interned into `labels`.
    pub fn new(seed: u64, labels: &mut LabelTable) -> Self {
        let nonterminal_labels = NONTERMINALS.iter().map(|n| labels.intern(n)).collect();
        let terminal_labels = TERMINALS.iter().map(|n| labels.intern(n)).collect();
        let mut rules_of = vec![Vec::new(); NONTERMINALS.len()];
        for (idx, r) in RULES.iter().enumerate() {
            rules_of[r.lhs].push(idx);
        }
        let vocab = (0..4000)
            .map(|i| labels.intern(&format!("w{i:04}")))
            .collect::<Vec<_>>();
        Self {
            rng: StdRng::seed_from_u64(seed),
            nonterminal_labels,
            terminal_labels,
            rules_of,
            max_depth: 12,
            vocab_dist: Zipf::new(vocab.len(), 1.0),
            vocab,
        }
    }

    fn tag_index(name: &str) -> Option<usize> {
        NONTERMINALS.iter().position(|&n| n == name)
    }

    fn terminal_index(name: &str) -> usize {
        TERMINALS
            .iter()
            .position(|&n| n == name)
            .expect("grammar RHS tags are nonterminals or terminals")
    }

    fn expand(&mut self, nt: usize, depth: usize) -> Tree {
        let rules = &self.rules_of[nt];
        debug_assert!(!rules.is_empty(), "every nonterminal has rules");
        // Zipf-ish rank weighting: rule i with weight 1/(i+1); when deep,
        // bias strongly toward the shortest RHS to terminate.
        let pick = if depth >= self.max_depth {
            // Pick the rule with the fewest nonterminals on the RHS.
            *rules
                .iter()
                .min_by_key(|&&ri| {
                    RULES[ri]
                        .rhs
                        .iter()
                        .filter(|t| Self::tag_index(t).is_some())
                        .count()
                })
                .expect("non-empty")
        } else {
            let weights: Vec<f64> = (0..rules.len()).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            let total: f64 = weights.iter().sum();
            let mut u: f64 = self.rng.gen::<f64>() * total;
            let mut chosen = rules[rules.len() - 1];
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    chosen = rules[i];
                    break;
                }
                u -= w;
            }
            chosen
        };
        let rhs = RULES[pick].rhs;
        let children: Vec<Tree> = rhs
            .iter()
            .map(|tag| match Self::tag_index(tag) {
                Some(nti) => self.expand(nti, depth + 1),
                None => {
                    // POS leaf carrying an "encrypted" word token.
                    let word = self.vocab[self.vocab_dist.sample(&mut self.rng)];
                    Tree::node(
                        self.terminal_labels[Self::terminal_index(tag)],
                        vec![Tree::leaf(word)],
                    )
                }
            })
            .collect();
        Tree::node(self.nonterminal_labels[nt], children)
    }

    /// Generates the next parse tree (rooted at `S`, or at `SBARQ` for a
    /// question ~10% of the time, mirroring the question-treebank use case
    /// of paper Example 5).
    pub fn next_tree(&mut self) -> Tree {
        let root = if self.rng.gen::<f64>() < 0.10 { 5 } else { 0 };
        self.expand(root, 0)
    }
}

impl Iterator for TreebankGen {
    type Item = Tree;
    fn next(&mut self) -> Option<Tree> {
        Some(self.next_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut l1 = LabelTable::new();
        let mut l2 = LabelTable::new();
        let mut a = TreebankGen::new(5, &mut l1);
        let mut b = TreebankGen::new(5, &mut l2);
        for _ in 0..20 {
            assert_eq!(a.next_tree().to_sexpr(), b.next_tree().to_sexpr());
        }
    }

    #[test]
    fn trees_are_deep_and_narrow() {
        let mut labels = LabelTable::new();
        let mut g = TreebankGen::new(42, &mut labels);
        let trees: Vec<Tree> = (0..500).map(|_| g.next_tree()).collect();
        let avg_depth: f64 =
            trees.iter().map(|t| t.depth() as f64).sum::<f64>() / trees.len() as f64;
        let max_fanout = trees.iter().map(Tree::max_fanout).max().unwrap();
        let avg_size: f64 = trees.iter().map(|t| t.len() as f64).sum::<f64>() / trees.len() as f64;
        assert!(avg_depth >= 4.0, "too shallow: {avg_depth}");
        assert!(max_fanout <= 4, "treebank trees must be narrow: {max_fanout}");
        assert!((5.0..=60.0).contains(&avg_size), "avg size {avg_size}");
    }

    #[test]
    fn labels_are_recursive() {
        // The same nonterminal should appear at several depths (NP → NP PP).
        let mut labels = LabelTable::new();
        let mut g = TreebankGen::new(7, &mut labels);
        let np = labels.lookup("NP").unwrap();
        let mut np_depths = std::collections::HashSet::new();
        for _ in 0..300 {
            let t = g.next_tree();
            let mut depth = vec![0usize; t.len()];
            for id in t.preorder() {
                depth[id.index()] = t.parent(id).map_or(1, |p| depth[p.index()] + 1);
                if t.label(id) == np {
                    np_depths.insert(depth[id.index()]);
                }
            }
        }
        assert!(np_depths.len() >= 3, "NP only at depths {np_depths:?}");
    }

    #[test]
    fn questions_appear() {
        let mut labels = LabelTable::new();
        let mut g = TreebankGen::new(11, &mut labels);
        let sbarq = labels.lookup("SBARQ").unwrap();
        let hits = (0..300)
            .filter(|_| {
                let t = g.next_tree();
                t.label(t.root()) == sbarq
            })
            .count();
        // ~10% of 300 = 30 ± noise.
        assert!(hits > 5 && hits < 80, "SBARQ rate off: {hits}");
    }

    #[test]
    fn depth_is_bounded() {
        let mut labels = LabelTable::new();
        let mut g = TreebankGen::new(3, &mut labels);
        for _ in 0..300 {
            let t = g.next_tree();
            assert!(t.depth() <= 40, "runaway recursion: depth {}", t.depth());
        }
    }
}
