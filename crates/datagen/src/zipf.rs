//! A seeded Zipf sampler.
//!
//! Pattern frequencies in real tree corpora are heavily skewed — the whole
//! premise of the paper's top-k strategy (Section 5.2) — and the generators
//! reproduce that skew with Zipf-distributed choices: rank `r` is drawn with
//! probability proportional to `1 / r^s`.  The sampler precomputes the CDF
//! once (`O(n)`), then draws by binary search (`O(log n)`), which is the
//! right trade-off for the vocabulary sizes the generators use (≤ 10⁶).

use rand::Rng;

/// A Zipf distribution over ranks `0..n`.
///
/// ```
/// use sketchtree_datagen::Zipf;
/// let z = Zipf::new(100, 1.0);
/// assert!(z.pmf(0) > z.pmf(50)); // rank 0 is the most likely
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`
    /// (`s = 0` is uniform; `s ≈ 1` is classic Zipf; larger is more
    /// skewed).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n` (rank 0 is the most likely).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(50, 1.0);
        for r in 1..50 {
            assert!(z.pmf(r) < z.pmf(r - 1), "rank {r} not less likely");
        }
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut counts = [0u32; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &cnt) in counts.iter().enumerate() {
            let expect = z.pmf(r) * n as f64;
            let got = cnt as f64;
            assert!(
                (got - expect).abs() < 5.0 * expect.sqrt() + 10.0,
                "rank {r}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let z = Zipf::new(100, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic]
    fn empty_support_rejected() {
        Zipf::new(0, 1.0);
    }
}
