//! Query workload generation — paper Sections 7.3, 7.8 and 7.9.
//!
//! The paper draws query workloads *from the observed pattern population*
//! by selectivity: single patterns within a selectivity band (Figure 8),
//! 10,000 random triples for the SUM workload (Figure 11a), and 6,811
//! random pairs for PRODUCT (Figure 11b).  Selectivity of a query is its
//! exact count (sum or product for composite workloads) divided by the
//! total number of pattern instances processed.
//!
//! Workload queries are *mapped values plus exact answers* — exactly what
//! the error measurement needs — so workload generation runs off the
//! [`sketchtree_core::ExactCounter`] populated during ingestion.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchtree_core::ExactCounter;

/// One workload query: a set of pattern values with its exact answer.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadQuery {
    /// The distinct mapped pattern values involved.
    pub values: Vec<u64>,
    /// The exact answer (sum of counts for single/SUM, product for
    /// PRODUCT).
    pub exact: f64,
    /// `exact / total_instances` — the paper's selectivity measure.
    pub selectivity: f64,
}

/// Draws up to `max_queries` single-pattern queries with selectivity in
/// `[sel_lo, sel_hi)`, uniformly at random from the qualifying patterns.
pub fn single_pattern_workload(
    exact: &ExactCounter,
    sel_lo: f64,
    sel_hi: f64,
    max_queries: usize,
    seed: u64,
) -> Vec<WorkloadQuery> {
    let total = exact.total() as f64;
    let mut qualifying: Vec<(u64, u64)> = exact
        .iter()
        .filter(|&(_, c)| {
            let sel = c as f64 / total;
            sel >= sel_lo && sel < sel_hi
        })
        .collect();
    // Deterministic order before shuffling (HashMap iteration is not).
    qualifying.sort_unstable();
    let mut rng = StdRng::seed_from_u64(seed);
    shuffle(&mut qualifying, &mut rng);
    qualifying
        .into_iter()
        .take(max_queries)
        .map(|(v, c)| WorkloadQuery {
            values: vec![v],
            exact: c as f64,
            selectivity: c as f64 / total,
        })
        .collect()
}

/// Builds the SUM workload: `n` queries, each the sum of `arity` distinct
/// patterns drawn from `base` (Section 7.8: arity 3 from the Figure 8(a)
/// workload).
pub fn sum_workload(
    base: &[WorkloadQuery],
    n: usize,
    arity: usize,
    total_instances: u64,
    seed: u64,
) -> Vec<WorkloadQuery> {
    composite_workload(base, n, arity, total_instances, seed, |counts| {
        counts.iter().sum::<f64>()
    })
}

/// Builds the PRODUCT workload: `n` queries, each the product of `arity`
/// distinct patterns (Section 7.9: arity 2).
pub fn product_workload(
    base: &[WorkloadQuery],
    n: usize,
    arity: usize,
    total_instances: u64,
    seed: u64,
) -> Vec<WorkloadQuery> {
    composite_workload(base, n, arity, total_instances, seed, |counts| {
        counts.iter().product::<f64>()
    })
}

fn composite_workload(
    base: &[WorkloadQuery],
    n: usize,
    arity: usize,
    total_instances: u64,
    seed: u64,
    combine: impl Fn(&[f64]) -> f64,
) -> Vec<WorkloadQuery> {
    assert!(
        base.len() >= arity,
        "base workload too small: {} < {arity}",
        base.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let total = total_instances as f64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Pick `arity` distinct base queries.
        let mut picked: Vec<usize> = Vec::with_capacity(arity);
        while picked.len() < arity {
            let i = rng.gen_range(0..base.len());
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        let mut values: Vec<u64> = picked
            .iter()
            .flat_map(|&i| base[i].values.iter().copied())
            .collect();
        values.sort_unstable();
        values.dedup();
        if values.len() != arity {
            continue; // distinct base queries sharing a value: redraw
        }
        let counts: Vec<f64> = picked.iter().map(|&i| base[i].exact).collect();
        let exact = combine(&counts);
        out.push(WorkloadQuery {
            values,
            exact,
            selectivity: exact / total,
        });
    }
    out
}

/// Buckets queries by selectivity; returns `(lo, hi, count)` per bucket —
/// the histograms of Figures 8 and 11.
pub fn selectivity_histogram(
    queries: &[WorkloadQuery],
    edges: &[f64],
) -> Vec<(f64, f64, usize)> {
    let mut out = Vec::with_capacity(edges.len().saturating_sub(1));
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let count = queries
            .iter()
            .filter(|q| q.selectivity >= lo && q.selectivity < hi)
            .count();
        out.push((lo, hi, count));
    }
    out
}

/// Fisher–Yates with the caller's RNG.
fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> ExactCounter {
        let mut c = ExactCounter::new();
        // Values 1..=100 with count = value (total = 5050).
        for v in 1..=100u64 {
            for _ in 0..v {
                c.record(v);
            }
        }
        c
    }

    #[test]
    fn single_workload_respects_selectivity_band() {
        let c = counter();
        // Selectivity of value v is v/5050. Band [0.01, 0.02) → v in 50..101 → 51..=100.
        let w = single_pattern_workload(&c, 0.01, 0.02, 1000, 7);
        assert!(!w.is_empty());
        for q in &w {
            assert!(q.selectivity >= 0.01 && q.selectivity < 0.02);
            assert_eq!(q.values.len(), 1);
            assert!((51..=100).contains(&q.values[0]), "value {}", q.values[0]);
            assert_eq!(q.exact, q.values[0] as f64);
        }
    }

    #[test]
    fn single_workload_caps_count() {
        let c = counter();
        let w = single_pattern_workload(&c, 0.0, 1.0, 10, 7);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn single_workload_deterministic() {
        let c = counter();
        let a = single_pattern_workload(&c, 0.0, 1.0, 20, 3);
        let b = single_pattern_workload(&c, 0.0, 1.0, 20, 3);
        assert_eq!(a, b);
        let d = single_pattern_workload(&c, 0.0, 1.0, 20, 4);
        assert_ne!(a, d);
    }

    #[test]
    fn sum_workload_sums() {
        let c = counter();
        let base = single_pattern_workload(&c, 0.0, 1.0, 50, 1);
        let w = sum_workload(&base, 30, 3, c.total(), 2);
        assert_eq!(w.len(), 30);
        for q in &w {
            assert_eq!(q.values.len(), 3);
            let expect: f64 = q.values.iter().map(|&v| v as f64).sum();
            assert_eq!(q.exact, expect);
            assert!((q.selectivity - expect / 5050.0).abs() < 1e-12);
        }
    }

    #[test]
    fn product_workload_multiplies() {
        let c = counter();
        let base = single_pattern_workload(&c, 0.0, 1.0, 50, 1);
        let w = product_workload(&base, 30, 2, c.total(), 2);
        for q in &w {
            assert_eq!(q.values.len(), 2);
            let expect: f64 = q.values.iter().map(|&v| v as f64).product();
            assert_eq!(q.exact, expect);
        }
    }

    #[test]
    fn composite_values_are_distinct() {
        let c = counter();
        let base = single_pattern_workload(&c, 0.0, 1.0, 10, 1);
        let w = sum_workload(&base, 100, 3, c.total(), 9);
        for q in &w {
            let mut v = q.values.clone();
            v.dedup();
            assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn histogram_buckets() {
        let c = counter();
        let w = single_pattern_workload(&c, 0.0, 1.0, 1000, 7);
        let h = selectivity_histogram(&w, &[0.0, 0.005, 0.01, 0.02]);
        assert_eq!(h.len(), 3);
        let total: usize = h.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, w.len());
    }

    #[test]
    #[should_panic]
    fn composite_needs_enough_base() {
        let c = counter();
        let base = single_pattern_workload(&c, 0.0, 1.0, 2, 1);
        sum_workload(&base, 5, 3, c.total(), 1);
    }
}
