//! Dataset shape statistics (the inputs to Table 1 and the substitution
//! argument of DESIGN.md §3).

use sketchtree_tree::Tree;

/// Aggregate shape statistics of a tree stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Number of trees.
    pub trees: usize,
    /// Total nodes.
    pub total_nodes: u64,
    /// Mean nodes per tree.
    pub avg_nodes: f64,
    /// Mean tree height.
    pub avg_depth: f64,
    /// Maximum tree height.
    pub max_depth: usize,
    /// Mean fanout over internal nodes.
    pub avg_fanout: f64,
    /// Maximum fanout.
    pub max_fanout: usize,
}

impl StreamStats {
    /// Computes statistics over a stream.
    pub fn of<'a>(trees: impl IntoIterator<Item = &'a Tree>) -> StreamStats {
        let mut n = 0usize;
        let mut total_nodes = 0u64;
        let mut depth_sum = 0u64;
        let mut max_depth = 0usize;
        let mut internal_nodes = 0u64;
        let mut child_edges = 0u64;
        let mut max_fanout = 0usize;
        for t in trees {
            n += 1;
            total_nodes += t.len() as u64;
            let d = t.depth();
            depth_sum += d as u64;
            max_depth = max_depth.max(d);
            max_fanout = max_fanout.max(t.max_fanout());
            internal_nodes += (t.len() - t.leaf_count()) as u64;
            child_edges += t.edge_count() as u64;
        }
        assert!(n > 0, "empty stream");
        StreamStats {
            trees: n,
            total_nodes,
            avg_nodes: total_nodes as f64 / n as f64,
            avg_depth: depth_sum as f64 / n as f64,
            max_depth,
            avg_fanout: if internal_nodes == 0 {
                0.0
            } else {
                child_edges as f64 / internal_nodes as f64
            },
            max_fanout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Dataset, StreamSpec};
    use sketchtree_tree::LabelTable;

    #[test]
    fn stats_of_known_trees() {
        let mut labels = LabelTable::new();
        let a = labels.intern("a");
        let t1 = Tree::node(a, vec![Tree::leaf(a), Tree::leaf(a)]); // depth 2, fanout 2
        let t2 = Tree::leaf(a); // depth 1
        let s = StreamStats::of([&t1, &t2]);
        assert_eq!(s.trees, 2);
        assert_eq!(s.total_nodes, 4);
        assert_eq!(s.avg_nodes, 2.0);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_fanout, 2);
        assert!((s.avg_depth - 1.5).abs() < 1e-12);
        assert_eq!(s.avg_fanout, 2.0);
    }

    /// The substitution claim of DESIGN.md §3: treebank-like streams are
    /// deeper and narrower than DBLP-like streams.
    #[test]
    fn treebank_deeper_dblp_bushier() {
        let mut labels = LabelTable::new();
        let tb = StreamSpec {
            dataset: Dataset::Treebank,
            n_trees: 300,
            seed: 1,
        }
        .generate(&mut labels);
        let db = StreamSpec {
            dataset: Dataset::Dblp,
            n_trees: 300,
            seed: 1,
        }
        .generate(&mut labels);
        let ts = StreamStats::of(tb.iter());
        let ds = StreamStats::of(db.iter());
        assert!(ts.avg_depth > ds.avg_depth, "{ts:?} vs {ds:?}");
        assert!(ds.max_fanout > ts.max_fanout, "{ts:?} vs {ds:?}");
    }

    #[test]
    #[should_panic]
    fn empty_stream_rejected() {
        StreamStats::of(std::iter::empty::<&Tree>());
    }
}
