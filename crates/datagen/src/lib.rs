//! Synthetic dataset and workload generators for the SketchTree experiments.
//!
//! The paper evaluates on two real XML datasets with opposite shapes
//! (Section 7.2): **TREEBANK** (28,699 trees; narrow, deep, recursive
//! element names; values encrypted away) and **DBLP** (98,061 trees;
//! shallow, bushy, with CDATA values; more skewed pattern distribution).
//! Neither corpus ships with this repository, so [`treebank`] and [`dblp`]
//! generate seeded streams with the same *shape statistics* — depth, fanout,
//! label recursion, value skew — which are the properties every measured
//! result in Section 7 actually depends on.  See DESIGN.md §3 for the full
//! substitution argument.
//!
//! [`workload`] draws the query workloads of Sections 7.3, 7.8 and 7.9:
//! single patterns bucketed by selectivity (Figure 8), random triples for
//! the SUM workload (Figure 11a) and random pairs for PRODUCT (Figure 11b).
//!
//! Everything is deterministic given a seed, so experiments are exactly
//! reproducible.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dblp;
pub mod stats;
pub mod stream;
pub mod synth;
pub mod treebank;
pub mod workload;
pub mod zipf;

pub use dblp::DblpGen;
pub use stats::StreamStats;
pub use stream::{Dataset, StreamSpec};
pub use synth::{SynthGen, SynthShape};
pub use treebank::TreebankGen;
pub use workload::{product_workload, single_pattern_workload, sum_workload, WorkloadQuery};
pub use zipf::Zipf;
