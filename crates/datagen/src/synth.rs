//! Synthetic stress shapes for the load harness: deep, wide, adversarial.
//!
//! The paper's two corpora sit at opposite ends of the depth/fanout
//! spectrum, but neither is an *extreme*: TREEBANK tops out around depth
//! 40 and DBLP around fanout 20.  The load harness (`sketchtree-loadgen`)
//! wants shapes past both ends, plus a worst case for the unordered path:
//!
//! * [`SynthShape::Deep`] — long label-recursive chains (depth 20–60,
//!   fanout ≤ 2).  Stresses EnumTree's subtree recursion and the LPS/NPS
//!   encodings, which grow with path length.
//! * [`SynthShape::Wide`] — one root with 24–96 children drawn from a
//!   16-label pool (depth ≤ 3).  Stresses sibling enumeration and frame
//!   sizes (one tree ≈ one hundred nodes in a single SKTP frame).
//! * [`SynthShape::Adversarial`] — many *identical* siblings under a
//!   recursive spine.  Identical-sibling stars maximise the number of
//!   distinct arrangements per unordered pattern and drive the
//!   arrangement cap, the exact regime PR 5's cap fix guards.
//!
//! Like the other generators, everything is deterministic per seed and
//! labels are interned into the caller's [`LabelTable`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchtree_tree::{Label, LabelTable, Tree};

/// Which synthetic stress shape to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthShape {
    /// Label-recursive chains: depth 20–60, fanout ≤ 2.
    Deep,
    /// Flat stars: one root, 24–96 children, depth ≤ 3.
    Wide,
    /// Identical-sibling stars under a recursive spine (arrangement-cap
    /// worst case for unordered queries).
    Adversarial,
}

impl SynthShape {
    /// Display name (lowercase, used in scenario names and reports).
    pub fn name(self) -> &'static str {
        match self {
            SynthShape::Deep => "deep",
            SynthShape::Wide => "wide",
            SynthShape::Adversarial => "adversarial",
        }
    }

    /// Parses a shape name as printed by [`SynthShape::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "deep" => Some(SynthShape::Deep),
            "wide" => Some(SynthShape::Wide),
            "adversarial" => Some(SynthShape::Adversarial),
            _ => None,
        }
    }
}

/// Labels used by the deep chains: a small recursive segment alphabet so
/// the same label reappears at many depths (like TREEBANK's `NP`, only
/// more so).
const DEEP_SEGMENTS: &[&str] = &[
    "seg0", "seg1", "seg2", "seg3", "seg4", "seg5", "seg6", "seg7",
];

/// Child labels for the wide stars.
const WIDE_FIELDS: &[&str] = &[
    "f00", "f01", "f02", "f03", "f04", "f05", "f06", "f07", "f08", "f09", "f10", "f11", "f12",
    "f13", "f14", "f15",
];

/// Seeded generator of synthetic stress trees.
#[derive(Debug)]
pub struct SynthGen {
    shape: SynthShape,
    rng: StdRng,
    deep_segments: Vec<Label>,
    deep_tip: Label,
    wide_root: Label,
    wide_fields: Vec<Label>,
    wide_value: Label,
    adv_root: Label,
    adv_spine: Label,
    adv_unit: Label,
    adv_leaf: Label,
}

impl SynthGen {
    /// Creates a generator; labels are interned into `labels`.
    pub fn new(shape: SynthShape, seed: u64, labels: &mut LabelTable) -> Self {
        Self {
            shape,
            rng: StdRng::seed_from_u64(seed),
            deep_segments: DEEP_SEGMENTS.iter().map(|n| labels.intern(n)).collect(),
            deep_tip: labels.intern("tip"),
            wide_root: labels.intern("row"),
            wide_fields: WIDE_FIELDS.iter().map(|n| labels.intern(n)).collect(),
            wide_value: labels.intern("v"),
            adv_root: labels.intern("adv"),
            adv_spine: labels.intern("sp"),
            adv_unit: labels.intern("a"),
            adv_leaf: labels.intern("b"),
        }
    }

    /// Uniform integer in `lo..=hi`.
    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        lo + ((self.rng.gen::<f64>() * span as f64) as usize).min(span - 1)
    }

    /// A chain of `depth` segments.  Each level recurses into one child
    /// (occasionally two, so patterns with siblings exist at all), and the
    /// segment label cycles with a random phase so every `segN(segM)` edge
    /// shows up.
    fn deep_tree(&mut self) -> Tree {
        let depth = self.pick(20, 60);
        let phase = self.pick(0, self.deep_segments.len() - 1);
        let mut node = Tree::leaf(self.deep_tip);
        for level in (0..depth).rev() {
            let label = self.deep_segments[(phase + level) % self.deep_segments.len()];
            let children = if self.rng.gen::<f64>() < 0.15 {
                vec![node, Tree::leaf(self.deep_tip)]
            } else {
                vec![node]
            };
            node = Tree::node(label, children);
        }
        node
    }

    /// A `row` star with many field children, each holding one value leaf.
    fn wide_tree(&mut self) -> Tree {
        let fanout = self.pick(24, 96);
        let children = (0..fanout)
            .map(|_| {
                let fi = self.pick(0, WIDE_FIELDS.len() - 1);
                Tree::node(self.wide_fields[fi], vec![Tree::leaf(self.wide_value)])
            })
            .collect();
        Tree::node(self.wide_root, children)
    }

    /// A short `sp` spine; each spine node carries 4–10 *identical*
    /// `a(b)` subtrees.  All arrangements of identical siblings collide,
    /// so the unordered path churns through its arrangement budget.
    fn adversarial_tree(&mut self) -> Tree {
        let spine_len = self.pick(2, 4);
        let mut node = Tree::leaf(self.adv_leaf);
        for _ in 0..spine_len {
            let copies = self.pick(4, 10);
            let mut children: Vec<Tree> = (0..copies)
                .map(|_| Tree::node(self.adv_unit, vec![Tree::leaf(self.adv_leaf)]))
                .collect();
            children.push(node);
            node = Tree::node(self.adv_spine, children);
        }
        Tree::node(self.adv_root, vec![node])
    }

    /// Generates the next tree for the configured shape.
    pub fn next_tree(&mut self) -> Tree {
        match self.shape {
            SynthShape::Deep => self.deep_tree(),
            SynthShape::Wide => self.wide_tree(),
            SynthShape::Adversarial => self.adversarial_tree(),
        }
    }
}

impl Iterator for SynthGen {
    type Item = Tree;
    fn next(&mut self) -> Option<Tree> {
        Some(self.next_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(shape: SynthShape, seed: u64, n: usize) -> Vec<Tree> {
        let mut labels = LabelTable::new();
        let mut g = SynthGen::new(shape, seed, &mut labels);
        (0..n).map(|_| g.next_tree()).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        for shape in [SynthShape::Deep, SynthShape::Wide, SynthShape::Adversarial] {
            let a = sample(shape, 9, 15);
            let b = sample(shape, 9, 15);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_sexpr(), y.to_sexpr());
            }
        }
    }

    #[test]
    fn deep_trees_are_deep_and_narrow() {
        let trees = sample(SynthShape::Deep, 1, 100);
        for t in &trees {
            assert!(t.depth() >= 20 && t.depth() <= 62, "depth {}", t.depth());
            assert!(t.max_fanout() <= 2, "fanout {}", t.max_fanout());
        }
    }

    #[test]
    fn wide_trees_are_wide_and_shallow() {
        let trees = sample(SynthShape::Wide, 2, 100);
        for t in &trees {
            assert!(t.depth() <= 3, "depth {}", t.depth());
            assert!(t.max_fanout() >= 24, "fanout {}", t.max_fanout());
        }
    }

    #[test]
    fn adversarial_trees_have_identical_siblings() {
        let mut labels = LabelTable::new();
        let mut g = SynthGen::new(SynthShape::Adversarial, 3, &mut labels);
        let a = labels.lookup("a").unwrap();
        let t = g.next_tree();
        // Some node must have >= 4 children labelled `a`.
        let max_a_siblings = t
            .preorder()
            .iter()
            .map(|&id| t.children(id).iter().filter(|&&c| t.label(c) == a).count())
            .max()
            .unwrap();
        assert!(max_a_siblings >= 4, "only {max_a_siblings} identical sibs");
    }

    #[test]
    fn shape_names_roundtrip() {
        for shape in [SynthShape::Deep, SynthShape::Wide, SynthShape::Adversarial] {
            assert_eq!(SynthShape::parse(shape.name()), Some(shape));
        }
        assert_eq!(SynthShape::parse("nope"), None);
    }
}
