//! DBLP-like stream generator: shallow, bushy bibliographic records.
//!
//! The paper's DBLP dataset has 98,061 trees that are "shallow and bushy",
//! carry CDATA values, and exhibit a *higher* pattern-frequency skew than
//! TREEBANK — the property Section 7.7 credits for the dramatic accuracy
//! jump at tiny top-k sizes.  This generator emits seeded records
//! (`article`, `inproceedings`, …) whose field sets are fixed per record
//! type (producing a few extremely frequent structural patterns) and whose
//! values — author names, venues, years — are Zipf-drawn from finite pools
//! (producing a long tail of rarer value-carrying patterns).  Values are
//! modeled as leaf children labeled by the value string, matching the
//! XML-to-tree modeling of `sketchtree-xml` ("queries had element names as
//! well as values").

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sketchtree_tree::{Label, LabelTable, Tree};

/// Record-type weights (ranks for a Zipf choice): article is most common.
const RECORD_TYPES: &[&str] = &[
    "article",
    "inproceedings",
    "proceedings",
    "incollection",
    "phdthesis",
    "mastersthesis",
    "www",
];

/// Seeded generator of DBLP-like records.
#[derive(Debug)]
pub struct DblpGen {
    rng: StdRng,
    record_labels: Vec<Label>,
    field: Fields,
    type_dist: Zipf,
    author_dist: Zipf,
    venue_dist: Zipf,
    title_word_dist: Zipf,
    authors: Vec<Label>,
    venues: Vec<Label>,
    title_words: Vec<Label>,
    years: Vec<Label>,
    pages: Vec<Label>,
}

#[derive(Debug)]
struct Fields {
    author: Label,
    title: Label,
    year: Label,
    journal: Label,
    booktitle: Label,
    pages: Label,
    ee: Label,
    url: Label,
    school: Label,
}

impl DblpGen {
    /// Creates a generator; labels are interned into `labels`.
    ///
    /// `author_pool` controls the value-vocabulary size (the paper's DBLP
    /// slice has tens of thousands of distinct authors; scale to taste).
    pub fn new(seed: u64, labels: &mut LabelTable, author_pool: usize) -> Self {
        let record_labels = RECORD_TYPES.iter().map(|n| labels.intern(n)).collect();
        let field = Fields {
            author: labels.intern("author"),
            title: labels.intern("title"),
            year: labels.intern("year"),
            journal: labels.intern("journal"),
            booktitle: labels.intern("booktitle"),
            pages: labels.intern("pages"),
            ee: labels.intern("ee"),
            url: labels.intern("url"),
            school: labels.intern("school"),
        };
        let authors = (0..author_pool.max(8))
            .map(|i| labels.intern(&format!("Author {i:05}")))
            .collect::<Vec<_>>();
        let venues = (0..64)
            .map(|i| labels.intern(&format!("Venue {i:03}")))
            .collect::<Vec<_>>();
        let title_words = (0..256)
            .map(|i| labels.intern(&format!("word{i:03}")))
            .collect::<Vec<_>>();
        let years = (1970..=2004)
            .map(|y| labels.intern(&y.to_string()))
            .collect::<Vec<_>>();
        let pages = (0..32)
            .map(|i| labels.intern(&format!("{}-{}", i * 10 + 1, i * 10 + 9)))
            .collect::<Vec<_>>();
        Self {
            rng: StdRng::seed_from_u64(seed),
            record_labels,
            field,
            type_dist: Zipf::new(RECORD_TYPES.len(), 1.4),
            author_dist: Zipf::new(authors.len(), 1.0),
            venue_dist: Zipf::new(venues.len(), 1.1),
            title_word_dist: Zipf::new(title_words.len(), 1.0),
            authors,
            venues,
            title_words,
            years,
            pages,
        }
    }

    fn value_leaf(&self, label: Label) -> Tree {
        Tree::leaf(label)
    }

    fn field_with_value(&self, field: Label, value: Label) -> Tree {
        Tree::node(field, vec![self.value_leaf(value)])
    }

    /// Generates the next record.
    pub fn next_tree(&mut self) -> Tree {
        let ty = self.type_dist.sample(&mut self.rng);
        let mut children: Vec<Tree> = Vec::new();
        // Authors: 1..=5, skewed toward fewer.
        let n_authors = 1 + self.rng.gen_range(0..5).min(self.rng.gen_range(0..5));
        for _ in 0..n_authors {
            let a = self.authors[self.author_dist.sample(&mut self.rng)];
            children.push(self.field_with_value(self.field.author, a));
        }
        // Title: field with 1 value leaf (a Zipf word — stands in for the
        // full title CDATA the paper's queries matched on).
        let w = self.title_words[self.title_word_dist.sample(&mut self.rng)];
        children.push(self.field_with_value(self.field.title, w));
        // Year.
        let y = self.years[self.rng.gen_range(0..self.years.len())];
        children.push(self.field_with_value(self.field.year, y));
        // Venue-ish field depends on record type.
        match RECORD_TYPES[ty] {
            "article" => {
                let v = self.venues[self.venue_dist.sample(&mut self.rng)];
                children.push(self.field_with_value(self.field.journal, v));
                let p = self.pages[self.rng.gen_range(0..self.pages.len())];
                children.push(self.field_with_value(self.field.pages, p));
            }
            "inproceedings" | "proceedings" | "incollection" => {
                let v = self.venues[self.venue_dist.sample(&mut self.rng)];
                children.push(self.field_with_value(self.field.booktitle, v));
            }
            "phdthesis" | "mastersthesis" => {
                let v = self.venues[self.venue_dist.sample(&mut self.rng)];
                children.push(self.field_with_value(self.field.school, v));
            }
            _ => {}
        }
        // Optional links.
        if self.rng.gen::<f64>() < 0.6 {
            children.push(Tree::leaf(self.field.ee));
        }
        if self.rng.gen::<f64>() < 0.3 {
            children.push(Tree::leaf(self.field.url));
        }
        Tree::node(self.record_labels[ty], children)
    }
}

impl Iterator for DblpGen {
    type Item = Tree;
    fn next(&mut self) -> Option<Tree> {
        Some(self.next_tree())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut l1 = LabelTable::new();
        let mut l2 = LabelTable::new();
        let mut a = DblpGen::new(5, &mut l1, 100);
        let mut b = DblpGen::new(5, &mut l2, 100);
        for _ in 0..20 {
            assert_eq!(a.next_tree().to_sexpr(), b.next_tree().to_sexpr());
        }
    }

    #[test]
    fn trees_are_shallow_and_bushy() {
        let mut labels = LabelTable::new();
        let mut g = DblpGen::new(42, &mut labels, 200);
        let trees: Vec<Tree> = (0..500).map(|_| g.next_tree()).collect();
        for t in &trees {
            assert!(t.depth() <= 3, "DBLP records are depth <= 3: {}", t.depth());
        }
        let avg_fanout: f64 = trees
            .iter()
            .map(|t| t.fanout(t.root()) as f64)
            .sum::<f64>()
            / trees.len() as f64;
        assert!(avg_fanout >= 3.0, "records too thin: {avg_fanout}");
    }

    #[test]
    fn article_is_most_common_type() {
        let mut labels = LabelTable::new();
        let mut g = DblpGen::new(9, &mut labels, 100);
        let article = labels.lookup("article").unwrap();
        let hits = (0..500)
            .filter(|_| {
                let t = g.next_tree();
                t.label(t.root()) == article
            })
            .count();
        assert!(hits > 200, "article rate too low: {hits}");
    }

    #[test]
    fn values_are_leaf_children_of_fields() {
        let mut labels = LabelTable::new();
        let mut g = DblpGen::new(3, &mut labels, 50);
        let author = labels.lookup("author").unwrap();
        let t = g.next_tree();
        let mut saw_author_value = false;
        for id in t.preorder() {
            if t.label(id) == author {
                assert_eq!(t.fanout(id), 1);
                let v = t.children(id)[0];
                assert!(t.is_leaf(v));
                assert!(labels.name(t.label(v)).starts_with("Author"));
                saw_author_value = true;
            }
        }
        assert!(saw_author_value);
    }

    #[test]
    fn author_values_are_skewed() {
        let mut labels = LabelTable::new();
        let mut g = DblpGen::new(17, &mut labels, 500);
        let author = labels.lookup("author").unwrap();
        let mut counts: std::collections::HashMap<Label, u32> = Default::default();
        for _ in 0..2000 {
            let t = g.next_tree();
            for id in t.preorder() {
                if t.label(id) == author {
                    *counts.entry(t.label(t.children(id)[0])).or_insert(0) += 1;
                }
            }
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipf: the most frequent author should dominate the median author.
        assert!(
            freqs[0] > 20 * freqs[freqs.len() / 2].max(1),
            "not skewed: top {} vs median {}",
            freqs[0],
            freqs[freqs.len() / 2]
        );
    }
}
