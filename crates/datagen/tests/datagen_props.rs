//! Property-based tests for the data and workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sketchtree_core::ExactCounter;
use sketchtree_datagen::workload::{product_workload, single_pattern_workload, sum_workload};
use sketchtree_datagen::{Dataset, StreamSpec, Zipf};
use sketchtree_tree::LabelTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zipf samples always fall in range and the CDF is monotone.
    #[test]
    fn zipf_samples_in_range(n in 1usize..500, s in 0.0f64..2.5, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Streams are deterministic per (dataset, seed, n) and change with the
    /// seed.
    #[test]
    fn stream_determinism(seed in any::<u64>(), n in 1usize..30) {
        for dataset in [Dataset::Treebank, Dataset::Dblp] {
            let spec = StreamSpec { dataset, n_trees: n, seed };
            let mut l1 = LabelTable::new();
            let mut l2 = LabelTable::new();
            let a: Vec<String> = spec.generate(&mut l1).iter().map(|t| t.to_sexpr()).collect();
            let b: Vec<String> = spec.generate(&mut l2).iter().map(|t| t.to_sexpr()).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// Generated trees respect each dataset's shape contract.
    #[test]
    fn shape_contracts(seed in any::<u64>()) {
        let mut labels = LabelTable::new();
        let tb = StreamSpec { dataset: Dataset::Treebank, n_trees: 20, seed }
            .generate(&mut labels);
        for t in &tb {
            prop_assert!(t.max_fanout() <= 4, "treebank fanout {}", t.max_fanout());
            prop_assert!(t.depth() <= 40, "treebank depth {}", t.depth());
        }
        let db = StreamSpec { dataset: Dataset::Dblp, n_trees: 20, seed }
            .generate(&mut labels);
        for t in &db {
            prop_assert!(t.depth() <= 3, "dblp depth {}", t.depth());
        }
    }

    /// Workload invariants: selectivities in band, exact counts correct,
    /// composite values distinct, determinism per seed.
    #[test]
    fn workload_invariants(seed in any::<u64>()) {
        let mut exact = ExactCounter::new();
        for v in 1..=300u64 {
            for _ in 0..v {
                exact.record(v);
            }
        }
        let total = exact.total();
        let base = single_pattern_workload(&exact, 1e-4, 1e-2, 60, seed);
        prop_assert!(!base.is_empty());
        for q in &base {
            prop_assert!(q.selectivity >= 1e-4 && q.selectivity < 1e-2);
            prop_assert_eq!(q.exact, exact.count(q.values[0]) as f64);
        }
        if base.len() >= 3 {
            let sums = sum_workload(&base, 10, 3, total, seed);
            for q in &sums {
                prop_assert_eq!(q.values.len(), 3);
                let expect: f64 = q.values.iter().map(|&v| exact.count(v) as f64).sum();
                prop_assert_eq!(q.exact, expect);
            }
            let prods = product_workload(&base, 10, 2, total, seed);
            for q in &prods {
                prop_assert_eq!(q.values.len(), 2);
                let expect: f64 = q.values.iter().map(|&v| exact.count(v) as f64).product();
                prop_assert_eq!(q.exact, expect);
            }
        }
    }
}
