//! Standing queries over a [`SketchTree`] synopsis.
//!
//! Every ad-hoc `COUNT(Q)` pays the full query pipeline — parse, summary
//! expansion, arrangement enumeration, fingerprint mapping — before the
//! sketch is even touched, so serving the same dashboard query at high
//! QPS costs `O(query work × QPS)`.  This crate is the delta-query
//! architecture on top of the paper's linear sketch: register a query
//! once, keep its *compiled plan* (the sorted atom list or lowered
//! estimator terms) resident, and re-evaluate all registered queries once
//! per ingest batch — `O(registered queries)` per batch, independent of
//! how many subscribers read the pushed results.
//!
//! Two invariants make the design sound:
//!
//! 1. **Compiled plans are pure functions of structure.**  A pattern's
//!    atoms depend only on the label table and the structural summary
//!    (plus fixed configuration), never on the counters, so they stay
//!    valid until [`SketchTree::structure_version`] changes — which on a
//!    steady stream stops changing once the schema has been seen.
//! 2. **Evaluation reuses the ad-hoc code path.**  A compiled plan is
//!    evaluated through [`SketchTree::estimate_atoms`] /
//!    [`SketchTree::estimate_lowered`], the exact functions the ad-hoc
//!    entry points call after their own compilation step, so a pushed
//!    estimate is *bit-identical* to an ad-hoc answer at the same epoch.
//!
//! The crate is transport-agnostic: [`QueryRegistry`] knows nothing about
//! connections or sockets.  The server layers subscription tables and
//! SKTP push frames on top.  [`QueryCache`] is the companion for queries
//! that are *not* registered: an epoch-keyed memo so repeated ad-hoc
//! `COUNT(Q)` between batches is one hash lookup.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use sketchtree_core::sketchtree::{CountExpr, SketchTree};
use sketchtree_core::{parse_expr, parse_pattern};
use sketchtree_sketch::expr::Term;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a standing query's text is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMode {
    /// `COUNT_ord(Q)` — ordered embeddings of one pattern.
    Ordered,
    /// `COUNT(Q)` — unordered embeddings of one pattern.
    Unordered,
    /// A full `+ − ×` expression over counts.
    Expr,
}

impl QueryMode {
    /// Short tag used in canonical keys and log lines.
    pub fn tag(self) -> &'static str {
        match self {
            QueryMode::Ordered => "ord",
            QueryMode::Unordered => "uno",
            QueryMode::Expr => "expr",
        }
    }
}

/// A validated, canonicalized standing-query specification.
///
/// Parsing happens here, at registration time, so malformed text is
/// rejected synchronously; expansion against the synopsis happens later,
/// at first evaluation (it can legitimately fail — e.g. a wildcard that
/// expands past the pattern cap — and that failure is per-epoch state,
/// reported through [`EstimateResult`], not a registration error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    mode: QueryMode,
    /// Canonical text: verbatim for patterns, the parsed expression's
    /// display form for expressions (so `COUNT(a) +COUNT(b)` and
    /// `COUNT(a) + COUNT(b)` share one compiled plan).
    text: String,
    /// The parsed expression, kept so recompilation never re-parses.
    expr: Option<CountExpr>,
}

impl QuerySpec {
    /// Validates `text` under `mode` and builds the canonical spec.
    pub fn parse(mode: QueryMode, text: &str) -> Result<Self, String> {
        match mode {
            QueryMode::Ordered | QueryMode::Unordered => {
                parse_pattern(text).map_err(|e| e.to_string())?;
                Ok(Self { mode, text: text.to_string(), expr: None })
            }
            QueryMode::Expr => {
                let expr = parse_expr(text).map_err(|e| e.to_string())?;
                Ok(Self { mode, text: expr.to_string(), expr: Some(expr) })
            }
        }
    }

    /// The canonical cache/registry key: mode tag + canonical text.
    pub fn key(&self) -> String {
        format!("{}:{}", self.mode.tag(), self.text)
    }

    /// The query mode.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// The canonical query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed expression, for [`QueryMode::Expr`] specs.
    pub fn expr(&self) -> Option<&CountExpr> {
        self.expr.as_ref()
    }
}

/// One evaluation outcome: the estimate, or the textual reason this query
/// cannot currently be answered (e.g. expansion overflow).
pub type EstimateResult = Result<f64, String>;

/// A compiled resident plan: what is left of a query after the expensive
/// compilation half of the pipeline has run.
enum Plan {
    /// Sorted, deduplicated mapped values — evaluated via
    /// [`SketchTree::estimate_atoms`].
    Atoms(Vec<u64>),
    /// Lowered estimator terms — evaluated via
    /// [`SketchTree::estimate_lowered`].
    Terms(Vec<Term>),
}

/// A plan tagged with the structure version it was compiled against.
struct Compiled {
    plan: Result<Plan, String>,
    structure: (u64, u64),
}

/// One distinct registered query (shared by all duplicate registrations).
struct Entry {
    spec: QuerySpec,
    refs: usize,
    compiled: Option<Compiled>,
}

#[derive(Default)]
struct Inner {
    /// Distinct queries by canonical key.
    by_key: HashMap<String, Entry>,
    /// Registration id → canonical key.
    regs: HashMap<u64, String>,
}

/// A registry of standing queries with compiled-plan reuse.
///
/// Registrations are refcounted by canonical key: ten subscribers to
/// `article(author)` share one [`QuerySpec`], one compiled plan, and one
/// evaluation per batch.  [`QueryRegistry::evaluate_all`] is the per-batch
/// entry point; it recompiles a plan only when the synopsis'
/// [`SketchTree::structure_version`] moved since the plan was built.
#[derive(Default)]
pub struct QueryRegistry {
    inner: Mutex<Inner>,
    next_id: AtomicU64,
    compilations: AtomicU64,
}

impl QueryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query, returning a registration id.  Duplicate specs
    /// (same canonical key) share one compiled plan.
    pub fn register(&self, spec: QuerySpec) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.lock();
        let key = spec.key();
        inner
            .by_key
            .entry(key.clone())
            .or_insert_with(|| Entry { spec, refs: 0, compiled: None })
            .refs += 1;
        inner.regs.insert(id, key);
        id
    }

    /// Drops a registration.  The compiled plan is released when the last
    /// registration of its query goes away.  Returns `false` for unknown
    /// ids (already unregistered — idempotent).
    pub fn unregister(&self, id: u64) -> bool {
        let mut inner = self.lock();
        let Some(key) = inner.regs.remove(&id) else {
            return false;
        };
        if let Some(entry) = inner.by_key.get_mut(&key) {
            entry.refs -= 1;
            if entry.refs == 0 {
                inner.by_key.remove(&key);
            }
        }
        true
    }

    /// The canonical key a registration id maps to, if still registered.
    pub fn key_of(&self, id: u64) -> Option<String> {
        self.lock().regs.get(&id).cloned()
    }

    /// Number of live registrations.
    pub fn registrations(&self) -> usize {
        self.lock().regs.len()
    }

    /// Number of distinct queries (compiled plans) resident.
    pub fn distinct_queries(&self) -> usize {
        self.lock().by_key.len()
    }

    /// Total plan compilations performed since creation.  A steady stream
    /// holds this constant while `evaluate_all` keeps running — the
    /// observable proof of compiled-plan reuse.
    pub fn compilations(&self) -> u64 {
        self.compilations.load(Ordering::Relaxed)
    }

    /// Re-evaluates every distinct registered query against `st`,
    /// returning `(canonical key, estimate)` pairs.  Cost per call is one
    /// sketch evaluation per distinct query — plans are only recompiled
    /// when the structure version moved.
    ///
    /// Call this under the same lock scope that observed the batch (the
    /// [`sketchtree_core::concurrent::SharedSketchTree`] batch hook does),
    /// so every returned estimate belongs to exactly `st.epoch()`.
    pub fn evaluate_all(&self, st: &SketchTree) -> Vec<(String, EstimateResult)> {
        let structure = st.structure_version();
        let mut inner = self.lock();
        let mut out = Vec::with_capacity(inner.by_key.len());
        for (key, entry) in inner.by_key.iter_mut() {
            if entry.compiled.as_ref().map(|c| c.structure) != Some(structure) {
                entry.compiled = Some(Self::compile(&entry.spec, st, structure));
                self.compilations.fetch_add(1, Ordering::Relaxed);
            }
            let compiled = entry.compiled.as_ref().expect("just compiled");
            out.push((key.clone(), Self::eval(compiled, st)));
        }
        out
    }

    fn compile(spec: &QuerySpec, st: &SketchTree, structure: (u64, u64)) -> Compiled {
        let plan = match spec.mode {
            QueryMode::Ordered => {
                st.atoms_ordered(&spec.text).map(Plan::Atoms).map_err(|e| e.to_string())
            }
            QueryMode::Unordered => {
                st.atoms_unordered(&spec.text).map(Plan::Atoms).map_err(|e| e.to_string())
            }
            QueryMode::Expr => {
                let expr = spec.expr.as_ref().expect("expr specs carry their parse");
                st.lower(expr).map(Plan::Terms).map_err(|e| e.to_string())
            }
        };
        Compiled { plan, structure }
    }

    fn eval(compiled: &Compiled, st: &SketchTree) -> EstimateResult {
        match &compiled.plan {
            Err(e) => Err(e.clone()),
            Ok(Plan::Atoms(atoms)) => Ok(st.estimate_atoms(atoms)),
            Ok(Plan::Terms(terms)) => st.estimate_lowered(terms).map_err(|e| e.to_string()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// An epoch-keyed memo for *ad-hoc* (unregistered) queries.
///
/// Keys are canonical query keys ([`QuerySpec::key`]); a hit requires the
/// stored epoch to equal the asker's epoch, so a stale value can never be
/// served — any ingest, merge or restore bumps the synopsis epoch and
/// every cached entry silently expires.  Bounded: when full, the whole map
/// is dropped (entries are epoch-scoped and cheap to recompute; LRU
/// bookkeeping would cost more than it saves).
pub struct QueryCache {
    inner: Mutex<HashMap<String, (u64, f64)>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl QueryCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached estimate for `key` at exactly `epoch`, counting
    /// a hit or miss.
    pub fn lookup(&self, key: &str, epoch: u64) -> Option<f64> {
        let guard = self.lock();
        match guard.get(key) {
            Some(&(e, v)) if e == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an estimate computed at `epoch`.
    pub fn insert(&self, key: String, epoch: u64, value: f64) {
        let mut guard = self.lock();
        if guard.len() >= self.capacity && !guard.contains_key(&key) {
            guard.clear();
        }
        guard.insert(key, (epoch, value));
    }

    /// Lookups that returned a current-epoch value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (or a stale epoch).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, (u64, f64)>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_core::sketchtree::SketchTreeConfig;

    fn synopsis() -> SketchTree {
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 3,
            ..SketchTreeConfig::default()
        });
        for l in ["A", "B", "C"] {
            st.labels_mut().intern(l);
        }
        st
    }

    fn tree(st: &SketchTree) -> sketchtree_tree::Tree {
        use sketchtree_tree::Tree;
        let a = st.labels().lookup("A").unwrap();
        let b = st.labels().lookup("B").unwrap();
        Tree::node(a, vec![Tree::leaf(b), Tree::leaf(b)])
    }

    #[test]
    fn spec_canonicalizes_expressions() {
        let a = QuerySpec::parse(QueryMode::Expr, "COUNT_ord(A(B)) +COUNT(C)").unwrap();
        let b = QuerySpec::parse(QueryMode::Expr, "COUNT_ord(A(B)) + COUNT(C)").unwrap();
        assert_eq!(a.key(), b.key());
        assert!(QuerySpec::parse(QueryMode::Ordered, "A((").is_err());
        assert!(QuerySpec::parse(QueryMode::Expr, "COUNT(").is_err());
    }

    #[test]
    fn duplicate_registrations_share_one_plan() {
        let reg = QueryRegistry::new();
        let s = || QuerySpec::parse(QueryMode::Ordered, "A(B)").unwrap();
        let id1 = reg.register(s());
        let id2 = reg.register(s());
        assert_ne!(id1, id2);
        assert_eq!(reg.registrations(), 2);
        assert_eq!(reg.distinct_queries(), 1);

        let st = synopsis();
        reg.evaluate_all(&st);
        reg.evaluate_all(&st);
        assert_eq!(reg.compilations(), 1, "same structure ⇒ one compile, many evals");

        assert!(reg.unregister(id1));
        assert_eq!(reg.distinct_queries(), 1, "refcount keeps the shared plan");
        assert!(reg.unregister(id2));
        assert_eq!(reg.distinct_queries(), 0, "last unregister releases it");
        assert!(!reg.unregister(id2), "idempotent");
    }

    #[test]
    fn evaluation_is_bit_identical_to_adhoc_and_recompiles_on_structure_change() {
        let reg = QueryRegistry::new();
        reg.register(QuerySpec::parse(QueryMode::Ordered, "A(B)").unwrap());
        reg.register(QuerySpec::parse(QueryMode::Unordered, "A(B,B)").unwrap());
        reg.register(QuerySpec::parse(QueryMode::Expr, "COUNT_ord(A(B)) - COUNT(C)").unwrap());

        let mut st = synopsis();
        let t = tree(&st);
        for _ in 0..10 {
            st.ingest(&t);
        }
        let results: HashMap<String, EstimateResult> =
            reg.evaluate_all(&st).into_iter().collect();
        let want_ord = st.count_ordered("A(B)").unwrap();
        let want_uno = st.count_unordered("A(B,B)").unwrap();
        let want_expr = st
            .estimate(&sketchtree_core::parse_expr("COUNT_ord(A(B)) - COUNT(C)").unwrap())
            .unwrap();
        assert_eq!(results["ord:A(B)"].as_ref().unwrap().to_bits(), want_ord.to_bits());
        assert_eq!(results["uno:A(B,B)"].as_ref().unwrap().to_bits(), want_uno.to_bits());
        assert_eq!(
            results["expr:(COUNT_ord(A(B)) - COUNT(C))"].as_ref().unwrap().to_bits(),
            want_expr.to_bits()
        );

        // New label + transition ⇒ structure version moves ⇒ recompile.
        let before = reg.compilations();
        let d = st.labels_mut().intern("D");
        let a = st.labels().lookup("A").unwrap();
        st.ingest(&sketchtree_tree::Tree::node(a, vec![sketchtree_tree::Tree::leaf(d)]));
        reg.evaluate_all(&st);
        assert!(reg.compilations() > before, "structure change must recompile");
    }

    #[test]
    fn wildcard_plans_follow_the_summary() {
        let reg = QueryRegistry::new();
        reg.register(QuerySpec::parse(QueryMode::Ordered, "A(*)").unwrap());
        let mut st = synopsis();
        let t = tree(&st);
        st.ingest(&t);
        let first: HashMap<_, _> = reg.evaluate_all(&st).into_iter().collect();
        assert_eq!(
            first["ord:A(*)"].as_ref().unwrap().to_bits(),
            st.count_ordered("A(*)").unwrap().to_bits()
        );
        // A new child label under A widens the wildcard's expansion; the
        // compiled plan must follow, still bit-identical to ad-hoc.
        let a = st.labels().lookup("A").unwrap();
        let c = st.labels().lookup("C").unwrap();
        st.ingest(&sketchtree_tree::Tree::node(a, vec![sketchtree_tree::Tree::leaf(c)]));
        let second: HashMap<_, _> = reg.evaluate_all(&st).into_iter().collect();
        assert_eq!(
            second["ord:A(*)"].as_ref().unwrap().to_bits(),
            st.count_ordered("A(*)").unwrap().to_bits()
        );
    }

    #[test]
    fn cache_serves_same_epoch_only_and_stays_bounded() {
        let cache = QueryCache::with_capacity(2);
        assert_eq!(cache.lookup("k", 5), None);
        cache.insert("k".into(), 5, 1.5);
        assert_eq!(cache.lookup("k", 5), Some(1.5));
        assert_eq!(cache.lookup("k", 6), None, "any epoch change expires it");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        // Capacity bound: a third distinct key drops the map, not the bound.
        cache.insert("k2".into(), 5, 2.0);
        cache.insert("k3".into(), 5, 3.0);
        assert_eq!(cache.lookup("k3", 5), Some(3.0));
        assert_eq!(cache.lookup("k", 5), None, "evicted wholesale at capacity");
    }
}
