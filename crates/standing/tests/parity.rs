//! The standing-query parity gate (see `scripts/check.sh`): for random
//! streams and a random set of registered queries — ordered, unordered,
//! wildcard, descendant and expression — every estimate produced by the
//! incremental evaluator (compiled plan, re-evaluated from the batch
//! hook) is **bit-identical** to an ad-hoc query issued at the same
//! epoch through the from-scratch pipeline.  This is the invariant that
//! lets subscribers trust pushed updates as if they had queried.

use sketchtree_core::concurrent::SharedSketchTree;
use sketchtree_core::sketchtree::{SketchTree, SketchTreeConfig};
use sketchtree_core::parse_expr;
use sketchtree_standing::{EstimateResult, QueryMode, QueryRegistry, QuerySpec};
use sketchtree_tree::{Label, Tree};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The query pool parity is checked against: every compilation path —
/// simple patterns, wildcard and descendant expansion (summary-backed),
/// unordered arrangements, and expression lowering.
const POOL: &[(QueryMode, &str)] = &[
    (QueryMode::Ordered, "L0(L1)"),
    (QueryMode::Ordered, "L0(*)"),
    (QueryMode::Ordered, "L0(//L3)"),
    (QueryMode::Ordered, "L1(L2,L3)"),
    (QueryMode::Unordered, "L0(L1,L2)"),
    (QueryMode::Unordered, "L2(*)"),
    (QueryMode::Expr, "COUNT_ord(L0(L1)) - COUNT(L2(L3))"),
    (QueryMode::Expr, "COUNT_ord(L0(L1)) * COUNT_ord(L1(L2))"),
];

fn config() -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 3,
        ..SketchTreeConfig::default()
    }
}

/// Recomputes a pool query from scratch — the ad-hoc path a dashboard
/// without a subscription would take.
fn adhoc(st: &SketchTree, mode: QueryMode, text: &str) -> EstimateResult {
    match mode {
        QueryMode::Ordered => st.count_ordered(text).map_err(|e| e.to_string()),
        QueryMode::Unordered => st.count_unordered(text).map_err(|e| e.to_string()),
        QueryMode::Expr => st
            .estimate(&parse_expr(text).expect("pool expressions parse"))
            .map_err(|e| e.to_string()),
    }
}

/// Small random trees over the four pool labels.
fn arb_tree() -> impl proptest::prelude::Strategy<Value = Tree> {
    use proptest::prelude::*;
    let leaf = (0u32..4).prop_map(|l| Tree::leaf(Label(l)));
    leaf.prop_recursive(3, 12, 3, |inner| {
        ((0u32..4), prop::collection::vec(inner, 1..3))
            .prop_map(|(l, children)| Tree::node(Label(l), children))
    })
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]
    #[test]
    fn pushed_estimates_are_bit_identical_to_adhoc_at_same_epoch(
        trees in proptest::prop::collection::vec(arb_tree(), 1..30),
        mask in 1usize..(1 << POOL.len()),
        batch_size in 1usize..7,
    ) {
        let shared = SharedSketchTree::new(SketchTree::new(config()));
        shared.with_labels(|l| {
            for name in ["L0", "L1", "L2", "L3"] {
                l.intern(name);
            }
        });

        // Register the masked-in subset of the pool.
        let registry = Arc::new(QueryRegistry::new());
        let mut registered: Vec<(QueryMode, &str, String)> = Vec::new();
        for (i, &(mode, text)) in POOL.iter().enumerate() {
            if mask & (1 << i) != 0 {
                let spec = QuerySpec::parse(mode, text).expect("pool queries parse");
                let key = spec.key();
                registry.register(spec);
                registered.push((mode, text, key));
            }
        }

        // The incremental path: evaluate compiled plans from the batch
        // hook, exactly as the server's push dispatcher does.
        type Update = (u64, Vec<(String, EstimateResult)>);
        let pushed: Arc<Mutex<Vec<Update>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&pushed);
        let reg = Arc::clone(&registry);
        shared.add_batch_hook(Arc::new(move |st: &SketchTree| {
            sink.lock().unwrap().push((st.epoch(), reg.evaluate_all(st)));
        }));

        for batch in trees.chunks(batch_size) {
            shared.ingest_batch(batch);
            let (epoch, results) = pushed
                .lock()
                .unwrap()
                .last()
                .cloned()
                .expect("hook fired for this batch");
            // The push carries the post-batch epoch…
            proptest::prop_assert_eq!(epoch, shared.epoch());
            let results: HashMap<String, EstimateResult> = results.into_iter().collect();
            // …and each estimate matches a from-scratch ad-hoc query at
            // that same epoch, to the bit.
            for (mode, text, key) in &registered {
                let want = shared.read(|st| adhoc(st, *mode, text));
                let got = results.get(key).expect("every registered query is pushed");
                match (got, &want) {
                    (Ok(g), Ok(w)) => proptest::prop_assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{} diverged at epoch {}: pushed {} vs ad-hoc {}",
                        key, epoch, g, w
                    ),
                    (Err(g), Err(w)) => proptest::prop_assert_eq!(g, w),
                    (g, w) => proptest::prop_assert!(
                        false,
                        "{key}: pushed {g:?} but ad-hoc {w:?}"
                    ),
                }
            }
        }
        // Compiled-plan reuse really happened: once the structure went
        // quiet, evaluations stopped compiling.  (With a fixed label set
        // the structure can only move while new transitions appear, so
        // compilations are bounded by batches, not forced per batch —
        // asserting the exact count would over-fit; asserting the cap
        // catches a plan cache that never hits.)
        let batches = trees.chunks(batch_size).count() as u64;
        proptest::prop_assert!(
            registry.compilations() <= batches * registered.len() as u64
        );
    }
}
