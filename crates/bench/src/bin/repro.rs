//! `repro` — regenerate every table and figure of the SketchTree paper.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   table1      Table 1  — dataset summary
//!   fig8        Figure 8 — query workload histograms (both datasets)
//!   fig9        Figure 9 — EnumTree time / pattern counts vs k
//!   fig10       Figure 10 — error vs top-k (use --dataset / --s1 to pick a panel)
//!   fig11       Figure 11 — SUM / PRODUCT workload histograms
//!   fig12       Figure 12 — SUM / PRODUCT errors (use --s1)
//!   cost        §7.6/§7.7 — stream-processing cost ratios
//!   wildcards   §6.2 — `*` and `//` queries via the structural summary
//!   collisions  §6.1 ablation — fingerprint degree vs collision rate
//!   memory      §1 motivation — synopsis vs exact-counter memory growth
//!   paths       ablation — SketchTree vs Markov-table path estimator
//!   all         everything above, in paper order
//!
//! options:
//!   --dataset treebank|dblp   restrict fig8/fig10/cost to one dataset
//!   --s1 N                    restrict fig10/fig12 to one s1 value
//!   --trees N                 override the tree count for both datasets
//!   --runs N                  sketch seeds averaged per grid cell
//!   --quick                   small smoke-test scale
//! ```

use sketchtree_bench::experiments::{self, s1_values, Ctx, Scale};
use sketchtree_bench::report::Table;
use sketchtree_datagen::Dataset;
use std::process::ExitCode;

struct Options {
    experiment: String,
    dataset: Option<Dataset>,
    s1: Option<usize>,
    scale: Scale,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        experiment,
        dataset: None,
        s1: None,
        scale: Scale::default(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dataset" => {
                let v = args.next().ok_or("--dataset needs a value")?;
                opts.dataset = Some(match v.as_str() {
                    "treebank" => Dataset::Treebank,
                    "dblp" => Dataset::Dblp,
                    other => return Err(format!("unknown dataset {other:?}")),
                });
            }
            "--s1" => {
                let v = args.next().ok_or("--s1 needs a value")?;
                opts.s1 = Some(v.parse().map_err(|_| format!("bad --s1 {v:?}"))?);
            }
            "--trees" => {
                let v = args.next().ok_or("--trees needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad --trees {v:?}"))?;
                opts.scale.treebank_trees = n;
                opts.scale.dblp_trees = n;
            }
            "--runs" => {
                let v = args.next().ok_or("--runs needs a value")?;
                opts.scale.runs = v.parse().map_err(|_| format!("bad --runs {v:?}"))?;
            }
            "--quick" => {
                let trees_override =
                    opts.scale.treebank_trees != Scale::default().treebank_trees;
                let prev = opts.scale.clone();
                opts.scale = Scale::quick();
                if trees_override {
                    opts.scale.treebank_trees = prev.treebank_trees;
                    opts.scale.dblp_trees = prev.dblp_trees;
                }
            }
            other => return Err(format!("unknown option {other:?}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: repro <table1|fig8|fig9|fig10|fig11|fig12|cost|wildcards|collisions|memory|paths|all> \
     [--dataset treebank|dblp] [--s1 N] [--trees N] [--runs N] [--quick]"
        .to_string()
}

fn datasets(opts: &Options) -> Vec<Dataset> {
    match opts.dataset {
        Some(d) => vec![d],
        None => vec![Dataset::Treebank, Dataset::Dblp],
    }
}

fn s1s_for(opts: &Options, d: Dataset) -> Vec<usize> {
    match opts.s1 {
        Some(s1) => vec![s1],
        None => s1_values(d),
    }
}

fn emit(tables: Vec<Table>) {
    for t in tables {
        print!("{t}");
    }
}

fn run(opts: &Options) -> Result<(), String> {
    let mut ctx = Ctx::new(opts.scale.clone());
    let start = std::time::Instant::now();
    match opts.experiment.as_str() {
        "table1" => emit(experiments::table1(&mut ctx)),
        "fig8" => {
            for d in datasets(opts) {
                emit(experiments::fig8(&mut ctx, d));
            }
        }
        "fig9" => emit(experiments::fig9(&mut ctx)),
        "fig10" => {
            for d in datasets(opts) {
                for s1 in s1s_for(opts, d) {
                    emit(experiments::fig10(&mut ctx, d, s1));
                }
            }
        }
        "fig11" => emit(experiments::fig11(&mut ctx)),
        "fig12" => {
            for s1 in opts.s1.map(|s| vec![s]).unwrap_or_else(|| vec![25, 50]) {
                emit(experiments::fig12(&mut ctx, s1));
            }
        }
        "cost" => {
            for d in datasets(opts) {
                emit(experiments::cost(&mut ctx, d));
            }
        }
        "wildcards" => emit(experiments::wildcards(&mut ctx)),
        "collisions" => emit(experiments::collisions(&mut ctx)),
        "memory" => emit(experiments::memory(&mut ctx)),
        "paths" => emit(experiments::paths(&mut ctx)),
        "all" => {
            emit(experiments::table1(&mut ctx));
            for d in [Dataset::Treebank, Dataset::Dblp] {
                emit(experiments::fig8(&mut ctx, d));
            }
            emit(experiments::fig9(&mut ctx));
            for d in [Dataset::Treebank, Dataset::Dblp] {
                for s1 in s1s_for(opts, d) {
                    emit(experiments::fig10(&mut ctx, d, s1));
                }
            }
            emit(experiments::fig11(&mut ctx));
            for s1 in opts.s1.map(|s| vec![s]).unwrap_or_else(|| vec![25, 50]) {
                emit(experiments::fig12(&mut ctx, s1));
            }
            for d in [Dataset::Treebank, Dataset::Dblp] {
                emit(experiments::cost(&mut ctx, d));
            }
            emit(experiments::wildcards(&mut ctx));
            emit(experiments::collisions(&mut ctx));
            emit(experiments::memory(&mut ctx));
            emit(experiments::paths(&mut ctx));
        }
        other => return Err(format!("unknown experiment {other:?}\n{}", usage())),
    }
    eprintln!("\n[repro] completed in {:.1}s", start.elapsed().as_secs_f64());
    Ok(())
}

fn main() -> ExitCode {
    match parse_args().and_then(|opts| run(&opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
