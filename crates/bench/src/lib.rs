//! Experiment harness for the SketchTree reproduction.
//!
//! One module per concern:
//!
//! * [`report`] — plain-text table rendering for experiment output;
//! * [`runner`] — materialising mapped pattern streams once per dataset,
//!   feeding synopses, and measuring relative errors with the paper's
//!   sanity bound (Section 7.5: a negative approximation is clamped to
//!   `0.1 × actual`);
//! * [`experiments`] — one entry point per table/figure of the paper
//!   (Table 1, Figures 8–12, and the §7.6/§7.7 processing-cost ratios),
//!   each returning both a rendered table and structured rows.
//!
//! The `repro` binary dispatches to these; `cargo bench` runs the Criterion
//! micro-benchmarks in `benches/`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod report;
pub mod runner;
