//! Plain-text table rendering for experiment output.

use std::fmt;

/// A rendered experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption (e.g. "Figure 10(a): TREEBANK, s1 = 25").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "\n## {}\n", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:>width$} |", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        let _ = ncols;
        Ok(())
    }
}

/// Formats a byte count human-readably (KB/MB with one decimal).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.0} KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a relative error as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a selectivity range with enough precision to keep adjacent
/// quantile buckets distinguishable.
pub fn fmt_range(lo: f64, hi: f64) -> String {
    // Narrow buckets (quantile-derived) need a digit more precision or the
    // rounded endpoints collide with their neighbours.
    if lo > 0.0 && hi / lo < 3.0 {
        format!("[{lo:.1e},{hi:.1e})")
    } else {
        format!("[{lo:.0e},{hi:.0e})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["k", "value"]);
        t.row(vec!["1".into(), "short".into()]);
        t.row(vec!["22".into(), "a much longer cell".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| 22 |"));
        // Every data line has the same length.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()), "{s}");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(316 * 1024), "316 KB");
        assert_eq!(fmt_bytes(1_100_000), "1.05 MB");
    }

    #[test]
    fn pct_and_range() {
        assert_eq!(fmt_pct(0.153), "15.3%");
        assert_eq!(fmt_range(1e-5, 2e-4), "[1e-5,2e-4)");
        // Narrow buckets get extra precision.
        assert_eq!(fmt_range(1.02e-4, 1.41e-4), "[1.0e-4,1.4e-4)");
        assert_eq!(fmt_range(1.0e-4, 2.9e-4), "[1.0e-4,2.9e-4)");
    }
}
