//! Stream materialisation and error measurement.
//!
//! The error experiments (Figures 10 and 12) sweep a grid of `(s1, top-k,
//! run-seed)` configurations over the *same* pattern stream.  Enumerating
//! and fingerprinting the trees dominates ingestion cost but is identical
//! across grid cells, so [`MappedStream`] materialises the mapped value
//! stream once per dataset and each grid cell replays it into a fresh
//! synopsis — the measured estimation behaviour is exactly what an online
//! run would produce, because sketch state depends only on the value
//! sequence.
//!
//! (The §7.6/§7.7 *processing-cost* experiment deliberately does not reuse
//! the mapped stream: it times full ingests through `SketchTree::ingest`.)

use sketchtree_core::{enumerate_patterns, ExactCounter, Mapper};
use sketchtree_datagen::workload::WorkloadQuery;
use sketchtree_datagen::StreamSpec;
use sketchtree_sketch::{StreamSynopsis, SynopsisConfig};
use sketchtree_tree::{LabelTable, PruferSeq};

/// A pattern stream reduced to its one-dimensional values, with exact
/// ground truth.
pub struct MappedStream {
    /// Mapped values in stream order.
    pub values: Vec<u64>,
    /// Exact counts per value.
    pub exact: ExactCounter,
    /// Number of trees streamed.
    pub trees: usize,
    /// Wall-clock seconds spent enumerating + mapping (the Figure 9
    /// measurement).
    pub enumerate_secs: f64,
}

impl MappedStream {
    /// Enumerates a stream spec at pattern size `k` and materialises the
    /// mapped value stream (fingerprint degree 31, as in the paper).
    pub fn materialize(spec: &StreamSpec, k: usize) -> MappedStream {
        let mapper = Mapper::new(31, 0x0ACE_0F5E_ED50);
        let mut labels = LabelTable::new();
        let mut values = Vec::new();
        let mut exact = ExactCounter::new();
        let start = std::time::Instant::now();
        spec.for_each(&mut labels, |tree| {
            enumerate_patterns(&tree, k, |root, edges| {
                let pattern = tree.project(root, edges);
                let v = mapper.map_seq(&PruferSeq::encode(&pattern));
                values.push(v);
                exact.record(v);
            });
        });
        let enumerate_secs = start.elapsed().as_secs_f64();
        MappedStream {
            values,
            exact,
            trees: spec.n_trees,
            enumerate_secs,
        }
    }

    /// Total pattern instances.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no patterns were produced.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Replays the stream into a fresh synopsis, returning it together with
    /// the replay wall-clock seconds (sketch-update + top-k cost only).
    pub fn feed(&self, config: SynopsisConfig) -> (StreamSynopsis, f64) {
        let mut syn = StreamSynopsis::new(config);
        let start = std::time::Instant::now();
        for &v in &self.values {
            syn.insert(v);
        }
        (syn, start.elapsed().as_secs_f64())
    }
}

/// The paper's relative error with its sanity bound (Section 7.5): a
/// negative approximate count is replaced by `0.1 × actual`.
pub fn relative_error(actual: f64, approx: f64) -> f64 {
    debug_assert!(actual > 0.0, "workload queries have positive counts");
    let approx = if approx < 0.0 { 0.1 * actual } else { approx };
    (approx - actual).abs() / actual
}

/// How a workload query is estimated against a synopsis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Single pattern or SUM workload: total frequency (Theorems 1–2).
    Total,
    /// PRODUCT workload: product of counts (Section 4).
    Product,
}

/// Estimates one workload query.
pub fn estimate_query(syn: &StreamSynopsis, q: &WorkloadQuery, kind: QueryKind) -> f64 {
    match kind {
        QueryKind::Total => {
            if q.values.len() == 1 {
                syn.estimate_count(q.values[0])
            } else {
                syn.estimate_total(&q.values)
            }
        }
        QueryKind::Product => {
            let term = sketchtree_sketch::expr::Term {
                coeff: 1,
                queries: q.values.clone(),
            };
            syn.estimate_terms(&[term])
                .expect("harness configures sufficient independence")
        }
    }
}

/// Mean relative error of a query set against one synopsis.
pub fn avg_relative_error(
    syn: &StreamSynopsis,
    queries: &[WorkloadQuery],
    kind: QueryKind,
) -> f64 {
    assert!(!queries.is_empty());
    queries
        .iter()
        .map(|q| relative_error(q.exact, estimate_query(syn, q, kind)))
        .sum::<f64>()
        / queries.len() as f64
}

/// Selectivity buckets used for a dataset's workload, mirroring Figure 8.
pub fn bucket_edges_treebank() -> Vec<f64> {
    vec![1e-5, 2e-5, 4e-5, 8e-5, 2e-4]
}

/// Selectivity buckets for the DBLP workload (Figure 8(b)).
pub fn bucket_edges_dblp() -> Vec<f64> {
    vec![5e-6, 2.5e-5, 5e-5, 7.5e-5, 1e-4]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_datagen::Dataset;

    #[test]
    fn sanity_bound_applies_to_negative_estimates() {
        assert_eq!(relative_error(100.0, -5.0), 0.9); // approx → 10
        assert_eq!(relative_error(100.0, 100.0), 0.0);
        assert_eq!(relative_error(100.0, 150.0), 0.5);
        assert_eq!(relative_error(100.0, 0.0), 1.0);
    }

    #[test]
    fn materialized_stream_is_consistent() {
        let spec = StreamSpec {
            dataset: Dataset::Treebank,
            n_trees: 50,
            seed: 3,
        };
        let ms = MappedStream::materialize(&spec, 3);
        assert!(!ms.is_empty());
        assert_eq!(ms.len() as u64, ms.exact.total());
        assert_eq!(ms.trees, 50);
        // Every value in the stream is counted.
        let sum: u64 = ms.exact.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, ms.len() as u64);
    }

    #[test]
    fn replay_equals_online_ingest() {
        // Feeding the materialised values must produce the same synopsis
        // state as SketchTree's online path (same mapper seed + config).
        let spec = StreamSpec {
            dataset: Dataset::Dblp,
            n_trees: 20,
            seed: 9,
        };
        let ms = MappedStream::materialize(&spec, 2);
        let config = SynopsisConfig {
            s1: 10,
            s2: 3,
            virtual_streams: 7,
            topk: 4,
            independence: 4,
            topk_probability: u16::MAX,
            seed: 5,
        };
        let (a, _) = ms.feed(config.clone());
        let (b, _) = ms.feed(config);
        // Deterministic: same estimates for a few values.
        for &v in ms.values.iter().take(10) {
            assert_eq!(a.estimate_count(v), b.estimate_count(v));
        }
    }

    #[test]
    fn avg_error_improves_with_more_memory() {
        let spec = StreamSpec {
            dataset: Dataset::Dblp,
            n_trees: 150,
            seed: 1,
        };
        let ms = MappedStream::materialize(&spec, 2);
        let base = sketchtree_datagen::single_pattern_workload(
            &ms.exact, 1e-4, 1e-2, 40, 11,
        );
        assert!(base.len() >= 5, "workload too small: {}", base.len());
        let small = SynopsisConfig {
            s1: 4,
            s2: 5,
            virtual_streams: 11,
            topk: 0,
            independence: 4,
            topk_probability: u16::MAX,
            seed: 77,
        };
        let big = SynopsisConfig {
            s1: 80,
            ..small.clone()
        };
        let (syn_small, _) = ms.feed(small);
        let (syn_big, _) = ms.feed(big);
        let e_small = avg_relative_error(&syn_small, &base, QueryKind::Total);
        let e_big = avg_relative_error(&syn_big, &base, QueryKind::Total);
        assert!(
            e_big < e_small,
            "more sketches did not help: {e_small:.3} -> {e_big:.3}"
        );
    }
}
