//! One entry point per table and figure of the paper's evaluation.
//!
//! | Entry | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — dataset summary |
//! | [`fig8`] | Figure 8(a,b) — query workload histograms |
//! | [`fig9`] | Figure 9(a,b) — EnumTree time and pattern counts vs k |
//! | [`fig10`] | Figure 10(a–d) — avg relative error vs top-k size |
//! | [`fig11`] | Figure 11(a,b) — SUM / PRODUCT workload histograms |
//! | [`fig12`] | Figure 12(a–d) — SUM / PRODUCT relative errors |
//! | [`cost`] | §7.6/§7.7 — stream-processing cost ratios |
//! | [`wildcards`] | Figure 7 / §6.2 — `*` and `//` rewriting demo |
//!
//! Scales default to laptop-size streams (see [`Scale`]); the paper's
//! original sizes are recorded alongside so EXPERIMENTS.md can compare
//! shapes. Everything is seeded and deterministic.

use crate::report::{fmt_bytes, fmt_pct, fmt_range, Table};
use crate::runner::{
    avg_relative_error, bucket_edges_dblp, bucket_edges_treebank, MappedStream, QueryKind,
};
use sketchtree_datagen::workload::{
    product_workload, selectivity_histogram, single_pattern_workload, sum_workload, WorkloadQuery,
};
use sketchtree_datagen::{Dataset, StreamSpec, StreamStats};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_tree::LabelTable;
use std::collections::HashMap;

/// Experiment sizing.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Trees in the TREEBANK-like stream (paper: 28,699).
    pub treebank_trees: usize,
    /// Trees in the DBLP-like stream (paper: 98,061).
    pub dblp_trees: usize,
    /// Independent sketch seeds averaged per grid cell (paper: 5).
    pub runs: usize,
    /// Max queries drawn per selectivity bucket.
    pub queries_per_bucket: usize,
    /// SUM workload size (paper: 10,000).
    pub sum_queries: usize,
    /// PRODUCT workload size (paper: 6,811).
    pub product_queries: usize,
    /// Stream generator seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            treebank_trees: 2000,
            dblp_trees: 3000,
            runs: 2,
            queries_per_bucket: 60,
            sum_queries: 400,
            product_queries: 300,
            seed: 20060403, // ICDE 2006 vintage
        }
    }
}

impl Scale {
    /// A fast smoke-test scale.
    pub fn quick() -> Self {
        Self {
            treebank_trees: 400,
            dblp_trees: 600,
            runs: 2,
            queries_per_bucket: 25,
            sum_queries: 80,
            product_queries: 60,
            ..Self::default()
        }
    }

    fn trees(&self, d: Dataset) -> usize {
        match d {
            Dataset::Treebank => self.treebank_trees,
            Dataset::Dblp => self.dblp_trees,
        }
    }
}

/// Paper-faithful sweep parameters per dataset (Section 7.5–7.7).
pub fn s1_values(d: Dataset) -> Vec<usize> {
    match d {
        Dataset::Treebank => vec![25, 50],
        Dataset::Dblp => vec![50, 75],
    }
}

/// Top-k sweep per dataset (per virtual stream; Section 7.5–7.7).
pub fn topk_values(d: Dataset) -> Vec<usize> {
    match d {
        Dataset::Treebank => vec![50, 100, 150, 200, 250, 300],
        Dataset::Dblp => vec![1, 50, 100, 150],
    }
}

fn bucket_edges(d: Dataset) -> Vec<f64> {
    match d {
        Dataset::Treebank => bucket_edges_treebank(),
        Dataset::Dblp => bucket_edges_dblp(),
    }
}

/// A selectivity bucket: `(lo, hi, queries)`.
pub type Bucket = (f64, f64, Vec<WorkloadQuery>);

/// Fixed paper parameters.
const S2: usize = 7;
const VIRTUAL_STREAMS: usize = 229;

/// Lazily-materialised mapped streams shared across experiments.
#[derive(Default)]
pub struct Ctx {
    /// Sizing for every experiment run through this context.
    pub scale: Scale,
    streams: HashMap<(Dataset, usize), MappedStream>,
}

impl Ctx {
    /// Creates a context at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            streams: HashMap::new(),
        }
    }

    fn spec(&self, d: Dataset) -> StreamSpec {
        StreamSpec {
            dataset: d,
            n_trees: self.scale.trees(d),
            seed: self.scale.seed,
        }
    }

    /// The mapped stream for a dataset at pattern size `k`, materialising
    /// on first use.
    pub fn mapped(&mut self, d: Dataset, k: usize) -> &MappedStream {
        let spec = self.spec(d);
        self.streams
            .entry((d, k))
            .or_insert_with(|| MappedStream::materialize(&spec, k))
    }

    /// The Figure 8 single-pattern workload for a dataset, one bucket per
    /// selectivity range.
    pub fn bucketed_workload(&mut self, d: Dataset) -> Vec<Bucket> {
        let per_bucket = self.scale.queries_per_bucket;
        let ms = self.mapped(d, d.paper_k());
        let edges = bucket_edges(d);
        edges
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let qs =
                    single_pattern_workload(&ms.exact, w[0], w[1], per_bucket, 1000 + i as u64);
                (w[0], w[1], qs)
            })
            .collect()
    }

}

/// Table 1: dataset summary — # trees, max pattern size k, # distinct
/// ordered tree patterns — plus the shape statistics backing the
/// substitution argument.
pub fn table1(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Table 1: Dataset Summary (scaled streams; paper: TREEBANK 28,699 trees / 7,041,113 \
         distinct patterns, DBLP 98,061 trees / 11,301,512 distinct patterns)",
        &[
            "dataset",
            "# trees",
            "max k",
            "# distinct patterns",
            "# pattern instances",
            "avg depth",
            "max fanout",
        ],
    );
    for d in [Dataset::Treebank, Dataset::Dblp] {
        let spec = ctx.spec(d);
        let mut labels = LabelTable::new();
        let trees = spec.generate(&mut labels);
        let stats = StreamStats::of(trees.iter());
        let ms = ctx.mapped(d, d.paper_k());
        t.row(vec![
            d.name().into(),
            stats.trees.to_string(),
            d.paper_k().to_string(),
            ms.exact.distinct().to_string(),
            ms.len().to_string(),
            format!("{:.1}", stats.avg_depth),
            stats.max_fanout.to_string(),
        ]);
    }
    vec![t]
}

/// Figure 8: single-pattern query workload histograms by selectivity.
pub fn fig8(ctx: &mut Ctx, d: Dataset) -> Vec<Table> {
    let buckets = ctx.bucketed_workload(d);
    let ms = ctx.mapped(d, d.paper_k());
    let total = ms.exact.total();
    let mut t = Table::new(
        format!(
            "Figure 8({}): {} query workload ({} pattern instances streamed)",
            if d == Dataset::Treebank { "a" } else { "b" },
            d.name(),
            total
        ),
        &["selectivity range", "# queries", "count range"],
    );
    for (lo, hi, qs) in &buckets {
        let (cmin, cmax) = qs.iter().fold((u64::MAX, 0u64), |(mn, mx), q| {
            (mn.min(q.exact as u64), mx.max(q.exact as u64))
        });
        t.row(vec![
            fmt_range(*lo, *hi),
            qs.len().to_string(),
            if qs.is_empty() {
                "-".into()
            } else {
                format!("[{cmin}, {cmax}]")
            },
        ]);
    }
    vec![t]
}

/// Figure 9: EnumTree wall-clock time (a) and pattern counts (b) as k
/// grows, for both datasets.
pub fn fig9(ctx: &mut Ctx) -> Vec<Table> {
    let mut time_t = Table::new(
        "Figure 9(a): EnumTree total processing time vs k (seconds; includes sequence \
         construction and Rabin mapping, as in the paper)",
        &["k", "TREEBANK (s)", "DBLP (s)"],
    );
    let mut count_t = Table::new(
        "Figure 9(b): total ordered tree patterns generated vs k",
        &["k", "TREEBANK", "DBLP"],
    );
    let ks = [2usize, 3, 4, 5, 6];
    let mut times: HashMap<(Dataset, usize), f64> = HashMap::new();
    let mut counts: HashMap<(Dataset, usize), usize> = HashMap::new();
    for &k in &ks {
        for d in [Dataset::Treebank, Dataset::Dblp] {
            if d == Dataset::Dblp && k > 4 {
                continue; // paper sweeps DBLP only to k = 4
            }
            let ms = ctx.mapped(d, k);
            times.insert((d, k), ms.enumerate_secs);
            counts.insert((d, k), ms.len());
        }
    }
    for &k in &ks {
        let cell = |m: &HashMap<(Dataset, usize), f64>, d| {
            m.get(&(d, k)).map_or("-".into(), |v| format!("{v:.3}"))
        };
        let ccell = |m: &HashMap<(Dataset, usize), usize>, d| {
            m.get(&(d, k)).map_or("-".into(), |v: &usize| v.to_string())
        };
        time_t.row(vec![
            k.to_string(),
            cell(&times, Dataset::Treebank),
            cell(&times, Dataset::Dblp),
        ]);
        count_t.row(vec![
            k.to_string(),
            ccell(&counts, Dataset::Treebank),
            ccell(&counts, Dataset::Dblp),
        ]);
    }
    vec![time_t, count_t]
}

/// Figure 10: average relative error vs top-k size, one table per
/// requested `s1`.
pub fn fig10(ctx: &mut Ctx, d: Dataset, s1: usize) -> Vec<Table> {
    let buckets = ctx.bucketed_workload(d);
    let runs = ctx.scale.runs;
    let mut headers: Vec<String> = vec!["top-k".into(), "memory".into()];
    headers.extend(buckets.iter().map(|(lo, hi, _)| fmt_range(*lo, *hi)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 10: {} avg relative error vs top-k size (s1 = {s1}, s2 = {S2}, p = \
             {VIRTUAL_STREAMS}, {runs} runs)",
            d.name()
        ),
        &header_refs,
    );
    let ms = ctx.mapped(d, d.paper_k());
    for topk in topk_values(d) {
        let mut bucket_errs = vec![0.0f64; buckets.len()];
        let mut mem = 0usize;
        for r in 0..runs {
            let config = SynopsisConfig {
                s1,
                s2: S2,
                virtual_streams: VIRTUAL_STREAMS,
                topk,
                independence: 4,
                topk_probability: u16::MAX,
                seed: 0xBEEF + r as u64 * 7919,
            };
            let (syn, _) = ms.feed(config);
            mem = syn.memory_bytes();
            for (i, (_, _, qs)) in buckets.iter().enumerate() {
                if !qs.is_empty() {
                    bucket_errs[i] += avg_relative_error(&syn, qs, QueryKind::Total);
                }
            }
        }
        let mut row = vec![topk.to_string(), fmt_bytes(mem)];
        for (i, (_, _, qs)) in buckets.iter().enumerate() {
            row.push(if qs.is_empty() {
                "-".into()
            } else {
                fmt_pct(bucket_errs[i] / runs as f64)
            });
        }
        t.row(row);
    }
    vec![t]
}

/// Figure 11: SUM and PRODUCT workload selectivity histograms.
pub fn fig11(ctx: &mut Ctx) -> Vec<Table> {
    let (sums, products, total) = composite_workloads(ctx);
    let mut out = Vec::new();
    for (name, wl) in [("a — SUM", &sums), ("b — PRODUCT", &products)] {
        let mut sels: Vec<f64> = wl.iter().map(|q| q.selectivity).collect();
        sels.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let edges = quantile_edges(&sels, 4);
        let hist = selectivity_histogram(wl, &edges);
        let mut t = Table::new(
            format!(
                "Figure 11({name}) workload distribution ({} queries over {total} sequences)",
                wl.len()
            ),
            &["selectivity range", "# queries"],
        );
        for (lo, hi, n) in hist {
            t.row(vec![fmt_range(lo, hi), n.to_string()]);
        }
        out.push(t);
    }
    out
}

/// Figure 12: SUM (a,b) and PRODUCT (c,d) average relative errors vs
/// top-k at one `s1`.  Both workloads are evaluated against the *same*
/// synopsis feeds (the sketches don't depend on the workload), which
/// halves the dominant replay cost.
pub fn fig12(ctx: &mut Ctx, s1: usize) -> Vec<Table> {
    let (sums, products, _) = composite_workloads(ctx);
    let runs = ctx.scale.runs;
    let panels: Vec<(&str, QueryKind, Vec<WorkloadQuery>)> = vec![
        ("SUM", QueryKind::Total, sums),
        ("PRODUCT", QueryKind::Product, products),
    ];
    // Bucket each workload by its own selectivity quartiles.
    let bucketed: Vec<(&str, QueryKind, Vec<Bucket>)> = panels
        .into_iter()
        .map(|(name, kind, wl)| {
            let mut sels: Vec<f64> = wl.iter().map(|q| q.selectivity).collect();
            sels.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let edges = quantile_edges(&sels, 4);
            let buckets = edges
                .windows(2)
                .map(|w| {
                    let qs: Vec<WorkloadQuery> = wl
                        .iter()
                        .filter(|q| q.selectivity >= w[0] && q.selectivity < w[1])
                        .cloned()
                        .collect();
                    (w[0], w[1], qs)
                })
                .collect();
            (name, kind, buckets)
        })
        .collect();
    let ms = ctx.mapped(Dataset::Treebank, Dataset::Treebank.paper_k());
    let topks = topk_values(Dataset::Treebank);
    // errs[panel][topk_idx][bucket_idx], plus memory per topk.
    let mut errs: Vec<Vec<Vec<f64>>> = bucketed
        .iter()
        .map(|(_, _, b)| vec![vec![0.0; b.len()]; topks.len()])
        .collect();
    let mut mems = vec![0usize; topks.len()];
    for (ti, &topk) in topks.iter().enumerate() {
        for r in 0..runs {
            let config = SynopsisConfig {
                s1,
                s2: S2,
                virtual_streams: VIRTUAL_STREAMS,
                topk,
                independence: 5, // products need 5-wise; supersedes 4-wise
                topk_probability: u16::MAX,
                seed: 0xBEEF + r as u64 * 7919,
            };
            let (syn, _) = ms.feed(config);
            mems[ti] = syn.memory_bytes();
            for (pi, (_, kind, buckets)) in bucketed.iter().enumerate() {
                for (bi, (_, _, qs)) in buckets.iter().enumerate() {
                    if !qs.is_empty() {
                        errs[pi][ti][bi] += avg_relative_error(&syn, qs, *kind);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for (pi, (name, _, buckets)) in bucketed.iter().enumerate() {
        let mut headers: Vec<String> = vec!["top-k".into(), "memory".into()];
        headers.extend(buckets.iter().map(|(lo, hi, _)| fmt_range(*lo, *hi)));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!(
                "Figure 12: TREEBANK {name} workload avg relative error vs top-k (s1 = {s1}, \
                 {runs} runs)"
            ),
            &header_refs,
        );
        for (ti, &topk) in topks.iter().enumerate() {
            let mut row = vec![topk.to_string(), fmt_bytes(mems[ti])];
            for (bi, (_, _, qs)) in buckets.iter().enumerate() {
                row.push(if qs.is_empty() {
                    "-".into()
                } else {
                    fmt_pct(errs[pi][ti][bi] / runs as f64)
                });
            }
            t.row(row);
        }
        out.push(t);
    }
    out
}

fn composite_workloads(ctx: &mut Ctx) -> (Vec<WorkloadQuery>, Vec<WorkloadQuery>, u64) {
    let buckets = ctx.bucketed_workload(Dataset::Treebank);
    let scale = ctx.scale.clone();
    let ms = ctx.mapped(Dataset::Treebank, Dataset::Treebank.paper_k());
    let base: Vec<WorkloadQuery> = buckets.into_iter().flat_map(|(_, _, qs)| qs).collect();
    let total = ms.exact.total();
    let sums = sum_workload(&base, scale.sum_queries, 3, total, 4242);
    let products = product_workload(&base, scale.product_queries, 2, total, 4243);
    (sums, products, total)
}

/// Log-spaced-by-quantile bucket edges over a sorted selectivity list.
fn quantile_edges(sorted: &[f64], buckets: usize) -> Vec<f64> {
    assert!(!sorted.is_empty());
    let mut edges = Vec::with_capacity(buckets + 1);
    for i in 0..buckets {
        edges.push(sorted[i * sorted.len() / buckets]);
    }
    edges.push(sorted[sorted.len() - 1] * 1.0000001);
    edges.dedup();
    edges
}

/// §7.6 / §7.7: stream-processing cost vs s1 and vs top-k size.
///
/// Unlike the error experiments this times the *full online path*
/// (EnumTree + Prüfer + mapping + sketch updates + top-k) through
/// `SketchTree::ingest`.
pub fn cost(ctx: &mut Ctx, d: Dataset) -> Vec<Table> {
    use sketchtree_core::{SketchTree, SketchTreeConfig};
    let s1s = s1_values(d);
    let topks = topk_values(d);
    let trees = (ctx.scale.trees(d) / 4).max(100);
    let spec = StreamSpec {
        dataset: d,
        n_trees: trees,
        seed: ctx.scale.seed,
    };
    let mut t = Table::new(
        format!(
            "Processing cost ({}, {} trees): paper reports ~2.3x when s1 doubles (TREEBANK), \
             ~1.6x for s1 50 to 75 (DBLP), and only marginal growth in top-k size",
            d.name(),
            trees
        ),
        &["s1", "top-k", "ingest (s)", "vs first row"],
    );
    let mut first = None;
    for &s1 in &s1s {
        for &topk in [topks[0], *topks.last().expect("non-empty")].iter() {
            let config = SketchTreeConfig {
                max_pattern_edges: d.paper_k(),
                synopsis: SynopsisConfig {
                    s1,
                    s2: S2,
                    virtual_streams: VIRTUAL_STREAMS,
                    topk,
                    independence: 4,
                    topk_probability: u16::MAX,
                    seed: 99,
                },
                maintain_summary: false,
                track_exact: false,
                ..SketchTreeConfig::default()
            };
            let mut st = SketchTree::new(config);
            let stream = spec.generate(st.labels_mut());
            let start = std::time::Instant::now();
            for tree in &stream {
                st.ingest(tree);
            }
            let secs = start.elapsed().as_secs_f64();
            let base = *first.get_or_insert(secs);
            t.row(vec![
                s1.to_string(),
                topk.to_string(),
                format!("{secs:.2}"),
                format!("{:.2}x", secs / base),
            ]);
        }
    }
    vec![t]
}

/// Figure 7 / §6.2: `*` and `//` query rewriting through the structural
/// summary, with exact verification.
pub fn wildcards(ctx: &mut Ctx) -> Vec<Table> {
    use sketchtree_core::{SketchTree, SketchTreeConfig};
    let spec = StreamSpec {
        dataset: Dataset::Treebank,
        n_trees: (ctx.scale.treebank_trees / 5).max(100),
        seed: ctx.scale.seed,
    };
    let config = SketchTreeConfig {
        max_pattern_edges: 4,
        synopsis: SynopsisConfig {
            s1: 50,
            s2: S2,
            virtual_streams: VIRTUAL_STREAMS,
            topk: 50,
            independence: 4,
            topk_probability: u16::MAX,
            seed: 5,
        },
        maintain_summary: true,
        track_exact: true,
        // `//` expansions must stay within max_pattern_edges (paper §6.2:
        // "we assume that the resulting tree patterns are within size k");
        // bound the expansion depth accordingly.
        expand_limits: sketchtree_core::summary::ExpandLimits {
            max_descendant_depth: 2,
            ..Default::default()
        },
        ..SketchTreeConfig::default()
    };
    let mut st = SketchTree::new(config);
    let mut trees = Vec::new();
    {
        let spec2 = spec.clone();
        spec2.for_each(st.labels_mut(), |t| trees.push(t));
    }
    for t in &trees {
        st.ingest(t);
    }
    let queries = [
        "VP(*,NP)",
        "S(NP(*),VP)",
        "S(//NN)",
        "NP(//JJ)",
        "VP(VBD,NP(DT,NN))",
    ];
    let mut t = Table::new(
        "Section 6.2: wildcard and descendant queries via the structural summary \
         (TREEBANK-like stream)",
        &["query", "exact", "estimate", "rel err"],
    );
    for q in queries {
        let exact = st.exact_count_ordered(q).expect("exact tracking on") as f64;
        let est = st.count_ordered(q).expect("valid query");
        let err = if exact > 0.0 {
            crate::runner::relative_error(exact, est)
        } else {
            0.0
        };
        t.row(vec![
            q.into(),
            format!("{exact:.0}"),
            format!("{est:.0}"),
            fmt_pct(err),
        ]);
    }
    vec![t]
}


/// Ablation: fingerprint degree vs collision rate (§6.1).  The paper picks
/// degree 31; this quantifies what smaller/larger degrees would do on a
/// real pattern population.
pub fn collisions(ctx: &mut Ctx) -> Vec<Table> {
    use sketchtree_tree::{LabelTable, PruferSeq};
    use std::collections::HashMap;

    let spec = StreamSpec {
        dataset: Dataset::Treebank,
        n_trees: (ctx.scale.treebank_trees / 2).max(200),
        seed: ctx.scale.seed,
    };
    let mut t = Table::new(
        "Section 6.1 ablation: Rabin fingerprint degree vs collision count \
         (distinct sequences merged by sharing a fingerprint)",
        &["degree", "distinct sequences", "distinct fingerprints", "collisions"],
    );
    // Collect distinct sequences once.
    let mut labels = LabelTable::new();
    let mut seqs: std::collections::HashSet<Vec<u64>> = Default::default();
    spec.for_each(&mut labels, |tree| {
        sketchtree_core::enumerate_patterns(&tree, 4, |root, edges| {
            let p = tree.project(root, edges);
            seqs.insert(PruferSeq::encode(&p).symbols());
        });
    });
    for degree in [16u32, 24, 31, 40, 61] {
        let fingerprinter = sketchtree_hash::RabinFingerprinter::new(degree, 7);
        let mut by_fp: HashMap<u64, u32> = HashMap::new();
        for s in &seqs {
            // Re-fingerprint the raw symbol tuples.
            *by_fp.entry(fingerprinter.fingerprint_symbols(s)).or_insert(0) += 1;
        }
        let distinct_fps = by_fp.len();
        t.row(vec![
            degree.to_string(),
            seqs.len().to_string(),
            distinct_fps.to_string(),
            (seqs.len() - distinct_fps).to_string(),
        ]);
    }
    vec![t]
}

/// The introduction's motivation, measured: synopsis memory is flat while
/// the deterministic per-pattern counter grows with the stream.
pub fn memory(ctx: &mut Ctx) -> Vec<Table> {
    let ms = ctx.mapped(Dataset::Treebank, 4);
    let mut t = Table::new(
        "Section 1 motivation: synopsis memory is fixed while the exact counter grows \
         with distinct patterns (the paper-scale streams reach 7-11M distinct patterns \
         = 100-180 MB of counters against the same fixed synopsis)",
        &[
            "pattern instances",
            "distinct patterns",
            "exact memory",
            "synopsis memory",
        ],
    );
    let config = SynopsisConfig {
        s1: 25,
        s2: S2,
        virtual_streams: VIRTUAL_STREAMS,
        topk: 50,
        independence: 4,
        topk_probability: u16::MAX,
        seed: 1,
    };
    let mut syn = sketchtree_sketch::StreamSynopsis::new(config);
    let mut exact = sketchtree_core::ExactCounter::new();
    let checkpoints: Vec<usize> = (1..=5).map(|i| i * ms.len() / 5).collect();
    let mut next = 0usize;
    for (i, &v) in ms.values.iter().enumerate() {
        syn.insert(v);
        exact.record(v);
        if next < checkpoints.len() && i + 1 == checkpoints[next] {
            t.row(vec![
                (i + 1).to_string(),
                exact.distinct().to_string(),
                fmt_bytes(exact.memory_bytes()),
                fmt_bytes(syn.memory_bytes()),
            ]);
            next += 1;
        }
    }
    vec![t]
}

/// Ablation: SketchTree vs the Markov-table path estimator on linear-chain
/// queries (the only query class the Markov table supports).
pub fn paths(ctx: &mut Ctx) -> Vec<Table> {
    use sketchtree_core::{MarkovPathTable, SketchTree, SketchTreeConfig};
    let spec = StreamSpec {
        dataset: Dataset::Treebank,
        n_trees: (ctx.scale.treebank_trees / 2).max(200),
        seed: ctx.scale.seed,
    };
    let mut st = SketchTree::new(SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 50,
            s2: S2,
            virtual_streams: VIRTUAL_STREAMS,
            topk: 50,
            independence: 4,
            topk_probability: u16::MAX,
            seed: 3,
        },
        maintain_summary: false,
        track_exact: true,
        ..SketchTreeConfig::default()
    });
    let mut markov = MarkovPathTable::new();
    let trees = spec.generate(st.labels_mut());
    for tree in &trees {
        st.ingest(tree);
        markov.observe(tree);
    }
    // Chain queries of length 3 and 4 over the grammar's frequent spines.
    let queries = [
        "S(NP(DT))",
        "S(VP(VBD))",
        "NP(NP(PP))",
        "VP(MD(VP))",
        "S(NP(NP(PP)))",
        "SBAR(IN(S(VP)))",
    ];
    let mut t = Table::new(
        format!(
            "Path-query ablation vs Markov table ({} KB) — SketchTree answers \
             arbitrary patterns, the Markov table only linear paths",
            markov.memory_bytes() / 1024
        ),
        &["path", "exact", "sketchtree", "markov"],
    );
    for q in queries {
        let exact = st.exact_count_ordered(q).expect("tracking on");
        let sk = st.count_ordered(q).expect("valid");
        // Convert the chain pattern text to the label path.
        let path: Vec<sketchtree_tree::Label> = q
            .replace(['(', ')'], " ")
            .split_whitespace()
            .filter_map(|n| st.labels().lookup(n))
            .collect();
        let mk = markov.estimate_path(&path);
        t.row(vec![
            q.into(),
            exact.to_string(),
            format!("{sk:.0}"),
            format!("{mk:.0}"),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Ctx {
        Ctx::new(Scale {
            treebank_trees: 120,
            dblp_trees: 150,
            runs: 1,
            queries_per_bucket: 10,
            sum_queries: 15,
            product_queries: 10,
            seed: 1,
        })
    }

    #[test]
    fn table1_runs() {
        let mut ctx = tiny_ctx();
        let tables = table1(&mut ctx);
        assert_eq!(tables[0].rows.len(), 2);
    }

    #[test]
    fn fig9_monotone_counts() {
        let mut ctx = tiny_ctx();
        let tables = fig9(&mut ctx);
        // Counts grow with k for TREEBANK.
        let counts: Vec<u64> = tables[1]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn quantile_edges_cover() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64 / 1000.0).collect();
        let e = quantile_edges(&xs, 4);
        assert!(e.len() >= 2);
        assert!(e[0] <= xs[0]);
        assert!(*e.last().unwrap() > *xs.last().unwrap());
    }

    #[test]
    fn wildcards_runs() {
        let mut ctx = tiny_ctx();
        let tables = wildcards(&mut ctx);
        assert_eq!(tables[0].rows.len(), 5);
    }
}
