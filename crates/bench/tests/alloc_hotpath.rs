//! Allocation micro-bench for the ingest hot path.
//!
//! The wire-speed insert path — sign cache, reusable sign buffer, top-k
//! estimate scratch — is designed to touch the allocator zero times per
//! element once warm.  This test pins that property with a counting
//! global allocator: a warm-up pass grows every reusable buffer, then a
//! measured pass over the *same* value stream must allocate nothing.
//!
//! Ignored by default (`cargo test -p sketchtree-bench -- --ignored`):
//! the global allocator hook taxes every other test in the binary, so it
//! lives alone in this integration-test crate.
//!
//! This file is an integration test, outside the library's
//! `#![forbid(unsafe_code)]`: a `GlobalAlloc` impl is unavoidably
//! unsafe, and the unsafety is confined to delegating to [`System`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Bytes allocated on this thread while `COUNTING` is set.
    static ALLOCATED: Cell<u64> = const { Cell::new(0) };
    /// Number of allocator calls on this thread while `COUNTING` is set.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    /// Gate so unrelated test-harness allocation is not charged.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

// SAFETY: every method delegates directly to `System`; the bookkeeping
// uses const-initialized thread-locals, which never allocate on access,
// so the hook cannot recurse into itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn note(bytes: usize) {
    COUNTING.with(|c| {
        if c.get() {
            ALLOCATED.with(|a| a.set(a.get() + bytes as u64));
            ALLOCATIONS.with(|n| n.set(n.get() + 1));
        }
    });
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on, returning (bytes, calls).
fn count_allocations<F: FnOnce()>(f: F) -> (u64, u64) {
    ALLOCATED.with(|a| a.set(0));
    ALLOCATIONS.with(|n| n.set(0));
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    (ALLOCATED.with(Cell::get), ALLOCATIONS.with(Cell::get))
}

/// A DBLP-like fingerprint stream: heavy repetition (the regime the sign
/// cache exists for) plus a long distinct tail.
fn workload() -> Vec<u64> {
    let mut vals = Vec::with_capacity(40_000);
    let mut x = 0x5EED_1234u64;
    for _ in 0..40_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = x >> 33;
        let v = if r % 10 < 7 { r % 2_048 } else { r % 500_000 };
        vals.push(v.wrapping_mul(0x9E3779B97F4A7C15));
    }
    vals
}

#[test]
#[ignore = "alloc-counting micro-bench; run with -- --ignored"]
fn slab_insert_path_allocates_zero_bytes_after_warmup() {
    use sketchtree_sketch::{StreamSynopsis, SynopsisConfig};

    let mut syn = StreamSynopsis::new(SynopsisConfig::default());
    let vals = workload();
    // Warm-up: grows the sign buffer, the top-k heaps and their hash
    // indexes, and the estimate scratch to steady-state capacity.
    for &v in &vals {
        syn.insert(v);
    }
    // Measured pass over the same stream: the hot path must be
    // allocation-free per element.
    let (bytes, calls) = count_allocations(|| {
        for &v in &vals {
            syn.insert(v);
        }
    });
    assert_eq!(
        (bytes, calls),
        (0, 0),
        "slab insert path allocated {bytes} bytes in {calls} calls over {} elements",
        vals.len()
    );
}
