//! Batch-ingest throughput of the sharded parallel pipeline vs. the
//! single-thread baseline on the DBLP workload: the PR-4 acceptance
//! target is ≥2× at 4 ingest threads.  All thread counts produce a
//! bit-identical synopsis, so this measures pure pipeline speedup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_core::{IngestOptions, SharedSketchTree, SketchTree, SketchTreeConfig};
use sketchtree_datagen::{Dataset, StreamSpec};
use sketchtree_sketch::SynopsisConfig;

fn bench_parallel_ingest(c: &mut Criterion) {
    let dataset = Dataset::Dblp;
    let config = SketchTreeConfig {
        max_pattern_edges: dataset.paper_k(),
        synopsis: SynopsisConfig {
            s1: 25,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            ..SynopsisConfig::default()
        },
        maintain_summary: false,
        ..SketchTreeConfig::default()
    };
    // Pre-build trees against a synopsis-owned label table clone.
    let mut proto = SketchTree::new(config.clone());
    let trees = StreamSpec {
        dataset,
        n_trees: 200,
        seed: 3,
    }
    .generate(proto.labels_mut());

    let fresh = || {
        let mut st = SketchTree::new(config.clone());
        // Re-intern the generator's labels in id order so the pre-built
        // trees' label ids resolve identically.
        for idx in 0..proto.labels().len() {
            st.labels_mut()
                .intern(proto.labels().name(sketchtree_tree::Label(idx as u32)));
        }
        st
    };

    let mut g = c.benchmark_group("parallel_ingest_dblp");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trees.len() as u64));

    // Single-thread baseline: the plain sequential ingest loop.
    g.bench_with_input(BenchmarkId::new("sequential", 1), &trees, |b, trees| {
        b.iter(|| {
            let mut st = fresh();
            for t in trees {
                st.ingest(t);
            }
            black_box(st.patterns_processed())
        })
    });

    // Sharded pipeline at increasing widths.  The synopsis is
    // bit-identical at every width; only wall-clock should move.
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("sharded", threads), &trees, |b, trees| {
            b.iter(|| {
                let shared = SharedSketchTree::with_options(
                    fresh(),
                    IngestOptions::with_threads(threads),
                );
                shared.ingest_batch(trees);
                black_box(shared.read(|st| st.patterns_processed()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_ingest);
criterion_main!(benches);
