//! Query-time estimation cost across the full synopsis: point queries,
//! set totals (Theorem 2) and products (Section 4), at the paper's
//! configuration (p = 229 virtual streams, s2 = 7).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sketchtree_sketch::expr::Term;
use sketchtree_sketch::{StreamSynopsis, SynopsisConfig};

fn synopsis() -> StreamSynopsis {
    let mut syn = StreamSynopsis::new(SynopsisConfig {
        s1: 25,
        s2: 7,
        virtual_streams: 229,
        topk: 50,
        independence: 5,
        topk_probability: u16::MAX,
        seed: 2,
    });
    for v in 0..50_000u64 {
        syn.insert(v % 3000);
    }
    syn
}

fn bench_point(c: &mut Criterion) {
    let syn = synopsis();
    c.bench_function("synopsis_point_estimate", |b| {
        b.iter(|| black_box(syn.estimate_count(black_box(1234))))
    });
}

fn bench_total(c: &mut Criterion) {
    let syn = synopsis();
    let mut g = c.benchmark_group("synopsis_total_estimate");
    for n in [2usize, 4, 8, 24] {
        let values: Vec<u64> = (0..n as u64).map(|i| i * 97 + 3).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, values| {
            b.iter(|| black_box(syn.estimate_total(values)))
        });
    }
    g.finish();
}

fn bench_product(c: &mut Criterion) {
    let syn = synopsis();
    let term = Term {
        coeff: 1,
        queries: vec![101, 997],
    };
    c.bench_function("synopsis_product_estimate", |b| {
        b.iter(|| black_box(syn.estimate_terms(std::slice::from_ref(&term)).expect("ok")))
    });
}

criterion_group!(benches, bench_point, bench_total, bench_product);
criterion_main!(benches);
