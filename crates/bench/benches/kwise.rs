//! ξ family evaluation cost — the innermost operation of every sketch
//! update and estimate.  Compares the Mersenne-61 polynomial family at
//! several independence degrees against the classic AMS BCH construction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_hash::{Bch4Sign, KWiseSign, Sign};

fn bench_kwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("xi_sign");
    g.throughput(Throughput::Elements(1024));
    for k in [4usize, 5, 8] {
        let xi = KWiseSign::from_seed(42, k);
        g.bench_with_input(BenchmarkId::new("m61_poly", k), &xi, |b, xi| {
            b.iter(|| {
                let mut acc = 0i64;
                for v in 0..1024u64 {
                    acc += xi.sign(black_box(v * 2654435761));
                }
                acc
            })
        });
    }
    let bch = Bch4Sign::from_seed(42);
    g.bench_function("bch4", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for v in 0..1024u64 {
                acc += bch.sign(black_box(v * 2654435761));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kwise);
criterion_main!(benches);
