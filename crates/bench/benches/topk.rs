//! Top-k tracking overhead — the paper's §7.6 claim that growing the top-k
//! size adds only marginal processing cost (5–10%), plus an ablation
//! against the deterministic Misra–Gries and Space-Saving baselines.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_sketch::frequent::{MisraGries, SpaceSaving};
use sketchtree_sketch::{SketchBank, TopKTracker};

/// A fixed skewed value stream.
fn stream() -> Vec<u64> {
    let mut out = Vec::new();
    for v in 1..=200u64 {
        for _ in 0..(2000 / v) {
            out.push(v * 7919);
        }
    }
    // Deterministic interleave.
    let mut rng = sketchtree_hash::SplitMix64::new(5);
    for i in (1..out.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        out.swap(i, j);
    }
    out
}

fn bench_topk_insert(c: &mut Criterion) {
    let values = stream();
    let mut g = c.benchmark_group("ingest_with_topk");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.sample_size(10);
    for topk in [0usize, 50, 300] {
        g.bench_with_input(BenchmarkId::from_parameter(topk), &topk, |b, &topk| {
            b.iter(|| {
                let mut bank = SketchBank::new(3, 25, 7, 4);
                let mut tracker = TopKTracker::new(topk);
                for &v in &values {
                    bank.update(v, 1);
                    tracker.process(v, &mut bank);
                }
                black_box(tracker.len())
            })
        });
    }
    g.finish();
}

fn bench_deterministic_baselines(c: &mut Criterion) {
    let values = stream();
    let mut g = c.benchmark_group("heavy_hitter_baselines");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("misra_gries_50", |b| {
        b.iter(|| {
            let mut mg = MisraGries::new(50);
            for &v in &values {
                mg.insert(v);
            }
            black_box(mg.heavy_hitters().len())
        })
    });
    g.bench_function("space_saving_50", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(50);
            for &v in &values {
                ss.insert(v);
            }
            black_box(ss.heavy_hitters().len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_topk_insert, bench_deterministic_baselines);
criterion_main!(benches);
