//! Micro-benchmarks for the extension substrates: snapshot write/read,
//! Markov-table observation and estimation, windowed expiry, and the
//! streaming document splitter.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sketchtree_core::snapshot::{read_snapshot, write_snapshot};
use sketchtree_core::{MarkovPathTable, SketchTree, SketchTreeConfig};
use sketchtree_core::window::WindowedSketchTree;
use sketchtree_datagen::{Dataset, StreamSpec};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_tree::{LabelTable, Tree};
use sketchtree_xml::writer::write_forest;
use sketchtree_xml::DocumentSplitter;

fn small_config() -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 25,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    }
}

fn built_synopsis() -> SketchTree {
    let mut st = SketchTree::new(small_config());
    let spec = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 300,
        seed: 5,
    };
    let trees = spec.generate(st.labels_mut());
    for t in &trees {
        st.ingest(t);
    }
    st
}

fn bench_snapshot(c: &mut Criterion) {
    let st = built_synopsis();
    let bytes = write_snapshot(&st);
    let mut g = c.benchmark_group("snapshot");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("write", |b| b.iter(|| black_box(write_snapshot(&st)).len()));
    g.bench_function("read", |b| {
        b.iter(|| black_box(read_snapshot(&bytes).expect("valid")).trees_processed())
    });
    g.finish();
}

fn bench_markov(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let trees = StreamSpec {
        dataset: Dataset::Treebank,
        n_trees: 200,
        seed: 9,
    }
    .generate(&mut labels);
    let mut g = c.benchmark_group("markov");
    let nodes: usize = trees.iter().map(Tree::len).sum();
    g.throughput(Throughput::Elements(nodes as u64));
    g.bench_function("observe", |b| {
        b.iter(|| {
            let mut m = MarkovPathTable::new();
            for t in &trees {
                m.observe(t);
            }
            black_box(m.entries())
        })
    });
    let mut m = MarkovPathTable::new();
    for t in &trees {
        m.observe(t);
    }
    let path: Vec<_> = ["S", "NP", "NP", "PP"]
        .iter()
        .filter_map(|n| labels.lookup(n))
        .collect();
    g.bench_function("estimate_path", |b| {
        b.iter(|| black_box(m.estimate_path(black_box(&path))))
    });
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut labels_tmp = LabelTable::new();
    let trees = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 400,
        seed: 2,
    }
    .generate(&mut labels_tmp);
    let mut g = c.benchmark_group("window_ingest_with_expiry");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trees.len() as u64));
    g.bench_function("w100", |b| {
        b.iter(|| {
            let mut w = WindowedSketchTree::new(small_config(), 100);
            // Re-intern labels so ids line up with the generated trees.
            for (_, name) in labels_tmp.iter() {
                w.labels_mut().intern(name);
            }
            for t in &trees {
                w.ingest(t);
            }
            black_box(w.window_len())
        })
    });
    g.finish();
}

fn bench_splitter(c: &mut Criterion) {
    let mut labels = LabelTable::new();
    let trees = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 500,
        seed: 8,
    }
    .generate(&mut labels);
    let xml = write_forest(&trees, &labels, &|l| {
        let n = labels.name(l);
        n.contains(' ') || n.starts_with(|c: char| c.is_ascii_digit())
    });
    let mut g = c.benchmark_group("splitter");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("split_documents", |b| {
        b.iter(|| {
            let mut s = DocumentSplitter::new(std::io::Cursor::new(xml.as_bytes()));
            let mut n = 0;
            while let Some(d) = s.next_document().expect("valid") {
                n += d.len();
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_snapshot, bench_markov, bench_window, bench_splitter);
criterion_main!(benches);
