//! Sketch-bank update and point-estimate cost as s1 grows — the paper's
//! §7.6 observation that processing cost scales (slightly super-)linearly
//! in s1, as a micro-benchmark.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_sketch::SketchBank;

fn bench_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("bank_update");
    g.throughput(Throughput::Elements(256));
    for s1 in [25usize, 50, 75] {
        let mut bank = SketchBank::new(3, s1, 7, 4);
        g.bench_with_input(BenchmarkId::from_parameter(s1), &s1, |b, _| {
            b.iter(|| {
                for v in 0..256u64 {
                    bank.update(black_box(v.wrapping_mul(0x9E3779B9)), 1);
                }
            })
        });
    }
    g.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let mut g = c.benchmark_group("bank_estimate_point");
    for s1 in [25usize, 50, 75] {
        let mut bank = SketchBank::new(3, s1, 7, 4);
        for v in 0..10_000u64 {
            bank.update(v % 500, 1);
        }
        g.bench_with_input(BenchmarkId::from_parameter(s1), &bank, |b, bank| {
            b.iter(|| black_box(bank.estimate_point(black_box(123))))
        });
    }
    g.finish();
}

fn bench_self_join(c: &mut Criterion) {
    let mut bank = SketchBank::new(9, 50, 7, 4);
    for v in 0..10_000u64 {
        bank.update(v % 500, 1);
    }
    c.bench_function("bank_estimate_self_join", |b| {
        b.iter(|| black_box(bank.estimate_self_join()))
    });
}

criterion_group!(benches, bench_update, bench_estimate, bench_self_join);
criterion_main!(benches);
