//! Prüfer encode/decode throughput (the per-pattern canonicalisation cost
//! on SketchTree's ingest path).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_datagen::{Dataset, StreamSpec};
use sketchtree_tree::{LabelTable, PruferSeq, Tree};

fn sample_trees(dataset: Dataset, n: usize) -> Vec<Tree> {
    let mut labels = LabelTable::new();
    StreamSpec {
        dataset,
        n_trees: n,
        seed: 7,
    }
    .generate(&mut labels)
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("prufer_encode");
    for dataset in [Dataset::Treebank, Dataset::Dblp] {
        let trees = sample_trees(dataset, 200);
        let nodes: usize = trees.iter().map(Tree::len).sum();
        g.throughput(Throughput::Elements(nodes as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(dataset.name()),
            &trees,
            |b, trees| {
                b.iter(|| {
                    for t in trees {
                        black_box(PruferSeq::encode(t));
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("prufer_decode");
    for dataset in [Dataset::Treebank, Dataset::Dblp] {
        let seqs: Vec<PruferSeq> = sample_trees(dataset, 200)
            .iter()
            .map(PruferSeq::encode)
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(dataset.name()),
            &seqs,
            |b, seqs| {
                b.iter(|| {
                    for s in seqs {
                        black_box(s.decode().expect("valid"));
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
