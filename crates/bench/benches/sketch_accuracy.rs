//! Accuracy-vs-memory ablation: SketchTree's boosted AMS banks against the
//! Count sketch comparator at matched memory, on the same skewed stream.
//! Not a Criterion timing bench — it asserts the accuracy relation and
//! prints a small table (run via `cargo bench --bench sketch_accuracy`).

use sketchtree_sketch::countsketch::CountSketch;
use sketchtree_sketch::{StreamSynopsis, SynopsisConfig};

fn main() {
    let mut syn = StreamSynopsis::new(SynopsisConfig {
        s1: 25,
        s2: 7,
        virtual_streams: 229,
        topk: 50,
        independence: 4,
        topk_probability: u16::MAX,
        seed: 4,
    });
    // Count sketch of roughly equal memory: 229*175 counters ≈ 40k.
    let mut cs = CountSketch::new(4, 7, 5700);
    let mut truth = std::collections::HashMap::new();
    for v in 1..=4000u64 {
        let f = 40_000 / v;
        for _ in 0..f {
            syn.insert(v);
            cs.update(v, 1);
        }
        truth.insert(v, f);
    }
    let mut err_syn = 0.0;
    let mut err_cs = 0.0;
    let queries: Vec<u64> = (50..150).collect();
    for &q in &queries {
        let t = truth[&q] as f64;
        err_syn += (syn.estimate_count(q) - t).abs() / t;
        err_cs += (cs.estimate(q) - t).abs() / t;
    }
    err_syn /= queries.len() as f64;
    err_cs /= queries.len() as f64;
    println!("avg relative error over {} mid-frequency queries:", queries.len());
    println!("  sketchtree synopsis (topk=50): {:.3}", err_syn);
    println!("  count sketch (matched memory): {:.3}", err_cs);
    assert!(err_syn < 0.5, "synopsis error out of expected range: {err_syn}");
}
