//! Network-path overhead: ingest throughput and query latency through the
//! `SKTP` wire protocol against a loopback server, for comparison with the
//! in-process numbers from the `ingest` and `estimate` benches.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_core::SketchTreeConfig;
use sketchtree_server::{Client, Server, ServerConfig};
use sketchtree_sketch::SynopsisConfig;

fn paper_config() -> SketchTreeConfig {
    SketchTreeConfig {
        max_pattern_edges: 2,
        synopsis: SynopsisConfig {
            s1: 25,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            ..SynopsisConfig::default()
        },
        maintain_summary: false,
        ..SketchTreeConfig::default()
    }
}

fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "<article><author>a{}</author><title>t</title><year>{}</year></article>",
                i % 20,
                1990 + i % 30
            )
        })
        .collect()
}

fn bench_remote_ingest(c: &mut Criterion) {
    let mut g = c.benchmark_group("remote_ingest");
    g.sample_size(10);
    for batch in [1usize, 16, 128] {
        let docs = corpus(256);
        g.throughput(Throughput::Elements(docs.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &docs, |b, docs| {
            b.iter_with_setup(
                || {
                    let server = Server::start(
                        "127.0.0.1:0",
                        ServerConfig { sketch: paper_config(), ..ServerConfig::default() },
                    )
                    .expect("server");
                    let client = Client::connect(server.addr()).expect("client");
                    (server, client)
                },
                |(server, mut client)| {
                    let mut total = 0u64;
                    for chunk in docs.chunks(batch) {
                        total += client.ingest_xml(chunk).expect("ingest").trees;
                    }
                    black_box(total);
                    server.shutdown().expect("shutdown");
                },
            )
        });
    }
    g.finish();
}

fn bench_remote_query(c: &mut Criterion) {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig { sketch: paper_config(), ..ServerConfig::default() },
    )
    .expect("server");
    let mut client = Client::connect(server.addr()).expect("client");
    client.ingest_xml(&corpus(512)).expect("seed ingest");

    let mut g = c.benchmark_group("remote_query");
    g.bench_function("count_ordered", |b| {
        b.iter(|| black_box(client.count_ordered("article(author)").expect("query")))
    });
    g.bench_function("count_unordered", |b| {
        b.iter(|| black_box(client.count_unordered("article(author,title)").expect("query")))
    });
    g.bench_function("stats", |b| b.iter(|| black_box(client.stats().expect("stats"))));
    g.bench_function("ping", |b| b.iter(|| client.ping().expect("ping")));
    g.finish();
    server.shutdown().expect("shutdown");
}

criterion_group!(benches, bench_remote_ingest, bench_remote_query);
criterion_main!(benches);
