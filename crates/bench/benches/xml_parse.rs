//! XML parse + tree-build throughput (the ingest front-end when streaming
//! real documents rather than in-memory trees).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sketchtree_datagen::{Dataset, StreamSpec};
use sketchtree_tree::LabelTable;
use sketchtree_xml::writer::write_forest;
use sketchtree_xml::{XmlPullParser, XmlTreeBuilder};

fn forest_xml() -> String {
    let mut labels = LabelTable::new();
    let trees = StreamSpec {
        dataset: Dataset::Dblp,
        n_trees: 300,
        seed: 13,
    }
    .generate(&mut labels);
    // Value labels (author names, venues, years, page ranges) must be
    // written as character data — they are not valid element names.
    write_forest(&trees, &labels, &|l| {
        let n = labels.name(l);
        n.contains(' ') || n.starts_with(|c: char| c.is_ascii_digit())
    })
}

fn bench_pull_parser(c: &mut Criterion) {
    let xml = forest_xml();
    let mut g = c.benchmark_group("xml");
    g.throughput(Throughput::Bytes(xml.len() as u64));
    g.bench_function("pull_events", |b| {
        b.iter(|| {
            let mut p = XmlPullParser::new(&xml);
            let mut n = 0u64;
            while let Some(ev) = p.next_event().expect("valid") {
                n += 1;
                black_box(&ev);
            }
            n
        })
    });
    g.bench_function("build_trees", |b| {
        b.iter(|| {
            let mut labels = LabelTable::new();
            let mut builder = XmlTreeBuilder::default();
            let trees = builder.parse_forest(&xml, &mut labels).expect("valid");
            black_box(trees.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pull_parser);
criterion_main!(benches);
