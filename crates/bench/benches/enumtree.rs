//! EnumTree throughput vs k — the Figure 9 measurement as a
//! micro-benchmark.  The paper's claim is that wall-clock tracks the number
//! of patterns generated almost linearly; Criterion's per-k throughput
//! (patterns/second staying roughly flat as k grows) is exactly that claim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_core::{count_patterns, enumerate_patterns};
use sketchtree_datagen::{Dataset, StreamSpec};
use sketchtree_tree::{LabelTable, Tree};

fn sample(dataset: Dataset, n: usize) -> Vec<Tree> {
    let mut labels = LabelTable::new();
    StreamSpec {
        dataset,
        n_trees: n,
        seed: 11,
    }
    .generate(&mut labels)
}

fn bench_enumtree(c: &mut Criterion) {
    for dataset in [Dataset::Treebank, Dataset::Dblp] {
        let trees = sample(dataset, 60);
        let mut g = c.benchmark_group(format!("enumtree_{}", dataset.name()));
        for k in 2..=dataset.paper_k() {
            let total: u64 = trees.iter().map(|t| count_patterns(t, k)).sum();
            g.throughput(Throughput::Elements(total));
            g.bench_with_input(BenchmarkId::from_parameter(k), &trees, |b, trees| {
                b.iter(|| {
                    let mut n = 0u64;
                    for t in trees {
                        enumerate_patterns(t, k, |root, edges| {
                            n += 1;
                            black_box((root, edges.len()));
                        });
                    }
                    n
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_enumtree);
criterion_main!(benches);
