//! Full ingest-path throughput (EnumTree + Prüfer + Rabin + sketch updates
//! and top-k, per arriving document) at the paper's synopsis configuration:
//! the per-document cost behind the §7.6/§7.7 processing-time ratios.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sketchtree_core::{SketchTree, SketchTreeConfig};
use sketchtree_datagen::{Dataset, StreamSpec};
use sketchtree_sketch::SynopsisConfig;

fn bench_ingest(c: &mut Criterion) {
    for dataset in [Dataset::Treebank, Dataset::Dblp] {
        let mut g = c.benchmark_group(format!("ingest_{}", dataset.name()));
        g.sample_size(10);
        for s1 in [25usize, 50] {
            let config = SketchTreeConfig {
                max_pattern_edges: dataset.paper_k(),
                synopsis: SynopsisConfig {
                    s1,
                    s2: 7,
                    virtual_streams: 229,
                    topk: 50,
                    ..SynopsisConfig::default()
                },
                maintain_summary: false,
                ..SketchTreeConfig::default()
            };
            // Pre-build trees against a synopsis-owned label table clone.
            let mut proto = SketchTree::new(config.clone());
            let trees = StreamSpec {
                dataset,
                n_trees: 100,
                seed: 3,
            }
            .generate(proto.labels_mut());
            g.throughput(Throughput::Elements(trees.len() as u64));
            g.bench_with_input(BenchmarkId::from_parameter(s1), &trees, |b, trees| {
                b.iter(|| {
                    let mut st = SketchTree::new(config.clone());
                    // Re-intern the generator's labels in id order so the
                    // pre-built trees' label ids resolve identically.
                    for idx in 0..proto.labels().len() {
                        st.labels_mut()
                            .intern(proto.labels().name(sketchtree_tree::Label(idx as u32)));
                    }
                    for t in trees {
                        st.ingest(t);
                    }
                    black_box(st.patterns_processed())
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
