//! The workspace index: one walk over every file's token stream that
//! builds the cross-file facts the graph-aware passes (L6–L9) consume.
//!
//! Per-file passes see one [`SourceFile`] at a time; the invariants PR 6
//! leans on — a global lock order, "every sketch mutation bumps the
//! epoch", doc tables matching code tables — span files.  The index is
//! the shared substrate:
//!
//! * **functions** ([`FnInfo`]) — name, enclosing `impl` type, `&mut
//!   self`-ness, the call sites in the body, every lock-guard
//!   acquisition with the token span the guard is live for, and whether
//!   the body bumps the synopsis epoch.
//! * **one-level call graph** — [`WorkspaceIndex::resolve_call`] maps a
//!   call-site name to its unique definition (same file first, then
//!   workspace-wide; ambiguous names resolve to nothing rather than
//!   guessing).
//! * **guard-returning helpers** — a function whose tail expression is a
//!   lock acquisition (`fn lock_table(&self) -> MutexGuard<…> {
//!   self.table.lock()… }`) acts as an acquisition at every call site;
//!   the builder synthesizes those acquisitions into the callers so span
//!   logic treats `let t = self.lock_table();` exactly like
//!   `let t = self.table.lock();`.
//! * **metric registrations** — every string-literal metric name passed
//!   to a `Registry`-style `counter`/`gauge`/`histogram` (`…_with`)
//!   constructor.
//! * **opcode constants** — every `const K_*: u8 = 0x…;`.
//! * **hash-typed names** — per file, identifiers declared as `HashMap`
//!   or `HashSet` (fields, lets, params), so the determinism pass can
//!   spot iteration over unordered containers.
//!
//! ## Lock identity
//!
//! A lock is named by its receiver: `self.table.lock()` inside
//! `impl Subscriptions` is `Subscriptions.table`; a local or parameter
//! receiver is qualified by the file stem (`server::writer`).  This keeps
//! the three distinct `inner` mutexes in the workspace distinct, at the
//! cost of not unifying one lock reached through two differently-named
//! receivers — acquire a lock through one accessor (the codebase
//! convention) and the graph is exact.

use crate::lexer::TokenKind;
use crate::source::{Func, SourceFile};
use std::collections::BTreeMap;
use std::ops::Range;

/// Chain methods that preserve guard-ness when called on a fresh
/// acquisition: `x.lock().unwrap()` still binds a guard, `x.lock().len()`
/// consumes it at the end of the statement.
const GUARD_CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

/// Methods whose receiver-dotted call acquires a lock.
pub const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name — the last path segment (`foo` for `mod::foo(…)`).
    pub name: String,
    /// How the call names its receiver — determines resolution rules.
    pub recv: Recv,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
}

/// The receiver shape of a call site.  A name alone is not enough to
/// resolve a method call — `out.push(…)` must not resolve to some
/// `fn push` that happens to exist — so resolution gets stricter the
/// less we know about the receiver's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// `foo(…)` / `path::foo(…)` — a free function.
    Bare,
    /// `self.foo(…)` — a method on the enclosing impl type.
    SelfMethod,
    /// `expr.foo(…)` — a method on a value we cannot type.
    Other,
}

/// Method names so ubiquitous on std types that resolving them through
/// an untyped receiver is noise, never signal.
const COMMON_METHODS: &[&str] = &[
    "push", "pop", "insert", "remove", "get", "get_mut", "set", "len", "is_empty", "iter",
    "iter_mut", "into_iter", "next", "clone", "extend", "contains", "contains_key", "entry",
    "take", "join", "send", "recv", "read", "write", "lock", "drain", "clear", "push_str",
    "split", "find", "map", "filter", "fold", "collect", "new", "default", "drop", "run",
    "build", "init", "emit", "push_back", "push_front", "flush", "call", "get_or_insert_with",
];

/// Free-function names resolution refuses (prelude shadows).
const COMMON_FREE_FNS: &[&str] = &["drop", "min", "max", "from", "into", "swap", "replace"];

/// One lock acquisition inside a function body, with the span the guard
/// is held for.
#[derive(Debug, Clone)]
pub struct AcqSite {
    /// Canonical lock identity (see module docs).
    pub lock: String,
    /// The acquiring method (`lock`/`read`/`write`), or the helper name
    /// for synthesized acquisitions.
    pub method: String,
    /// Token index of the acquiring identifier.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Token range the guard is live for.
    pub span: Range<usize>,
    /// True when synthesized from a call to a guard-returning helper.
    pub via_call: bool,
}

/// One function, annotated for the graph passes.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into the workspace's file list.
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The `impl` type the function is defined on, when any.
    pub impl_type: Option<String>,
    /// Token range of the body.
    pub body: Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the receiver is `&mut self`.
    pub mut_self: bool,
    /// Calls made directly by the body (innermost-function owned).
    pub calls: Vec<CallSite>,
    /// Lock acquisitions made directly by the body, plus acquisitions
    /// synthesized from guard-returning helper calls.
    pub acqs: Vec<AcqSite>,
    /// Whether the body bumps the synopsis epoch (`bump_epoch(…)` or
    /// `epoch +=`).
    pub bumps_epoch: bool,
    /// `Some(lock)` when the function's tail expression is an
    /// acquisition — the guard escapes to the caller.
    pub returns_guard: Option<String>,
}

/// A metric name registered against a `Registry`.
#[derive(Debug, Clone)]
pub struct MetricReg {
    /// Index into the workspace's file list.
    pub file: usize,
    /// The metric name string literal.
    pub name: String,
    /// 1-based line of the registration.
    pub line: u32,
}

/// A wire opcode constant (`const K_*: u8 = 0x…;`).
#[derive(Debug, Clone)]
pub struct OpcodeConst {
    /// Index into the workspace's file list.
    pub file: usize,
    /// The constant's name (`K_PING`).
    pub name: String,
    /// The constant's value when it parses.
    pub value: Option<u64>,
    /// 1-based line.
    pub line: u32,
}

/// The cross-file facts shared by the workspace passes.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Every function in the workspace, in file order.
    pub fns: Vec<FnInfo>,
    /// Function indices by name (deterministic iteration).
    pub fns_by_name: BTreeMap<String, Vec<usize>>,
    /// Every metric registration with a literal name.
    pub metrics: Vec<MetricReg>,
    /// Every opcode constant.
    pub opcodes: Vec<OpcodeConst>,
    /// Per file: identifiers declared with a `HashMap`/`HashSet` type.
    pub hash_names: Vec<Vec<String>>,
}

impl WorkspaceIndex {
    /// Builds the index from every parsed file, in one walk per file
    /// plus one synthesis pass for guard-returning helpers.
    pub fn build(files: &[SourceFile]) -> WorkspaceIndex {
        let mut idx = WorkspaceIndex::default();
        for (fi, file) in files.iter().enumerate() {
            idx.hash_names.push(hash_typed_names(file));
            collect_metrics(file, fi, &mut idx.metrics);
            collect_opcodes(file, fi, &mut idx.opcodes);
            let impls = impl_ranges(file);
            for func in innermost_owned(file) {
                idx.fns.push(scan_fn(file, fi, &func, &impls));
            }
        }
        for (i, f) in idx.fns.iter().enumerate() {
            idx.fns_by_name.entry(f.name.clone()).or_default().push(i);
        }
        idx.synthesize_helper_guards(files);
        idx
    }

    /// Resolves a call site from `caller` to a unique function, with
    /// rules keyed to what the receiver shape lets us know:
    ///
    /// * `self.foo(…)` — a unique candidate on the caller's impl type
    ///   wins; otherwise a unique workspace-wide candidate;
    /// * `foo(…)` — a unique same-file candidate wins, then a unique
    ///   workspace-wide one, unless the name shadows a prelude fn;
    /// * `expr.foo(…)` — only a workspace-unique candidate whose name
    ///   is not a ubiquitous std method (`push`, `insert`, …).
    ///
    /// Ambiguity always resolves to `None` — the graph passes prefer a
    /// missing edge to a fabricated one.
    pub fn resolve_call(&self, call: &CallSite, caller: &FnInfo) -> Option<usize> {
        let cands = self.fns_by_name.get(&call.name)?;
        match call.recv {
            Recv::SelfMethod => {
                let same_impl: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        self.fns[i].impl_type.is_some()
                            && self.fns[i].impl_type == caller.impl_type
                    })
                    .collect();
                match same_impl.as_slice() {
                    [one] => Some(*one),
                    [] if cands.len() == 1 => Some(cands[0]),
                    _ => None,
                }
            }
            Recv::Bare => {
                if COMMON_FREE_FNS.contains(&call.name.as_str()) {
                    return None;
                }
                let local: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].file == caller.file)
                    .collect();
                match local.as_slice() {
                    [one] => Some(*one),
                    [] if cands.len() == 1 => Some(cands[0]),
                    _ => None,
                }
            }
            Recv::Other => {
                if COMMON_METHODS.contains(&call.name.as_str()) {
                    return None;
                }
                match cands.as_slice() {
                    [one] => Some(*one),
                    _ => None,
                }
            }
        }
    }

    /// All candidate definitions for a name (for permissive checks like
    /// "does *some* callee bump the epoch").
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.fns_by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Second pass: a call that resolves (receiver-aware) to a
    /// guard-returning helper acquires that helper's lock at the call
    /// site, with let-binding span rules.
    fn synthesize_helper_guards(&mut self, files: &[SourceFile]) {
        let mut extras: Vec<(usize, AcqSite)> = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            let file = &files[f.file];
            for call in &f.calls {
                let Some(gi) = self.resolve_call(call, f) else { continue };
                let Some(lock) = self.fns[gi].returns_guard.clone() else { continue };
                let Some(open) = file.next_code(call.tok).filter(|&n| file.is_punct(n, "(")) else {
                    continue;
                };
                let close = file.matching_paren(open);
                let span = guard_span(file, &f.body, call.tok, close);
                extras.push((
                    i,
                    AcqSite {
                        lock,
                        method: call.name.clone(),
                        tok: call.tok,
                        line: call.line,
                        span,
                        via_call: true,
                    },
                ));
            }
        }
        for (i, a) in extras {
            self.fns[i].acqs.push(a);
        }
        for f in &mut self.fns {
            f.acqs.sort_by_key(|a| a.tok);
        }
    }
}

/// `(brace range, type name)` for every `impl` block in the file.
fn impl_ranges(file: &SourceFile) -> Vec<(Range<usize>, String)> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if !file.is_ident(i, "impl") {
            continue;
        }
        // Walk to the body `{`, tracking the last candidate type name.
        // `impl X { … }`, `impl<T> X<T> { … }`, `impl Trait for X { … }`.
        let mut j = i;
        let mut name: Option<String> = None;
        let mut after_for = false;
        let mut angle = 0i64;
        let open = loop {
            let Some(n) = file.next_code(j) else { break None };
            j = n;
            let t = &file.tokens[j];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => break Some(j),
                ";" if angle <= 0 => break None,
                "for" => {
                    after_for = true;
                    name = None;
                }
                _ if t.kind == TokenKind::Ident && angle <= 0 => {
                    if name.is_none() || after_for {
                        name = Some(t.text.clone());
                        after_for = false;
                    }
                }
                _ => {}
            }
        };
        if let (Some(open), Some(name)) = (open, name) {
            out.push((open..file.matching_brace(open) + 1, name));
        }
    }
    out
}

/// The file's functions, each restricted to tokens it owns directly
/// (tokens of nested `fn` items belong to the nested function).
fn innermost_owned(file: &SourceFile) -> Vec<Func> {
    file.functions.clone()
}

/// True when token `i` of `func`'s body belongs to a nested `fn` item
/// rather than to `func` itself.
fn owned_by_nested(file: &SourceFile, func: &Func, i: usize) -> bool {
    file.functions
        .iter()
        .any(|g| g.body != func.body && func.body.contains(&g.body.start) && g.body.contains(&i))
}

/// One structural scan of one function body.
fn scan_fn(file: &SourceFile, fi: usize, func: &Func, impls: &[(Range<usize>, String)]) -> FnInfo {
    let impl_type = impls
        .iter()
        .filter(|(r, _)| r.contains(&func.fn_tok))
        .min_by_key(|(r, _)| r.len())
        .map(|(_, n)| n.clone());
    let mut info = FnInfo {
        file: fi,
        name: func.name.clone(),
        impl_type: impl_type.clone(),
        body: func.body.clone(),
        line: file.tokens.get(func.fn_tok).map_or(0, |t| t.line),
        mut_self: is_mut_self(file, func),
        calls: Vec::new(),
        acqs: Vec::new(),
        bumps_epoch: false,
        returns_guard: None,
    };
    if func.body.is_empty() {
        return info;
    }
    for i in func.body.clone() {
        if owned_by_nested(file, func, i) {
            continue;
        }
        let Some(tok) = file.code_token(i) else { continue };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        // Epoch bumps: `bump_epoch(…)` or `epoch += …`.
        if tok.text == "bump_epoch"
            && file.next_code(i).map_or(false, |n| file.is_punct(n, "("))
        {
            info.bumps_epoch = true;
        }
        if tok.text == "epoch" && file.next_code(i).map_or(false, |n| file.is_punct(n, "+=")) {
            info.bumps_epoch = true;
        }
        let followed_by_paren = file.next_code(i).map_or(false, |n| file.is_punct(n, "("));
        if !followed_by_paren {
            continue;
        }
        let prev = file.prev_code(i);
        let prev_is_dot = prev.map_or(false, |p| file.is_punct(p, "."));
        // Direct lock acquisition: `.lock(` / `.read(` / `.write(`.
        if prev_is_dot && ACQUIRE_METHODS.contains(&tok.text.as_str()) {
            let open = file.next_code(i).unwrap_or(i);
            let close = file.matching_paren(open);
            let lock = lock_identity(file, prev.unwrap_or(i), impl_type.as_deref());
            let empty_args = file.next_code(open) == Some(close);
            let span = if empty_args {
                guard_span(file, &func.body, i, close)
            } else {
                // Closure-style wrapper (`shared.read(|s| …)`) holds the
                // lock for exactly the argument span.
                open..close + 1
            };
            // A tail-expression acquisition escapes to the caller —
            // but only a declared `…Guard` return type proves the
            // caller receives a *guard*, not a value computed under a
            // scoped lock (`fn epoch(&self) -> u64 { self.read(…) }`).
            if empty_args && has_guard_return(file, func) && is_tail_expr(file, func, i, span.end)
            {
                info.returns_guard = Some(lock.clone());
            }
            info.acqs.push(AcqSite {
                lock,
                method: tok.text.clone(),
                tok: i,
                line: tok.line,
                span,
                via_call: false,
            });
            continue;
        }
        // Call site: `name(` that isn't a definition, a macro, a type
        // constructor, or a control-flow keyword.
        if prev.map_or(false, |p| file.is_ident(p, "fn")) {
            continue;
        }
        if tok.text.chars().next().map_or(true, |c| c.is_uppercase()) {
            continue;
        }
        if super::passes::NON_POSTFIX_KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        let recv = if prev_is_dot {
            // `self.foo(…)` iff the token before the dot is a bare
            // `self` (not itself field-accessed, as in `x.self…`).
            let dot = prev.unwrap_or(i);
            match file.prev_code(dot) {
                Some(r)
                    if file.is_ident(r, "self")
                        && !file.prev_code(r).map_or(false, |p| file.is_punct(p, ".")) =>
                {
                    Recv::SelfMethod
                }
                _ => Recv::Other,
            }
        } else {
            Recv::Bare
        };
        info.calls.push(CallSite {
            name: tok.text.clone(),
            recv,
            tok: i,
            line: tok.line,
        });
    }
    info
}

/// Whether the declared return type names a guard (`MutexGuard`,
/// `RwLockReadGuard`, …).  A helper that hands its caller a live guard
/// has to say so in its signature; that declaration is what makes
/// call-site guard synthesis sound.
fn has_guard_return(file: &SourceFile, func: &Func) -> bool {
    let mut j = func.fn_tok;
    let mut arrow = false;
    while let Some(n) = file.next_code(j) {
        if n >= func.body.start {
            return false;
        }
        j = n;
        if file.is_punct(j, "->") {
            arrow = true;
        } else if arrow
            && file.tokens[j].kind == TokenKind::Ident
            && file.tokens[j].text.contains("Guard")
        {
            return true;
        }
    }
    false
}

/// Whether `func` takes `&mut self` (or `&'a mut self`).
fn is_mut_self(file: &SourceFile, func: &Func) -> bool {
    // Scan the first few tokens after the parameter-list `(`.
    let mut j = func.fn_tok;
    let open = loop {
        match file.next_code(j) {
            Some(n) if file.is_punct(n, "(") => break Some(n),
            Some(n) if n >= func.body.start => break None,
            Some(n) => j = n,
            None => break None,
        }
    };
    let Some(open) = open else { return false };
    let mut saw_mut = false;
    let mut k = open;
    for _ in 0..5 {
        let Some(n) = file.next_code(k) else { return false };
        k = n;
        let t = &file.tokens[k];
        match t.text.as_str() {
            "mut" => saw_mut = true,
            "self" => return saw_mut,
            "&" => {}
            _ if t.kind == TokenKind::Lifetime => {}
            _ => return false,
        }
    }
    false
}

/// Canonical lock identity for the receiver ending at the `.` at `dot`.
///
/// `self.x.y` → `ImplType.x.y` (or `file-stem::x.y` without an impl);
/// bare `self` (a `self.lock()` helper) → `ImplType`; a local or
/// parameter chain → `file-stem::chain`; non-trivial receivers render a
/// unique-enough `<expr>@line`.
fn lock_identity(file: &SourceFile, dot: usize, impl_type: Option<&str>) -> String {
    let stem = file
        .rel
        .rsplit('/')
        .next()
        .unwrap_or(&file.rel)
        .trim_end_matches(".rs");
    let mut parts: Vec<String> = Vec::new();
    let mut d = dot;
    let mut opaque = false;
    loop {
        let Some(p) = file.prev_code(d) else { break };
        let t = &file.tokens[p];
        if t.kind != TokenKind::Ident {
            opaque = true;
            break;
        }
        parts.push(t.text.clone());
        match file.prev_code(p) {
            Some(d2) if file.is_punct(d2, ".") => d = d2,
            _ => break,
        }
    }
    parts.reverse();
    if opaque {
        let line = file.tokens.get(dot).map_or(0, |t| t.line);
        return format!("<expr>@{stem}:{line}");
    }
    if parts.first().map(String::as_str) == Some("self") {
        let rest = parts[1..].join(".");
        let owner = impl_type.unwrap_or(stem);
        if rest.is_empty() {
            owner.to_string()
        } else {
            format!("{owner}.{rest}")
        }
    } else {
        format!("{stem}::{}", parts.join("."))
    }
}

/// The token span a guard from the acquisition at `name_tok` (with its
/// argument list closing at `close`) is live for, inside `body`.
///
/// A `let`-bound guard lives to the end of its enclosing block (truncated
/// at an explicit `drop(binding)`); a chain that continues past
/// `unwrap`/`expect`/`unwrap_or_else` into any other method consumes the
/// guard at the end of the statement; a bare temporary likewise lives to
/// the end of its statement.
pub(crate) fn guard_span(
    file: &SourceFile,
    body: &Range<usize>,
    name_tok: usize,
    close: usize,
) -> Range<usize> {
    // Follow the method chain.
    let mut end = close;
    let mut still_guard = true;
    loop {
        let Some(dot) = file.next_code(end).filter(|&n| file.is_punct(n, ".")) else { break };
        let Some(m) = file.next_code(dot) else { break };
        let Some(open) = file.next_code(m).filter(|&n| file.is_punct(n, "(")) else {
            // Field access after a guard (`x.lock().0`) — treat like a
            // consuming chain: statement-scoped.
            still_guard = false;
            end = m;
            continue;
        };
        if !GUARD_CHAIN.contains(&file.tokens[m].text.as_str()) {
            still_guard = false;
        }
        end = file.matching_paren(open);
    }
    // `?` after the chain keeps guard-ness (`let g = x.lock()?;`).
    if let Some(q) = file.next_code(end).filter(|&n| file.is_punct(n, "?")) {
        end = q;
    }
    if still_guard && let_binding(file, body, name_tok).is_some() {
        let block_end = enclosing_block_end(file, body, name_tok);
        let mut span_end = block_end;
        // Truncate at an explicit `drop(binding)`.
        if let Some(binding) = let_binding(file, body, name_tok) {
            let mut k = end;
            while let Some(n) = file.next_code(k) {
                if n >= block_end {
                    break;
                }
                k = n;
                if file.is_ident(k, "drop")
                    && file.next_code(k).map_or(false, |o| file.is_punct(o, "("))
                {
                    let o = file.next_code(k).unwrap_or(k);
                    if file.next_code(o).map_or(false, |a| file.is_ident(a, &binding)) {
                        span_end = k;
                        break;
                    }
                }
            }
        }
        return name_tok..span_end;
    }
    // Statement-scoped: to the `;` (or block boundary) ending this
    // statement.
    name_tok..statement_end(file, body, end)
}

/// The name bound by the `let` statement containing `tok`, when the
/// statement is a simple `let [mut] name (: ty)? = …`.
fn let_binding(file: &SourceFile, body: &Range<usize>, tok: usize) -> Option<String> {
    let mut j = tok;
    let let_tok = loop {
        if j <= body.start {
            return None;
        }
        j -= 1;
        let Some(t) = file.code_token(j) else { continue };
        match t.text.as_str() {
            ";" | "{" | "}" => return None,
            "let" if t.kind == TokenKind::Ident => break j,
            _ => {}
        }
    };
    let mut n = file.next_code(let_tok)?;
    if file.is_ident(n, "mut") {
        n = file.next_code(n)?;
    }
    let t = file.tokens.get(n)?;
    if t.kind == TokenKind::Ident {
        Some(t.text.clone())
    } else {
        None
    }
}

/// The end (exclusive) of the innermost block containing `tok`.
fn enclosing_block_end(file: &SourceFile, body: &Range<usize>, tok: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    for i in body.start..tok {
        if file.code_token(i).is_none() {
            continue;
        }
        if file.is_punct(i, "{") {
            stack.push(i);
        } else if file.is_punct(i, "}") {
            stack.pop();
        }
    }
    match stack.last() {
        Some(&open) => file.matching_brace(open),
        None => body.end,
    }
}

/// The first `;` at depth 0 after `from` (or the enclosing `}`),
/// exclusive-end for a statement-scoped guard span.
fn statement_end(file: &SourceFile, body: &Range<usize>, from: usize) -> usize {
    let mut depth = 0i64;
    let mut i = from;
    while let Some(n) = file.next_code(i) {
        if n >= body.end {
            break;
        }
        i = n;
        match file.tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            ";" if depth <= 0 => return i,
            _ => {}
        }
    }
    body.end.min(i + 1)
}

/// True when the expression whose last token is near `span_end` is the
/// function's tail expression (no `;` between it and the body's `}`).
fn is_tail_expr(file: &SourceFile, func: &Func, _acq_tok: usize, span_end: usize) -> bool {
    let mut i = span_end.saturating_sub(1);
    while let Some(n) = file.next_code(i) {
        if n >= func.body.end.saturating_sub(1) {
            return true;
        }
        i = n;
        match file.tokens[i].text.as_str() {
            ";" | "{" => return false,
            _ => {}
        }
    }
    true
}

/// Identifiers in `file` declared with a `HashMap`/`HashSet` type, via
/// `name: HashMap<…>` (fields, params, typed lets) or
/// `let [mut] name = Hash{Map,Set}::…`.
fn hash_typed_names(file: &SourceFile) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for i in 0..file.tokens.len() {
        let Some(t) = file.code_token(i) else { continue };
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // `name : [&/&mut] HashMap` — walk back over reference sigils.
        let mut p = file.prev_code(i);
        while let Some(j) = p {
            let pt = &file.tokens[j];
            if pt.text == "&" || pt.text == "mut" || pt.kind == TokenKind::Lifetime {
                p = file.prev_code(j);
            } else {
                break;
            }
        }
        if let Some(colon) = p.filter(|&j| file.is_punct(j, ":")) {
            if let Some(name) = file.prev_code(colon) {
                let nt = &file.tokens[name];
                if nt.kind == TokenKind::Ident {
                    out.push(nt.text.clone());
                    continue;
                }
            }
        }
        // `let [mut] name = HashMap::new()`.
        if let Some(eq) = file.prev_code(i).filter(|&j| file.is_punct(j, "=")) {
            if let Some(name) = file.prev_code(eq) {
                let nt = &file.tokens[name];
                if nt.kind == TokenKind::Ident && nt.text != "mut" {
                    out.push(nt.text.clone());
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Collects metric registrations: a call whose callee name ends with
/// `counter`/`gauge`/`histogram` (optionally `_with`) and whose first
/// argument is a string literal.
fn collect_metrics(file: &SourceFile, fi: usize, out: &mut Vec<MetricReg>) {
    for i in 0..file.tokens.len() {
        if file.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(t) = file.code_token(i) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let base = t.text.strip_suffix("_with").unwrap_or(&t.text);
        if !(base.ends_with("counter") || base.ends_with("gauge") || base.ends_with("histogram")) {
            continue;
        }
        let Some(open) = file.next_code(i).filter(|&n| file.is_punct(n, "(")) else { continue };
        let Some(arg) = file.next_code(open) else { continue };
        let at = &file.tokens[arg];
        if at.kind != TokenKind::Str {
            continue;
        }
        let name = at.text.trim_matches('"');
        if name.is_empty() {
            continue;
        }
        out.push(MetricReg {
            file: fi,
            name: name.to_string(),
            line: t.line,
        });
    }
}

/// Collects `const K_*: u8 = 0x…;` opcode constants.
fn collect_opcodes(file: &SourceFile, fi: usize, out: &mut Vec<OpcodeConst>) {
    for i in 0..file.tokens.len() {
        if !file.is_ident(i, "const") {
            continue;
        }
        let Some(name_i) = file.next_code(i) else { continue };
        let name_t = &file.tokens[name_i];
        if name_t.kind != TokenKind::Ident || !name_t.text.starts_with("K_") {
            continue;
        }
        let Some(colon) = file.next_code(name_i).filter(|&n| file.is_punct(n, ":")) else {
            continue;
        };
        let Some(ty) = file.next_code(colon).filter(|&n| file.is_ident(n, "u8")) else {
            continue;
        };
        let Some(eq) = file.next_code(ty).filter(|&n| file.is_punct(n, "=")) else { continue };
        let Some(val) = file.next_code(eq) else { continue };
        let vt = &file.tokens[val];
        let value = if vt.kind == TokenKind::Num {
            parse_num(&vt.text)
        } else {
            None
        };
        out.push(OpcodeConst {
            file: fi,
            name: name_t.text.clone(),
            value,
            line: name_t.line,
        });
    }
}

/// Parses a Rust numeric literal (`0x8C`, `12`, with `_` separators and
/// optional type suffix).
fn parse_num(text: &str) -> Option<u64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let clean = clean
        .trim_end_matches("u8")
        .trim_end_matches("u16")
        .trim_end_matches("u32")
        .trim_end_matches("u64")
        .trim_end_matches("usize");
    if let Some(hex) = clean.strip_prefix("0x").or_else(|| clean.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        clean.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_one(rel: &str, src: &str) -> (Vec<SourceFile>, WorkspaceIndex) {
        let files = vec![SourceFile::parse(rel, src)];
        let idx = WorkspaceIndex::build(&files);
        (files, idx)
    }

    fn fn_named<'a>(idx: &'a WorkspaceIndex, name: &str) -> &'a FnInfo {
        let i = idx.fns_by_name[name][0];
        &idx.fns[i]
    }

    #[test]
    fn impl_type_and_mut_self() {
        let (_, idx) = index_one(
            "crates/x/src/a.rs",
            "impl Foo { fn m(&mut self) { self.n += 1; } fn r(&self) {} }\nimpl Tr for Bar { fn t(&self) {} }\nfn free() {}",
        );
        assert_eq!(fn_named(&idx, "m").impl_type.as_deref(), Some("Foo"));
        assert!(fn_named(&idx, "m").mut_self);
        assert!(!fn_named(&idx, "r").mut_self);
        assert_eq!(fn_named(&idx, "t").impl_type.as_deref(), Some("Bar"));
        assert_eq!(fn_named(&idx, "free").impl_type, None);
    }

    #[test]
    fn lock_identity_qualifies_by_impl_type() {
        let (_, idx) = index_one(
            "crates/x/src/subs.rs",
            "impl Subs { fn f(&self) { let t = self.table.lock(); t.len(); } }\nimpl Reg { fn g(&self) { let t = self.inner.lock(); t.len(); } }\nfn h(w: &M) { let g = w.lock(); }",
        );
        assert_eq!(fn_named(&idx, "f").acqs[0].lock, "Subs.table");
        assert_eq!(fn_named(&idx, "g").acqs[0].lock, "Reg.inner");
        assert_eq!(fn_named(&idx, "h").acqs[0].lock, "subs::w");
    }

    #[test]
    fn let_guard_spans_to_block_end_and_drop_truncates() {
        let (files, idx) = index_one(
            "crates/x/src/a.rs",
            "fn f(m: &M) { let g = m.lock(); use_it(&g); drop(g); more(); }",
        );
        let f = fn_named(&idx, "f");
        let acq = &f.acqs[0];
        let file = &files[0];
        let use_tok = file.tokens.iter().position(|t| t.text == "use_it").unwrap();
        let more_tok = file.tokens.iter().position(|t| t.text == "more").unwrap();
        assert!(acq.span.contains(&use_tok), "guard covers use_it");
        assert!(!acq.span.contains(&more_tok), "drop() releases before more()");
    }

    #[test]
    fn consuming_chain_is_statement_scoped() {
        let (files, idx) = index_one(
            "crates/x/src/a.rs",
            "fn f(m: &M) { let n = m.lock().unwrap().len(); after(n); }",
        );
        let acq = &fn_named(&idx, "f").acqs[0];
        let file = &files[0];
        let after_tok = file.tokens.iter().position(|t| t.text == "after").unwrap();
        assert!(!acq.span.contains(&after_tok), "len() consumed the guard");
    }

    #[test]
    fn unwrap_chain_preserves_guard() {
        let (files, idx) = index_one(
            "crates/x/src/a.rs",
            "fn f(m: &M) { let g = m.lock().unwrap_or_else(|e| e.into_inner()); use_it(&g); }",
        );
        let acq = &fn_named(&idx, "f").acqs[0];
        let file = &files[0];
        let use_tok = file.tokens.iter().position(|t| t.text == "use_it").unwrap();
        assert!(acq.span.contains(&use_tok));
    }

    #[test]
    fn helper_returning_guard_is_synthesized_at_call_sites() {
        let (files, idx) = index_one(
            "crates/x/src/subs.rs",
            "impl S { fn lock_table(&self) -> MutexGuard<'_, T> { self.table.lock().unwrap_or_else(E::into_inner) } \
             fn user(&self) { let t = self.lock_table(); touch(&t); } }",
        );
        let helper = fn_named(&idx, "lock_table");
        assert_eq!(helper.returns_guard.as_deref(), Some("S.table"));
        // The same shape without a `…Guard` return type is a scoped
        // computation, not an escaping guard.
        let (_, idx2) = index_one(
            "crates/x/src/subs.rs",
            "impl S { fn epoch(&self) -> u64 { self.table.lock().unwrap_or_else(E::into_inner) } }",
        );
        assert_eq!(fn_named(&idx2, "epoch").returns_guard, None);
        let user = fn_named(&idx, "user");
        let syn: Vec<_> = user.acqs.iter().filter(|a| a.via_call).collect();
        assert_eq!(syn.len(), 1, "{:?}", user.acqs);
        assert_eq!(syn[0].lock, "S.table");
        let file = &files[0];
        let touch_tok = file.tokens.iter().position(|t| t.text == "touch").unwrap();
        assert!(syn[0].span.contains(&touch_tok));
    }

    #[test]
    fn epoch_bumps_detected_both_ways() {
        let (_, idx) = index_one(
            "crates/x/src/a.rs",
            "impl T { fn a(&mut self) { self.epoch += 1; } fn b(&mut self) { self.bump_epoch(); } fn c(&mut self) { self.n += 1; } }",
        );
        assert!(fn_named(&idx, "a").bumps_epoch);
        assert!(fn_named(&idx, "b").bumps_epoch);
        assert!(!fn_named(&idx, "c").bumps_epoch);
    }

    #[test]
    fn metrics_and_opcodes_collected() {
        let (_, idx) = index_one(
            "crates/x/src/m.rs",
            "fn r(reg: &Registry) { reg.counter(\"a_total\", \"h\"); reg.gauge(\"b\", \"h\"); \
             reg.histogram_with(\"c_seconds\", \"h\", B, &[(\"k\", v)]); reg.gauge(name, \"h\"); }\n\
             const K_PING: u8 = 0x01;\nconst K_TWO: u8 = 2;\nconst MAX: u32 = 7;\n\
             #[cfg(test)] mod tests { fn t(reg: &Registry) { reg.counter(\"test_only\", \"h\"); } }",
        );
        let names: Vec<&str> = idx.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "b", "c_seconds"]);
        assert_eq!(idx.opcodes.len(), 2);
        assert_eq!(idx.opcodes[0].name, "K_PING");
        assert_eq!(idx.opcodes[0].value, Some(1));
        assert_eq!(idx.opcodes[1].value, Some(2));
    }

    #[test]
    fn hash_typed_names_found() {
        let (_, idx) = index_one(
            "crates/x/src/a.rs",
            "struct S { table: HashMap<u64, E>, labels: HashSet<String>, v: Vec<u8> }\n\
             fn f(m: &HashMap<u64, E>) { let mut local = HashMap::new(); let ordered: Vec<u8> = vec![]; }",
        );
        assert_eq!(idx.hash_names[0], vec!["labels", "local", "m", "table"]);
    }

    #[test]
    fn calls_exclude_defs_macros_and_constructors() {
        let (_, idx) = index_one(
            "crates/x/src/a.rs",
            "fn f() { helper(); mod_path::other(); Some(1); vec![1]; if cond() { } }",
        );
        let calls: Vec<&str> = fn_named(&idx, "f").calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["helper", "other", "cond"]);
    }
}
