//! Per-file analysis context: token stream plus structural annotations.
//!
//! Three annotations are derived once per file and shared by every pass:
//!
//! * **test regions** — the token ranges of `#[cfg(test)]` items and
//!   `mod tests { … }` bodies.  Passes that police library code skip
//!   tokens inside these regions.
//! * **functions** — `(name, body token range)` for every `fn`, found by
//!   scanning from the `fn` keyword to its body's matching brace.  Used
//!   by passes with per-function rules (arithmetic scoping, lock
//!   discipline, wire exhaustiveness).
//! * **allow markers** — `lint:allow(RULE, reason = "…")` comments, the
//!   escape hatch.  A marker suppresses findings of the named rule(s) on
//!   its own line or the following line; the suppression is still
//!   *recorded* in the report, and a marker without a reason is itself a
//!   finding (rule `A0`).

use crate::lexer::{lex, Token, TokenKind};

/// A `lint:allow` escape-hatch marker parsed from a comment.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// Rule ids the marker suppresses (e.g. `["L1"]`).
    pub rules: Vec<String>,
    /// The mandatory human reason; `None` when the author omitted it
    /// (which rule `A0` reports).
    pub reason: Option<String>,
    /// 1-based line the marker appears on.
    pub line: u32,
}

/// A function found in the token stream.
#[derive(Debug, Clone)]
pub struct Func {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body, `{` inclusive to `}` inclusive; empty for
    /// bodyless trait methods.
    pub body: std::ops::Range<usize>,
}

/// One source file, lexed and annotated, ready for the passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The complete token stream.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true when token `i` is inside test-only code.
    pub in_test: Vec<bool>,
    /// Every function with a resolvable body.
    pub functions: Vec<Func>,
    /// All `lint:allow` markers in the file.
    pub allows: Vec<AllowMarker>,
}

impl SourceFile {
    /// Lexes and annotates one file.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let in_test = test_regions(&tokens);
        let functions = find_functions(&tokens);
        let allows = find_allows(&tokens);
        SourceFile {
            rel: rel.to_string(),
            tokens,
            in_test,
            functions,
            allows,
        }
    }

    /// The token at `i` if it is meaningful code (not a comment).
    pub fn code_token(&self, i: usize) -> Option<&Token> {
        let t = self.tokens.get(i)?;
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => None,
            _ => Some(t),
        }
    }

    /// Index of the previous non-comment token before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.code_token(j).is_some())
    }

    /// Index of the next non-comment token after `i`.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len()).find(|&j| self.code_token(j).is_some())
    }

    /// True if the token at `i` is an identifier with exactly this text.
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .map_or(false, |t| t.kind == TokenKind::Ident && t.text == text)
    }

    /// True if the token at `i` is punctuation with exactly this text.
    pub fn is_punct(&self, i: usize, text: &str) -> bool {
        self.tokens
            .get(i)
            .map_or(false, |t| t.kind == TokenKind::Punct && t.text == text)
    }

    /// The index of the `}` matching the `{` at `open` (or the last token
    /// if unbalanced).
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for i in open..self.tokens.len() {
            if self.code_token(i).is_none() {
                continue;
            }
            if self.is_punct(i, "{") {
                depth += 1;
            } else if self.is_punct(i, "}") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    /// The index of the `)` matching the `(` at `open`.
    pub fn matching_paren(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for i in open..self.tokens.len() {
            if self.code_token(i).is_none() {
                continue;
            }
            if self.is_punct(i, "(") {
                depth += 1;
            } else if self.is_punct(i, ")") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }
}

/// Marks tokens inside `#[cfg(test)]` items and `mod tests { … }` bodies.
fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let code = |i: usize| -> Option<&Token> {
        let t = tokens.get(i)?;
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => None,
            _ => Some(t),
        }
    };
    let next_code = |mut i: usize| -> Option<usize> {
        loop {
            i += 1;
            if i >= tokens.len() {
                return None;
            }
            if code(i).is_some() {
                return Some(i);
            }
        }
    };
    let mut i = 0usize;
    while i < tokens.len() {
        // `#[cfg(test)]` — exact token shape # [ cfg ( test ) ].
        let is_cfg_test = code(i).map_or(false, |t| t.text == "#")
            && matches_seq(tokens, i, &["#", "[", "cfg", "(", "test", ")", "]"]);
        // `mod tests` without an attribute also counts (the conventional
        // unit-test module name).
        let is_mod_tests = code(i).map_or(false, |t| t.text == "mod")
            && next_code(i).map_or(false, |j| tokens[j].text == "tests");
        if is_cfg_test || is_mod_tests {
            // Find the start of the annotated item: skip the attribute
            // itself, then any further attributes, up to the item keyword.
            let mut j = i;
            if is_cfg_test {
                j = skip_attr(tokens, j);
                while code(j).map_or(false, |t| t.text == "#") {
                    j = skip_attr(tokens, j);
                }
            }
            // The item body is the first `{ … }` before a `;` at depth 0.
            let mut k = j;
            let mut body = None;
            while k < tokens.len() {
                match code(k).map(|t| t.text.as_str()) {
                    Some("{") => {
                        body = Some(k);
                        break;
                    }
                    Some(";") => break,
                    _ => k += 1,
                }
            }
            if let Some(open) = body {
                let close = matching_brace_raw(tokens, open);
                for slot in in_test.iter_mut().take(close + 1).skip(i) {
                    *slot = true;
                }
                i = close + 1;
                continue;
            }
            // Bodyless item (`#[cfg(test)] use …;`): mark through the `;`.
            for slot in in_test.iter_mut().take(k + 1).skip(i) {
                *slot = true;
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// True when the non-comment tokens starting at `i` spell out `seq`.
fn matches_seq(tokens: &[Token], mut i: usize, seq: &[&str]) -> bool {
    for want in seq {
        loop {
            match tokens.get(i) {
                None => return false,
                Some(t)
                    if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) =>
                {
                    i += 1;
                }
                Some(t) => {
                    if t.text != *want {
                        return false;
                    }
                    i += 1;
                    break;
                }
            }
        }
    }
    true
}

/// Given `i` at a `#`, returns the index one past the attribute's `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    // Find the `[`.
    while j < tokens.len() && tokens[j].text != "[" {
        j += 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

fn matching_brace_raw(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        if t.text == "{" {
            depth += 1;
        } else if t.text == "}" {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Finds every `fn name … { body }`.
fn find_functions(tokens: &[Token]) -> Vec<Func> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident || tokens[i].text != "fn" {
            continue;
        }
        // Name is the next identifier.
        let Some(name_idx) = (i + 1..tokens.len()).find(|&j| tokens[j].kind == TokenKind::Ident)
        else {
            continue;
        };
        let name = tokens[name_idx].text.clone();
        // Body: first `{` at paren depth 0 before a `;` at paren depth 0.
        let mut depth = 0i64;
        let mut body = None;
        for (j, tok) in tokens.iter().enumerate().skip(name_idx + 1) {
            if matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            match tok.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        let body = match body {
            Some(open) => open..matching_brace_raw(tokens, open) + 1,
            None => i..i,
        };
        out.push(Func {
            name,
            fn_tok: i,
            body,
        });
    }
    out
}

/// Extracts allow markers — `lint:allow` followed by a parenthesised
/// rule list and optional `reason = "…"` — from comments.
fn find_allows(tokens: &[Token]) -> Vec<AllowMarker> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(at) = t.text.find("lint:allow(") else {
            continue;
        };
        // The marker's effective line: where `lint:allow` itself sits
        // (block comments may start lines earlier).
        let line = t.line + t.text[..at].bytes().filter(|&b| b == b'\n').count() as u32;
        let rest = &t.text[at + "lint:allow(".len()..];
        let mut rules = Vec::new();
        let mut reason = None;
        // Parse `IDENT (, IDENT)* (, reason = "…")? )`.
        let mut s = rest;
        loop {
            s = s.trim_start_matches([' ', '\t', ',']);
            if s.starts_with(')') || s.is_empty() {
                break;
            }
            if let Some(after) = s.strip_prefix("reason") {
                let after = after.trim_start();
                if let Some(after) = after.strip_prefix('=') {
                    let after = after.trim_start();
                    if let Some(after) = after.strip_prefix('"') {
                        if let Some(endq) = after.find('"') {
                            let r = &after[..endq];
                            if !r.trim().is_empty() {
                                reason = Some(r.to_string());
                            }
                        }
                    }
                }
                break;
            }
            let end = s
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(s.len());
            if end == 0 {
                break; // unparseable garbage; stop, rules so far stand
            }
            rules.push(s[..end].to_string());
            s = &s[end..];
        }
        out.push(AllowMarker {
            rules,
            reason,
            line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let unwrap_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("token present");
        assert!(f.in_test[unwrap_idx]);
        let lib_idx = f.tokens.iter().position(|t| t.text == "lib").unwrap();
        assert!(!f.in_test[lib_idx]);
    }

    #[test]
    fn mod_tests_without_attr_is_marked() {
        let src = "mod tests { fn t() {} } fn real() {}";
        let f = SourceFile::parse("x.rs", src);
        let t_idx = f.tokens.iter().position(|t| t.text == "t").unwrap();
        assert!(f.in_test[t_idx]);
        let real_idx = f.tokens.iter().position(|t| t.text == "real").unwrap();
        assert!(!f.in_test[real_idx]);
    }

    #[test]
    fn functions_found_with_bodies() {
        let src = "impl X { fn a(&self) -> Vec<u8> { vec![] } }\nfn b<T: Fn(u8) -> u8>(f: T) where T: Clone { f(1); }";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<_> = f.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        for func in &f.functions {
            assert!(!func.body.is_empty(), "{} has no body", func.name);
        }
    }

    #[test]
    fn allow_markers_parse() {
        let src = r#"
// lint:allow(L1, reason = "bounds checked above")
x[0];
// lint:allow(L2, L3)
y as u32;
"#;
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rules, vec!["L1"]);
        assert_eq!(f.allows[0].reason.as_deref(), Some("bounds checked above"));
        assert_eq!(f.allows[1].rules, vec!["L2", "L3"]);
        assert!(f.allows[1].reason.is_none());
    }

    #[test]
    fn allow_in_string_is_not_a_marker() {
        let src = r#"let s = "lint:allow(L1, reason = \"nope\")";"#;
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allows.is_empty());
    }
}
