//! sketchtree-lint: a std-only static analyzer for the SketchTree
//! workspace.
//!
//! The analyzer lexes every workspace `.rs` file with its own Rust
//! lexer ([`lexer`]), annotates each file with test regions, function
//! bodies and `lint:allow` markers ([`source`]), and runs five
//! token-stream passes ([`passes`]):
//!
//! | rule | pass | polices |
//! |------|------|---------|
//! | `L1` | panic-freedom | `unwrap`/`expect`/`panic!`/indexing in server, sketch, core hot paths |
//! | `L2` | cast-safety | integer `as` casts in wire.rs, snapshot.rs, prufer.rs, sketch |
//! | `L3` | arithmetic discipline | bare/compound arithmetic on sketch counters |
//! | `L4` | lock discipline | nested acquisition, guard-held re-acquisition, I/O under lock |
//! | `L5` | wire exhaustiveness | every opcode has an encode and a decode arm |
//!
//! A finding is excused — recorded, but not gate-failing — by a
//! same-line or preceding-line comment marker:
//!
//! ```text
//! // lint:allow(L1, reason = "index < s1*s2 by construction")
//! ```
//!
//! A marker without a reason suppresses nothing and is itself reported
//! under rule `A0`.  [`analyze_workspace`] is the whole API; the
//! `sketchtree-lint` binary and the tier-1 `lint_clean` test are thin
//! wrappers over it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;

use std::fs;
use std::path::{Path, PathBuf};

use report::{Finding, Report};
use source::SourceFile;

/// Directory names never descended into: build output, VCS metadata,
/// vendored shims (not ours to police), and test/bench/example trees
/// (the passes police library code).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "shims", "tests", "benches", "examples", "fixtures",
];

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file under `root`, skipping the `SKIP_DIRS` build/VCS
/// directories, sorted for deterministic reports.
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .map_or(true, |n| SKIP_DIRS.contains(&n));
            if !skip {
                walk(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Runs the default pass roster over every workspace source file and
/// resolves `lint:allow` markers into the final [`Report`].
pub fn analyze_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    let passes = passes::default_passes();
    for path in workspace_rs_files(root) {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        report.files_scanned.push(rel.clone());
        let file = SourceFile::parse(&rel, &text);
        analyze_file(&file, &passes, &mut report);
    }
    report.sort();
    report
}

/// Runs `passes` over one parsed file, matching findings against the
/// file's allow markers.  Public so the seeded-bug self-tests can drive
/// the analyzer over fixture trees.
pub fn analyze_file(file: &SourceFile, passes: &[Box<dyn passes::Pass>], report: &mut Report) {
    let mut raw = Vec::new();
    for pass in passes {
        if pass.applies(&file.rel) {
            pass.run(file, &mut raw);
        }
    }
    for f in raw {
        // A marker excuses a finding of its rule on the marker's own
        // line or the line directly below — but only when it carries a
        // reason.
        let allowed = file
            .allows
            .iter()
            .filter(|m| m.rules.iter().any(|r| r == f.rule))
            .filter(|m| m.line == f.line || m.line + 1 == f.line)
            .find_map(|m| m.reason.clone());
        report.findings.push(Finding {
            rule: f.rule,
            file: file.rel.clone(),
            line: f.line,
            message: f.message,
            allowed,
        });
    }
    // Reasonless markers are findings in their own right.
    for m in &file.allows {
        if m.reason.is_none() {
            report.findings.push(Finding {
                rule: "A0",
                file: file.rel.clone(),
                line: m.line,
                message: format!(
                    "lint:allow({}) without a reason; every allow must say why",
                    m.rules.join(", ")
                ),
                allowed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(rel: &str, src: &str) -> Report {
        let mut report = Report::default();
        let file = SourceFile::parse(rel, src);
        analyze_file(&file, &passes::default_passes(), &mut report);
        report.sort();
        report
    }

    #[test]
    fn allow_with_reason_excuses_same_or_next_line() {
        let report = analyze_src(
            "crates/server/src/server.rs",
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(L1, reason = \"v is non-empty: checked by caller\")\n    v[0]\n}\n",
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.is_clean());
        assert_eq!(
            report.findings[0].allowed.as_deref(),
            Some("v is non-empty: checked by caller")
        );
    }

    #[test]
    fn reasonless_allow_suppresses_nothing_and_reports_a0() {
        let report = analyze_src(
            "crates/server/src/server.rs",
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(L1)\n    v[0]\n}\n",
        );
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert!(!report.is_clean());
        assert!(report.findings.iter().any(|f| f.rule == "A0"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "L1" && f.allowed.is_none()));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_excuse() {
        let report = analyze_src(
            "crates/server/src/server.rs",
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(L2, reason = \"not the right rule\")\n    v[0]\n}\n",
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn out_of_scope_file_is_silent() {
        let report = analyze_src(
            "crates/xml/src/reader.rs",
            "fn f(v: &[u8]) -> u8 { v[0] }",
        );
        assert!(report.findings.is_empty());
    }
}
