//! sketchtree-lint: a std-only static analyzer for the SketchTree
//! workspace.
//!
//! The analyzer lexes every workspace `.rs` file with its own Rust
//! lexer ([`lexer`]), annotates each file with test regions, function
//! bodies and `lint:allow` markers ([`source`]), and runs two stages of
//! passes ([`passes`]).  Stage one is per-file:
//!
//! | rule | pass | polices |
//! |------|------|---------|
//! | `L1` | panic-freedom | `unwrap`/`expect`/`panic!`/indexing in server, sketch, core hot paths |
//! | `L2` | cast-safety | integer `as` casts in wire.rs, snapshot.rs, prufer.rs, sketch |
//! | `L3` | arithmetic discipline | bare/compound arithmetic on sketch counters |
//! | `L4` | lock discipline | nested acquisition, guard-held re-acquisition, I/O under lock |
//! | `L5` | wire exhaustiveness | every opcode has an encode and a decode arm |
//!
//! Stage two builds a [`index::WorkspaceIndex`] — a symbol table, a
//! one-level call graph, and lock-guard live spans, from one extra walk
//! over the already-lexed token streams — and runs the graph-aware
//! workspace passes over it:
//!
//! | rule | pass | polices |
//! |------|------|---------|
//! | `L6` | lock order | cross-file lock-order cycles and guard-held re-acquisition through helpers |
//! | `L7` | blocking under lock | I/O, `recv`, and sleeps reachable while any guard is live |
//! | `L8` | epoch/determinism | sketch mutations must bump the epoch; hash iteration must not feed deterministic output |
//! | `L9` | spec drift | wire-protocol and observability docs must match wire.rs opcodes and registered metrics |
//!
//! A finding is excused — recorded, but not gate-failing — by a
//! same-line or preceding-line comment marker:
//!
//! ```text
//! // lint:allow(L1, reason = "index < s1*s2 by construction")
//! ```
//!
//! A marker without a reason suppresses nothing and is itself reported
//! under rule `A0`.  [`analyze_workspace`] is the whole API; the
//! `sketchtree-lint` binary and the tier-1 `lint_clean` test are thin
//! wrappers over it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod index;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod source;

use std::fs;
use std::path::{Path, PathBuf};

use passes::Workspace;
use report::{Finding, Report};
use source::SourceFile;

/// Spec documents the workspace passes diff against code, relative to
/// the workspace root.
pub const DOC_FILES: &[&str] = &["docs/wire-protocol.md", "docs/observability.md"];

/// Directory names never descended into: build output, VCS metadata,
/// vendored shims (not ours to police), and test/bench/example trees
/// (the passes police library code).
const SKIP_DIRS: &[&str] = &[
    "target", ".git", "shims", "tests", "benches", "examples", "fixtures",
];

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Every `.rs` file under `root`, skipping the `SKIP_DIRS` build/VCS
/// directories, sorted for deterministic reports.
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .map_or(true, |n| SKIP_DIRS.contains(&n));
            if !skip {
                walk(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Runs both pass stages over every workspace source file and resolves
/// `lint:allow` markers into the final [`Report`].
pub fn analyze_workspace(root: &Path) -> Report {
    analyze_workspace_filtered(root, &|_| true)
}

/// [`analyze_workspace`], reporting only findings whose file satisfies
/// `filter`.  Every file is still parsed and indexed — the workspace
/// passes need the whole call graph even when only one file's findings
/// are wanted (`--changed-only`) — the filter gates *reporting*, not
/// analysis.
pub fn analyze_workspace_filtered(root: &Path, filter: &dyn Fn(&str) -> bool) -> Report {
    let mut files = Vec::new();
    for path in workspace_rs_files(root) {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        files.push(SourceFile::parse(&rel, &text));
    }
    let mut docs = Vec::new();
    for rel in DOC_FILES {
        if let Ok(text) = fs::read_to_string(root.join(rel)) {
            docs.push((rel.to_string(), text));
        }
    }
    analyze_sources(files, docs, filter)
}

/// Runs both pass stages over already-parsed sources.  Public so the
/// seeded-bug self-tests can drive the full analyzer — including the
/// workspace index — over synthetic trees without touching the disk.
pub fn analyze_sources(
    files: Vec<SourceFile>,
    docs: Vec<(String, String)>,
    filter: &dyn Fn(&str) -> bool,
) -> Report {
    let mut report = Report::default();
    let passes = passes::default_passes();
    for file in &files {
        if !filter(&file.rel) {
            continue;
        }
        report.files_scanned.push(file.rel.clone());
        analyze_file(file, &passes, &mut report);
    }

    // Stage two: index the whole workspace, then run the graph passes.
    let ws = Workspace::new(files, docs);
    let mut ws_findings = Vec::new();
    for pass in passes::default_workspace_passes() {
        pass.run(&ws, &mut ws_findings);
    }
    for f in ws_findings {
        if !filter(&f.file) {
            continue;
        }
        // Findings anchored to a doc file have no token stream to carry
        // a marker: doc drift is fixed in the doc, never allowed.
        let allowed = ws
            .files
            .iter()
            .find(|s| s.rel == f.file)
            .and_then(|s| allow_reason(s, f.rule, f.line));
        report.findings.push(Finding {
            rule: f.rule,
            file: f.file,
            line: f.line,
            message: f.message,
            allowed,
        });
    }
    report.sort();
    report
}

/// The reason on a marker excusing `rule` at `line`, if any: a marker
/// excuses findings of its rules on its own line or the line directly
/// below, and only when it carries a reason.
fn allow_reason(file: &SourceFile, rule: &str, line: u32) -> Option<String> {
    file.allows
        .iter()
        .filter(|m| m.rules.iter().any(|r| r == rule))
        .filter(|m| m.line == line || m.line + 1 == line)
        .find_map(|m| m.reason.clone())
}

/// Runs `passes` over one parsed file, matching findings against the
/// file's allow markers.  Public so the seeded-bug self-tests can drive
/// the analyzer over fixture trees.
pub fn analyze_file(file: &SourceFile, passes: &[Box<dyn passes::Pass>], report: &mut Report) {
    let mut raw = Vec::new();
    for pass in passes {
        if pass.applies(&file.rel) {
            pass.run(file, &mut raw);
        }
    }
    for f in raw {
        let allowed = allow_reason(file, f.rule, f.line);
        report.findings.push(Finding {
            rule: f.rule,
            file: file.rel.clone(),
            line: f.line,
            message: f.message,
            allowed,
        });
    }
    // Reasonless markers are findings in their own right.
    for m in &file.allows {
        if m.reason.is_none() {
            report.findings.push(Finding {
                rule: "A0",
                file: file.rel.clone(),
                line: m.line,
                message: format!(
                    "lint:allow({}) without a reason; every allow must say why",
                    m.rules.join(", ")
                ),
                allowed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(rel: &str, src: &str) -> Report {
        let mut report = Report::default();
        let file = SourceFile::parse(rel, src);
        analyze_file(&file, &passes::default_passes(), &mut report);
        report.sort();
        report
    }

    #[test]
    fn allow_with_reason_excuses_same_or_next_line() {
        let report = analyze_src(
            "crates/server/src/server.rs",
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(L1, reason = \"v is non-empty: checked by caller\")\n    v[0]\n}\n",
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert!(report.is_clean());
        assert_eq!(
            report.findings[0].allowed.as_deref(),
            Some("v is non-empty: checked by caller")
        );
    }

    #[test]
    fn reasonless_allow_suppresses_nothing_and_reports_a0() {
        let report = analyze_src(
            "crates/server/src/server.rs",
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(L1)\n    v[0]\n}\n",
        );
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert!(!report.is_clean());
        assert!(report.findings.iter().any(|f| f.rule == "A0"));
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "L1" && f.allowed.is_none()));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_excuse() {
        let report = analyze_src(
            "crates/server/src/server.rs",
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(L2, reason = \"not the right rule\")\n    v[0]\n}\n",
        );
        assert!(!report.is_clean());
    }

    #[test]
    fn out_of_scope_file_is_silent() {
        let report = analyze_src(
            "crates/xml/src/reader.rs",
            "fn f(v: &[u8]) -> u8 { v[0] }",
        );
        assert!(report.findings.is_empty());
    }
}
