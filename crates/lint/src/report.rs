//! Findings and machine-readable report rendering.

use std::fmt::Write as _;

/// One finding from one pass at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `"L1"`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// `Some(reason)` when a `lint:allow` marker documents the site; such
    /// findings are recorded but do not fail the gate.
    pub allowed: Option<String>,
}

/// The outcome of analysing a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, allowed and not, ordered by file then line.
    pub findings: Vec<Finding>,
    /// Files that were scanned.
    pub files_scanned: Vec<String>,
}

impl Report {
    /// Findings not excused by a `lint:allow` marker — the ones that fail
    /// the gate.
    pub fn undocumented(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_none())
    }

    /// Findings that were excused, with their reasons.
    pub fn allowed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.allowed.is_some())
    }

    /// True when the gate passes: zero undocumented findings.
    pub fn is_clean(&self) -> bool {
        self.undocumented().next().is_none()
    }

    /// Stable ordering for deterministic output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Human-readable text rendering.
    pub fn to_text(&self, show_allowed: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.allowed {
                None => {
                    let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
                }
                Some(reason) if show_allowed => {
                    let _ = writeln!(
                        out,
                        "{}:{}: [{}] allowed ({reason}): {}",
                        f.file, f.line, f.rule, f.message
                    );
                }
                Some(_) => {}
            }
        }
        let bad = self.undocumented().count();
        let ok = self.allowed().count();
        let _ = writeln!(
            out,
            "{} file(s) scanned, {bad} undocumented finding(s), {ok} allowed",
            self.files_scanned.len()
        );
        out
    }

    /// Machine-readable JSON rendering (no dependencies: hand-escaped).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"allowed\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                match &f.allowed {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            );
            out.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        let _ = write!(
            out,
            "  ],\n  \"files_scanned\": {},\n  \"undocumented\": {},\n  \"allowed\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned.len(),
            self.undocumented().count(),
            self.allowed().count(),
            self.is_clean()
        );
        out
    }
}

/// JSON string escaping per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, allowed: Option<&str>) -> Finding {
        Finding {
            rule,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "msg with \"quotes\"".into(),
            allowed: allowed.map(String::from),
        }
    }

    #[test]
    fn clean_logic() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.findings.push(finding("L1", Some("fine")));
        assert!(r.is_clean());
        r.findings.push(finding("L2", None));
        assert!(!r.is_clean());
        assert_eq!(r.undocumented().count(), 1);
        assert_eq!(r.allowed().count(), 1);
    }

    #[test]
    fn json_escapes() {
        let mut r = Report::default();
        r.findings.push(finding("L1", None));
        let j = r.to_json();
        assert!(j.contains("\\\"quotes\\\""), "{j}");
        assert!(j.contains("\"clean\": false"));
    }
}
