//! L6 — global lock-order discipline.
//!
//! L4 sees one function at a time; a deadlock needs two *paths* that
//! acquire the same locks in opposite orders, and those paths routinely
//! span files (the PR 6 push path threads `server.rs` → `subs.rs` →
//! `standing`).  This pass walks the [`Workspace`] index:
//!
//! 1. every acquisition nested inside another guard's live span — in the
//!    same body or one helper call away — contributes a directed edge
//!    `outer lock → inner lock`;
//! 2. a call that (one level deep) re-acquires the *same* lock the
//!    caller already holds is reported immediately — non-reentrant
//!    mutexes self-deadlock there without needing a second thread;
//! 3. any cycle in the resulting digraph is reported on every edge that
//!    participates, naming the full cycle, so each site can be fixed or
//!    carry its own reasoned allow.
//!
//! Lock identity is receiver-based (see [`crate::index`]): the analysis
//! is exact when each lock is acquired through one accessor, which is
//! the workspace convention (`lock_table()`, `QueryRegistry::lock`, …).

use super::{Workspace, WorkspacePass, WsFinding};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The L6 pass.
pub struct LockOrder;

/// One lock-order edge with the site that witnessed it.
struct Edge {
    file: String,
    line: u32,
    note: String,
}

impl WorkspacePass for LockOrder {
    fn rule(&self) -> &'static str {
        "L6"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<WsFinding>) {
        // Gather edges: (outer lock, inner lock) → first witnessing site.
        let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
        for f in &ws.index.fns {
            if ws.fn_in_test(f) {
                continue;
            }
            let file = &ws.files[f.file];
            for outer in &f.acqs {
                // Direct nesting inside the guard's span.
                for inner in &f.acqs {
                    if inner.tok == outer.tok || !outer.span.contains(&inner.tok) {
                        continue;
                    }
                    if inner.lock == outer.lock {
                        out.push(WsFinding {
                            rule: "L6",
                            file: file.rel.clone(),
                            line: inner.line,
                            message: format!(
                                "`{}` re-acquired (.{}()) while the guard from line {} is live — \
                                 self-deadlock with a non-reentrant lock",
                                inner.lock, inner.method, outer.line
                            ),
                        });
                        continue;
                    }
                    edges.entry((outer.lock.clone(), inner.lock.clone())).or_insert(Edge {
                        file: file.rel.clone(),
                        line: inner.line,
                        note: format!("in `{}`", f.name),
                    });
                }
                // One level of call resolution: locks the callee takes
                // are taken under this guard.
                for call in &f.calls {
                    // A call to a guard-returning helper synthesizes an
                    // acquisition at its own token; the call is the
                    // acquisition, not a nested one under it.
                    if !outer.span.contains(&call.tok) || call.tok == outer.tok {
                        continue;
                    }
                    let Some(gi) = ws.index.resolve_call(call, f) else { continue };
                    let callee = &ws.index.fns[gi];
                    for inner in &callee.acqs {
                        if inner.lock == outer.lock {
                            out.push(WsFinding {
                                rule: "L6",
                                file: file.rel.clone(),
                                line: call.line,
                                message: format!(
                                    "call to `{}` re-acquires `{}` (at {}:{}) while the guard \
                                     from line {} is live — self-deadlock with a non-reentrant lock",
                                    call.name,
                                    inner.lock,
                                    ws.files[callee.file].rel,
                                    inner.line,
                                    outer.line
                                ),
                            });
                            continue;
                        }
                        edges
                            .entry((outer.lock.clone(), inner.lock.clone()))
                            .or_insert(Edge {
                                file: file.rel.clone(),
                                line: call.line,
                                note: format!("in `{}` via call to `{}`", f.name, call.name),
                            });
                    }
                }
            }
        }

        // Adjacency for cycle detection.
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            adj.entry(from).or_default().insert(to);
        }
        // An edge participates in a cycle iff its target can reach its
        // source.  The graph is tiny (a handful of named locks), so a
        // BFS per edge is fine — and the path gives a readable cycle.
        for ((from, to), edge) in &edges {
            if let Some(path) = bfs_path(&adj, to, from) {
                let mut cycle = vec![from.as_str()];
                cycle.extend(path.iter().copied());
                out.push(WsFinding {
                    rule: "L6",
                    file: edge.file.clone(),
                    line: edge.line,
                    message: format!(
                        "lock-order cycle: {} (this edge `{}` → `{}` {}) — deadlock candidate",
                        cycle.join(" → "),
                        from,
                        to,
                        edge.note
                    ),
                });
            }
        }
    }
}

/// Shortest path `from … to` (inclusive of both, excluding the leading
/// `from` duplicate), or `None` when unreachable.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut q = VecDeque::from([from]);
    let mut seen = BTreeSet::from([from]);
    while let Some(n) = q.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            if seen.insert(m) {
                prev.insert(m, n);
                q.push_back(m);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<WsFinding> {
        let files: Vec<SourceFile> = files.iter().map(|(r, s)| SourceFile::parse(r, s)).collect();
        let ws = Workspace::new(files, Vec::new());
        let mut out = Vec::new();
        LockOrder.run(&ws, &mut out);
        out
    }

    #[test]
    fn opposite_orders_across_files_form_a_cycle() {
        let out = run(&[
            (
                "crates/a/src/x.rs",
                "impl A { fn f(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); } }",
            ),
            (
                "crates/b/src/y.rs",
                "impl A { fn r(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); } }",
            ),
        ]);
        let cycles: Vec<_> = out.iter().filter(|f| f.message.contains("cycle")).collect();
        assert_eq!(cycles.len(), 2, "both edges participate: {out:?}");
        assert!(cycles.iter().any(|f| f.file == "crates/a/src/x.rs"));
        assert!(cycles.iter().any(|f| f.file == "crates/b/src/y.rs"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let out = run(&[
            (
                "crates/a/src/x.rs",
                "impl A { fn f(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); } \
                 fn r(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); } }",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn cycle_through_a_helper_call_is_found() {
        let out = run(&[
            (
                "crates/a/src/x.rs",
                "impl A { fn f(&self) { let g = self.alpha.lock(); self.take_beta(); } \
                 fn take_beta(&self) { let h = self.beta.lock(); h.touch(); } }",
            ),
            (
                "crates/b/src/y.rs",
                "impl B { fn r(&self, a: &A) { let h = self.beta.lock(); let g = self.alpha.lock(); } }",
            ),
        ]);
        // Same impl-type receiver names on both sides: A.alpha→A.beta via
        // the helper in one file… but file two uses impl B, so names
        // differ.  Use matching impl names to force the cycle instead.
        let out2 = run(&[
            (
                "crates/a/src/x.rs",
                "impl A { fn f(&self) { let g = self.alpha.lock(); self.take_beta(); } \
                 fn take_beta(&self) { let h = self.beta.lock(); h.touch(); } \
                 fn r(&self) { let h = self.beta.lock(); let g = self.alpha.lock(); } }",
            ),
        ]);
        assert!(out2.iter().any(|f| f.message.contains("cycle")), "{out2:?}");
        drop(out);
    }

    #[test]
    fn helper_returned_guard_re_acquired_is_self_deadlock() {
        let out = run(&[(
            "crates/a/src/x.rs",
            "impl A { fn lock_t(&self) -> MutexGuard<'_, T> { self.t.lock().unwrap_or_else(E::into_inner) } \
             fn f(&self) { let g = self.lock_t(); self.lock_t(); } }",
        )]);
        assert!(
            out.iter().any(|f| f.message.contains("re-acquire")),
            "{out:?}"
        );
    }

    #[test]
    fn block_scoped_guard_does_not_leak_into_sibling_code() {
        // The PR 4 ingest shape: a read guard scoped to its own block,
        // then a write acquisition after the block closes.  L4's lexical
        // heuristic needed an allow for this; span tracking does not.
        let out = run(&[(
            "crates/a/src/x.rs",
            "impl A { fn f(&self) { let v = { let g = self.inner.read(); g.n() }; \
             let w = self.inner.write(); } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_is_ignored() {
        let out = run(&[(
            "crates/a/src/x.rs",
            "#[cfg(test)]\nmod tests { fn f(a: &A) { let g = a.x.lock(); let h = a.y.lock(); } \
             fn r(a: &A) { let h = a.y.lock(); let g = a.x.lock(); } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
