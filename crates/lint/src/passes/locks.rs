//! L4 — lock discipline in the concurrent server path.
//!
//! PR 1's review found the checkpoint path holding a lock across file
//! I/O, and the ingest path was one refactor away from re-acquiring a
//! `RwLock` it already held (instant deadlock with `parking_lot`-style
//! non-reentrant locks).  This pass polices three shapes:
//!
//! * **(a) nested acquisition** — `.lock(`/`.read(`/`.write(` lexically
//!   inside the argument span of another acquisition.  The closure-based
//!   `SharedState::read(|s| …)` wrappers hold the lock for exactly that
//!   span, so an acquisition inside it runs under the outer lock.
//! * **(b) guard-held re-acquisition** — a `let`-bound guard from an
//!   empty-argument acquisition (`let g = x.read();`) followed by a
//!   later acquisition on the *same dotted receiver* in the same
//!   function.  Guard objects live to end of scope; re-reading the same
//!   lock self-deadlocks under a pending writer.
//! * **(c) I/O under lock** (`server.rs` only) — `std::fs::*` calls or
//!   stream I/O methods inside an acquisition span or after a held
//!   guard.  Disk latency under a lock stalls every other connection.
//!
//! The checkpoint serialization mutex intentionally violates (c) — its
//! whole purpose is to serialize snapshot I/O — and carries L4 allow
//! markers saying so.

use super::{Pass, RawFinding};
use crate::lexer::TokenKind;
use crate::source::{Func, SourceFile};

const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];
const IO_METHODS: &[&str] = &[
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "read_exact",
    "read_to_end",
];
const FS_FNS: &[&str] = &[
    "write",
    "read",
    "rename",
    "remove_file",
    "create_dir_all",
    "File",
    "OpenOptions",
];

/// One lock acquisition site inside a function body.
struct Acq {
    /// Token index of the method identifier.
    idx: usize,
    method: String,
    /// Dotted receiver chain, e.g. `self.ck.lock` for `self.ck.lock.lock()`.
    recv: String,
    /// Argument span: `(` index ..= `)` index.
    open: usize,
    close: usize,
    /// `let`-bound with an empty argument list — a guard that lives to
    /// end of scope.
    guard: bool,
    line: u32,
}

/// The L4 pass.
pub struct LockDiscipline;

impl Pass for LockDiscipline {
    fn rule(&self) -> &'static str {
        "L4"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/server/src/")
            || rel == "crates/core/src/concurrent.rs"
            || rel == "crates/core/src/parallel.rs"
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let police_io = file.rel.ends_with("server.rs");
        for func in &file.functions {
            if func.body.is_empty() || file.in_test[func.body.start] {
                continue;
            }
            let acqs = find_acquisitions(file, func);

            // (a) acquisition nested inside another acquisition's span.
            for b in &acqs {
                for a in &acqs {
                    if b.idx > a.open && b.idx < a.close {
                        out.push(RawFinding {
                            rule: "L4",
                            line: b.line,
                            message: format!(
                                ".{}() on `{}` inside the span of .{}() on `{}` runs under the outer lock",
                                b.method, b.recv, a.method, a.recv
                            ),
                        });
                        break;
                    }
                }
            }

            // (b) re-acquisition on the same receiver while a guard is held.
            for a in acqs.iter().filter(|a| a.guard) {
                for b in acqs.iter().filter(|b| b.idx > a.close) {
                    if b.recv == a.recv {
                        out.push(RawFinding {
                            rule: "L4",
                            line: b.line,
                            message: format!(
                                ".{}() on `{}` while a guard from line {} is still held",
                                b.method, b.recv, a.line
                            ),
                        });
                    }
                }
            }

            // (c) I/O inside an acquisition span or after a held guard.
            if police_io {
                for io in find_io_sites(file, func) {
                    let under = acqs
                        .iter()
                        .find(|a| (io.0 > a.open && io.0 < a.close) || (a.guard && io.0 > a.close));
                    if let Some(a) = under {
                        out.push(RawFinding {
                            rule: "L4",
                            line: io.1,
                            message: format!(
                                "file/stream I/O `{}` while the lock from line {} is held",
                                io.2, a.line
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Collects every `.lock(`/`.read(`/`.write(` call in `func`'s body.
fn find_acquisitions(file: &SourceFile, func: &Func) -> Vec<Acq> {
    let mut out = Vec::new();
    for i in func.body.clone() {
        let Some(tok) = file.code_token(i) else { continue };
        if tok.kind != TokenKind::Ident || !ACQUIRE_METHODS.contains(&tok.text.as_str()) {
            continue;
        }
        let Some(dot) = file.prev_code(i).filter(|&p| file.is_punct(p, ".")) else {
            continue;
        };
        let Some(open) = file.next_code(i).filter(|&n| file.is_punct(n, "(")) else {
            continue;
        };
        let close = file.matching_paren(open);
        let empty_args = file.next_code(open) == Some(close);
        out.push(Acq {
            idx: i,
            method: tok.text.clone(),
            recv: receiver_chain(file, dot),
            open,
            close,
            guard: empty_args && in_let_statement(file, func, i),
            line: tok.line,
        });
    }
    out
}

/// The dotted receiver to the left of the `.` at `dot`, rendered as
/// `a.b.c`; non-trivial receivers (call results, indexing) render as an
/// opaque `<expr>` so they never compare equal to a field chain.
fn receiver_chain(file: &SourceFile, dot: usize) -> String {
    let mut parts = Vec::new();
    let mut d = dot;
    loop {
        let Some(p) = file.prev_code(d) else { break };
        let t = &file.tokens[p];
        if t.kind != TokenKind::Ident {
            parts.push("<expr>".to_string());
            break;
        }
        parts.push(t.text.clone());
        match file.prev_code(p) {
            Some(d2) if file.is_punct(d2, ".") => d = d2,
            _ => break,
        }
    }
    parts.reverse();
    parts.join(".")
}

/// True when token `i` sits in a `let …;` statement (scanning back to the
/// nearest statement boundary inside the function body).
fn in_let_statement(file: &SourceFile, func: &Func, i: usize) -> bool {
    let mut j = i;
    while j > func.body.start {
        j -= 1;
        let Some(t) = file.code_token(j) else { continue };
        match t.text.as_str() {
            ";" | "{" | "}" => return false,
            "let" if t.kind == TokenKind::Ident => return true,
            _ => {}
        }
    }
    false
}

/// `(token index, line, description)` of each I/O site in `func`.
fn find_io_sites(file: &SourceFile, func: &Func) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for i in func.body.clone() {
        let Some(tok) = file.code_token(i) else { continue };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        // `fs::write(…)`, `std::fs::rename(…)` …
        if tok.text == "fs" {
            if let Some(sep) = file.next_code(i).filter(|&n| file.is_punct(n, "::")) {
                if let Some(f) = file
                    .next_code(sep)
                    .filter(|&f| FS_FNS.contains(&file.tokens[f].text.as_str()))
                {
                    out.push((i, tok.line, format!("fs::{}", file.tokens[f].text)));
                }
            }
        }
        // `.write_all(…)`, `.flush()` …
        if IO_METHODS.contains(&tok.text.as_str())
            && file.prev_code(i).map_or(false, |p| file.is_punct(p, "."))
            && file.next_code(i).map_or(false, |n| file.is_punct(n, "("))
        {
            out.push((i, tok.line, format!(".{}()", tok.text)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, src: &str) -> Vec<RawFinding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        LockDiscipline.run(&f, &mut out);
        out
    }

    #[test]
    fn nested_acquisition_flagged() {
        let out = run_on(
            "crates/server/src/x.rs",
            "fn f(&self) { self.shared.write(|s| { self.shared.read(|t| t.n()) }); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("inside the span"));
    }

    #[test]
    fn guard_then_same_receiver_flagged() {
        let out = run_on(
            "crates/server/src/x.rs",
            "fn f(&self) { let g = self.map.read(); let n = g.len(); let h = self.map.read(); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("still held"));
    }

    #[test]
    fn sequential_closure_reads_ok() {
        // Closure-style wrappers release at the call's `)`; two in a row
        // (even let-bound) never overlap.
        let out = run_on(
            "crates/server/src/x.rs",
            "fn f(&self) { let a = self.shared.read(|s| s.n()); let b = self.shared.read(|s| s.m()); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn io_under_guard_flagged_in_server_only() {
        let src = "fn f(&self) { let g = self.ck.lock.lock(); fs::write(p, b); }";
        let out = run_on("crates/server/src/server.rs", src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("fs::write"));
        let out = run_on("crates/server/src/wire.rs", src);
        assert!(out.is_empty(), "I/O policing is server.rs-scoped: {out:?}");
    }

    #[test]
    fn pass_covers_the_parallel_worker_pool() {
        // PR 4's sharded ingest pipeline lives in core/parallel.rs; lock
        // misuse there deadlocks every ingest worker at once, so the pass
        // covers it alongside concurrent.rs and the server.
        assert!(LockDiscipline.applies("crates/core/src/parallel.rs"));
        assert!(LockDiscipline.applies("crates/core/src/concurrent.rs"));
        assert!(!LockDiscipline.applies("crates/core/src/window.rs"));
        let out = run_on(
            "crates/core/src/parallel.rs",
            "fn f(&self) { let g = self.queue.lock(); let h = self.queue.lock(); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn different_receivers_under_guard_ok_without_io() {
        let out = run_on(
            "crates/server/src/x.rs",
            "fn f(&self) { let g = self.a.lock(); self.b.read(|s| s.n()); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
