//! L8 — epoch and determinism discipline.
//!
//! PR 6's standing queries and epoch-keyed result cache depend on two
//! invariants that nothing type-checks:
//!
//! * **(a) every sketch mutation bumps the epoch.**  `SketchTree::epoch`
//!   is the cache key and the push tag; a mutation path that forgets to
//!   bump it serves stale cached estimates forever and pushes updates
//!   labelled with an epoch that never changed.  Any function in
//!   `sketchtree.rs`/`concurrent.rs` that calls a sketch-state mutator
//!   must bump the epoch itself (`self.epoch += 1` / `bump_epoch()`) or
//!   call — one level down — a function that does.
//! * **(b) unordered iteration may not feed deterministic output.**
//!   Snapshots, merges and wire encodings are bit-compared across runs
//!   and across shard counts; iterating a `HashMap`/`HashSet` into any
//!   of them injects randomized order.  Iteration inside an
//!   export/snapshot/encode/merge/write function is flagged unless the
//!   function visibly restores order (a `sort*` call or a
//!   `BTreeMap`/`BTreeSet` in the same body).
//!
//! The mutator-name tables are deliberately split: sketch-specific names
//! (`ingest_precomputed`, `merge_from`, `note_inserted`, …) count
//! anywhere in scope, while generic names (`insert`, `record`,
//! `observe`, `delete`) count only inside `&mut self` methods — a
//! read-only query path inserting into a local scratch map is not a
//! sketch mutation.

use super::{Workspace, WorkspacePass, WsFinding};
use crate::lexer::TokenKind;

/// Mutator names that always denote sketch-state mutation in scope.
const SPECIFIC_MUTATORS: &[&str] = &[
    "ingest",
    "ingest_with",
    "ingest_precomputed",
    "ingest_precomputed_batch",
    "insert_routed",
    "apply_with_signs",
    "merge_from",
    "merge_remapped",
    "note_inserted",
    "merge",
    "ingest_batch",
];

/// Mutator names that denote sketch mutation only under `&mut self`.
const GENERIC_MUTATORS: &[&str] = &["insert", "record", "observe", "delete"];

/// Files whose functions own the epoch discipline.  WAL replay
/// (`durability.rs`) re-runs ingest outside the serving path, so a
/// replay that mutated sketch state without the usual epoch-bumping
/// mutators would poison epoch-keyed caches from the very first request
/// after a restart.
const EPOCH_FILES: &[&str] = &[
    "crates/core/src/sketchtree.rs",
    "crates/core/src/concurrent.rs",
    "crates/server/src/durability.rs",
];

/// Files whose output functions must not leak hash-iteration order.
fn determinism_scope(rel: &str) -> bool {
    rel == "crates/core/src/snapshot.rs"
        || rel == "crates/core/src/summary.rs"
        || rel == "crates/core/src/sketchtree.rs"
        || rel.starts_with("crates/sketch/src/")
        || rel == "crates/server/src/wire.rs"
}

/// Function names that produce order-sensitive output.
const OUTPUT_FN_MARKERS: &[&str] = &["export", "snapshot", "encode", "merge", "write"];

/// Iteration methods on hash containers.
const ITER_METHODS: &[&str] = &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

/// The L8 pass.
pub struct EpochDiscipline;

impl WorkspacePass for EpochDiscipline {
    fn rule(&self) -> &'static str {
        "L8"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<WsFinding>) {
        self.check_epoch_bumps(ws, out);
        self.check_hash_iteration(ws, out);
    }
}

impl EpochDiscipline {
    /// (a) mutation ⇒ epoch bump, directly or through the call graph.
    fn check_epoch_bumps(&self, ws: &Workspace, out: &mut Vec<WsFinding>) {
        // Transitive bump set to a fixpoint: a function bumps if its
        // body does, or if *any* candidate definition of any callee
        // does.  Candidate matching is permissive on purpose — a
        // delegation chain (`Shared::ingest` → `SketchTree::ingest` →
        // `ingest_with` which bumps) must never false-positive just
        // because one hop is ambiguous.
        let mut bumps: Vec<bool> = ws.index.fns.iter().map(|f| f.bumps_epoch).collect();
        loop {
            let mut changed = false;
            for (i, f) in ws.index.fns.iter().enumerate() {
                if bumps[i] {
                    continue;
                }
                let via_callee = f.calls.iter().any(|c| {
                    ws.index.candidates(&c.name).iter().any(|&gi| bumps[gi])
                });
                if via_callee {
                    bumps[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for (i, f) in ws.index.fns.iter().enumerate() {
            let file = &ws.files[f.file];
            if !EPOCH_FILES.contains(&file.rel.as_str()) || ws.fn_in_test(f) {
                continue;
            }
            if f.name == "bump_epoch" {
                continue;
            }
            let mutator = f.calls.iter().find(|c| {
                SPECIFIC_MUTATORS.contains(&c.name.as_str())
                    || (f.mut_self && GENERIC_MUTATORS.contains(&c.name.as_str()))
            });
            let Some(mutator) = mutator else { continue };
            if bumps[i] {
                continue;
            }
            out.push(WsFinding {
                rule: "L8",
                file: file.rel.clone(),
                line: f.line,
                message: format!(
                    "`{}` mutates sketch state (calls `{}` at line {}) without bumping the \
                     synopsis epoch, directly or via a callee — stale epoch-keyed caches and \
                     mislabelled pushes",
                    f.name, mutator.name, mutator.line
                ),
            });
        }
    }

    /// (b) hash iteration inside deterministic-output functions.
    fn check_hash_iteration(&self, ws: &Workspace, out: &mut Vec<WsFinding>) {
        for f in &ws.index.fns {
            let file = &ws.files[f.file];
            if !determinism_scope(&file.rel) || ws.fn_in_test(f) {
                continue;
            }
            let lname = f.name.to_lowercase();
            if !OUTPUT_FN_MARKERS.iter().any(|m| lname.contains(m)) {
                continue;
            }
            let hash_names = &ws.index.hash_names[f.file];
            // A visible re-ordering step excuses iteration in this body.
            let reorders = f.body.clone().any(|i| {
                file.code_token(i).map_or(false, |t| {
                    t.kind == TokenKind::Ident
                        && (t.text == "BTreeMap"
                            || t.text == "BTreeSet"
                            || (t.text.starts_with("sort")
                                && file.next_code(i).map_or(false, |n| {
                                    file.is_punct(n, "(") || file.is_punct(n, "::")
                                })))
                })
            });
            if reorders {
                continue;
            }
            for i in f.body.clone() {
                let Some(t) = file.code_token(i) else { continue };
                if t.kind != TokenKind::Ident || !hash_names.contains(&t.text) {
                    continue;
                }
                let Some(dot) = file.next_code(i).filter(|&n| file.is_punct(n, ".")) else {
                    continue;
                };
                let Some(m) = file.next_code(dot) else { continue };
                if !ITER_METHODS.contains(&file.tokens[m].text.as_str()) {
                    continue;
                }
                if !file.next_code(m).map_or(false, |n| file.is_punct(n, "(")) {
                    continue;
                }
                out.push(WsFinding {
                    rule: "L8",
                    file: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` iterates hash container `{}` (`.{}()`), and its name says it \
                         feeds deterministic output — hash order varies per process; sort or \
                         use an ordered container",
                        f.name,
                        t.text,
                        file.tokens[m].text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<WsFinding> {
        let files: Vec<SourceFile> = files.iter().map(|(r, s)| SourceFile::parse(r, s)).collect();
        let ws = Workspace::new(files, Vec::new());
        let mut out = Vec::new();
        EpochDiscipline.run(&ws, &mut out);
        out
    }

    #[test]
    fn mutation_without_bump_is_flagged() {
        let out = run(&[(
            "crates/core/src/sketchtree.rs",
            "impl SketchTree { fn sneak(&mut self, v: u64) { self.synopsis.insert(v); } }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("without bumping"), "{out:?}");
    }

    #[test]
    fn direct_bump_satisfies() {
        let out = run(&[(
            "crates/core/src/sketchtree.rs",
            "impl SketchTree { fn ok(&mut self, v: u64) { self.synopsis.insert(v); self.epoch += 1; } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bump_via_callee_satisfies() {
        let out = run(&[(
            "crates/core/src/concurrent.rs",
            "impl Shared { fn batch(&self, t: &[Tree]) { self.inner.write().ingest_precomputed_batch(t); } }",
        ), (
            "crates/core/src/sketchtree.rs",
            "impl SketchTree { fn ingest_precomputed_batch(&mut self, t: &[Tree]) { self.synopsis.note_inserted(1); self.epoch += 1; } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn generic_mutators_only_count_under_mut_self() {
        // A read-only query path inserting into a scratch set is not a
        // sketch mutation.
        let out = run(&[(
            "crates/core/src/sketchtree.rs",
            "impl SketchTree { fn resolve(&self, q: &Q) -> Vec<T> { let mut seen = HashSet::new(); seen.insert(q.key()); vec![] } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hash_iteration_in_export_is_flagged_unless_sorted() {
        let bad = run(&[(
            "crates/core/src/summary.rs",
            "struct S { children: HashMap<u64, C> } impl S { fn export(&self) -> Vec<u64> { \
             self.children.iter().map(|(k, _)| *k).collect() } }",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("hash order"), "{bad:?}");

        let good = run(&[(
            "crates/core/src/summary.rs",
            "struct S { children: HashMap<u64, C> } impl S { fn export(&self) -> Vec<u64> { \
             let mut v: Vec<u64> = self.children.iter().map(|(k, _)| *k).collect(); \
             v.sort_unstable(); v } }",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn wal_replay_mutation_without_bump_is_flagged() {
        // A replay path that pokes sketch state through a raw mutator —
        // instead of the epoch-bumping ingest — serves stale caches
        // from the first post-restart request.
        let out = run(&[(
            "crates/server/src/durability.rs",
            "fn replay_batch(st: &mut SketchTree, t: &[Tree]) { for x in t { st.ingest_precomputed(x); } }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("without bumping"), "{out:?}");
    }

    #[test]
    fn wal_replay_through_bumping_ingest_satisfies() {
        let out = run(&[(
            "crates/server/src/durability.rs",
            "fn replay_batch(st: &mut SketchTree, t: &[Tree]) { for x in t { st.ingest(x); } }",
        ), (
            "crates/core/src/sketchtree.rs",
            "impl SketchTree { pub fn ingest(&mut self, t: &Tree) { self.synopsis.insert_routed(t); self.bump_epoch(); } \
             fn bump_epoch(&mut self) { self.epoch += 1; } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hash_iteration_outside_output_fns_is_fine() {
        let out = run(&[(
            "crates/core/src/summary.rs",
            "struct S { children: HashMap<u64, C> } impl S { fn lookup(&self) -> usize { \
             self.children.iter().count() } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
