//! L7 — blocking calls while a lock guard is live.
//!
//! A lock held across I/O or an unbounded wait turns one slow peer into
//! a server-wide stall: every thread queueing on that lock inherits the
//! disk's or the network's latency.  L4 polices the lexical shape in
//! `server.rs` only; this pass uses the workspace index's guard spans
//! and one-level call resolution, so it also catches the PR 6 pusher
//! shape — a frame written through a mutex shared with the reply path —
//! and blocking work hidden one helper call below the acquisition.
//!
//! Flagged while a guard is live:
//! * stream/file methods — `write_all`, `flush`, `sync_all`,
//!   `sync_data`, `read_exact`, `read_to_end`;
//! * frame I/O — `write_frame`/`read_frame` (bare or method calls);
//! * filesystem/socket paths — `fs::*`, `File::*`, `OpenOptions::*`,
//!   `TcpStream::connect`, `thread::sleep`;
//! * channel waits — `.recv()`/`.recv_timeout()` (bounded-queue `recv`
//!   blocks; `try_send`/`try_recv` are non-blocking and exempt).
//!
//! Intentional sites — the checkpoint mutex that exists to serialize
//! snapshot I/O, the worker handoff that holds the receiver mutex only
//! for the dequeue — carry reasoned allow markers for this rule.

use super::{Workspace, WorkspacePass, WsFinding};
use crate::index::FnInfo;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Dotted method calls that block on I/O or a channel.
const BLOCKING_METHODS: &[&str] = &[
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_timeout",
    "write_frame",
    "read_frame",
    "connect",
    "accept",
];

/// Bare function calls that block.
const BLOCKING_FNS: &[&str] = &["write_frame", "read_frame", "sleep"];

/// `path::fn` prefixes that block (the path segment before `::`).
const BLOCKING_PATHS: &[&str] = &["fs", "File", "OpenOptions", "TcpStream", "thread"];

/// The L7 pass.
pub struct BlockingUnderLock;

/// Whether `rel` is in the concurrency-sensitive scope.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/server/src/")
        || rel == "crates/core/src/concurrent.rs"
        || rel == "crates/core/src/parallel.rs"
        || rel.starts_with("crates/standing/src/")
        || rel.starts_with("crates/metrics/src/")
}

impl WorkspacePass for BlockingUnderLock {
    fn rule(&self) -> &'static str {
        "L7"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<WsFinding>) {
        for f in &ws.index.fns {
            let file = &ws.files[f.file];
            if !in_scope(&file.rel) || ws.fn_in_test(f) {
                continue;
            }
            let sites = blocking_sites(file, f);
            for acq in &f.acqs {
                // Direct blocking sites inside the guard span.
                for (tok, line, desc) in &sites {
                    if acq.span.contains(tok) && *tok != acq.tok {
                        out.push(WsFinding {
                            rule: "L7",
                            file: file.rel.clone(),
                            line: *line,
                            message: format!(
                                "blocking call {desc} while `{}` (acquired line {}) is held",
                                acq.lock, acq.line
                            ),
                        });
                    }
                }
                // One call level down.
                for call in &f.calls {
                    // call.tok == acq.tok is the guard-returning helper
                    // call that synthesized this acquisition, not work
                    // performed under it.
                    if !acq.span.contains(&call.tok) || call.tok == acq.tok {
                        continue;
                    }
                    let Some(gi) = ws.index.resolve_call(call, f) else { continue };
                    let callee: &FnInfo = &ws.index.fns[gi];
                    let callee_file = &ws.files[callee.file];
                    if let Some((_, cline, cdesc)) =
                        blocking_sites(callee_file, callee).into_iter().next()
                    {
                        out.push(WsFinding {
                            rule: "L7",
                            file: file.rel.clone(),
                            line: call.line,
                            message: format!(
                                "call to `{}` blocks ({cdesc} at {}:{cline}) while `{}` \
                                 (acquired line {}) is held",
                                call.name, callee_file.rel, acq.lock, acq.line
                            ),
                        });
                    }
                }
            }
        }
        // One finding per (file, line, message).
        out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    }
}

/// `(token, line, description)` of every blocking call in `f`'s body.
fn blocking_sites(file: &SourceFile, f: &FnInfo) -> Vec<(usize, u32, String)> {
    let mut out = Vec::new();
    for i in f.body.clone() {
        let Some(tok) = file.code_token(i) else { continue };
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        // `fs::write(…)`, `TcpStream::connect(…)`, `thread::sleep(…)` …
        if BLOCKING_PATHS.contains(&name) {
            if let Some(sep) = file.next_code(i).filter(|&n| file.is_punct(n, "::")) {
                if let Some(fi) = file.next_code(sep) {
                    let ft = &file.tokens[fi];
                    let callish = file.next_code(fi).map_or(false, |n| {
                        file.is_punct(n, "(") || file.is_punct(n, "::")
                    });
                    // `thread::` blocks only via `sleep` (spawn is fine);
                    // the file/socket paths block on any constructor.
                    let blocks = name != "thread" || ft.text == "sleep";
                    if ft.kind == TokenKind::Ident && callish && blocks {
                        out.push((i, tok.line, format!("`{}::{}`", name, ft.text)));
                        continue;
                    }
                }
            }
        }
        let Some(_open) = file.next_code(i).filter(|&n| file.is_punct(n, "(")) else { continue };
        let dotted = file.prev_code(i).map_or(false, |p| file.is_punct(p, "."));
        if dotted && BLOCKING_METHODS.contains(&name) {
            out.push((i, tok.line, format!("`.{name}()`")));
        } else if !dotted && BLOCKING_FNS.contains(&name) {
            // `thread::sleep` already matched above; a bare `sleep(`/
            // `write_frame(` lands here.
            let pathed = file.prev_code(i).map_or(false, |p| file.is_punct(p, "::"));
            if !pathed {
                out.push((i, tok.line, format!("`{name}(…)`")));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<WsFinding> {
        let files: Vec<SourceFile> = files.iter().map(|(r, s)| SourceFile::parse(r, s)).collect();
        let ws = Workspace::new(files, Vec::new());
        let mut out = Vec::new();
        BlockingUnderLock.run(&ws, &mut out);
        out
    }

    #[test]
    fn frame_write_under_writer_mutex_is_flagged() {
        // The PR 6 pusher shape.
        let out = run(&[(
            "crates/server/src/server.rs",
            "fn push(writer: &Mutex<TcpStream>) { let mut w = writer.lock().unwrap_or_else(|e| e.into_inner()); \
             if write_frame(&mut *w, k, &p).is_err() { return; } }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("write_frame"), "{out:?}");
    }

    #[test]
    fn recv_on_a_locked_receiver_is_flagged() {
        let out = run(&[(
            "crates/server/src/server.rs",
            "fn next(rx: &Mutex<Receiver<T>>) { let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv(); }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("recv"), "{out:?}");
    }

    #[test]
    fn io_one_call_level_below_the_guard_is_flagged() {
        let out = run(&[(
            "crates/server/src/server.rs",
            "fn save(&self) { let g = self.ck.lock(); self.persist(); } \
             fn persist(&self) { fs::write(p, b); }",
        )]);
        assert!(
            out.iter().any(|f| f.message.contains("persist")),
            "{out:?}"
        );
    }

    #[test]
    fn encode_outside_then_write_inside_is_only_the_write() {
        let out = run(&[(
            "crates/server/src/server.rs",
            "fn push(writer: &Mutex<TcpStream>) { let bytes = frame_bytes(k, &p); \
             let mut w = writer.lock().unwrap_or_else(|e| e.into_inner()); let _ = w.write_all(&bytes); }",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("write_all"));
    }

    #[test]
    fn try_send_is_not_blocking() {
        let out = run(&[(
            "crates/server/src/subs.rs",
            "impl S { fn b(&self) { let t = self.table.lock(); t.tx.try_send(u); } }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn io_after_guard_dropped_is_clean() {
        let out = run(&[(
            "crates/server/src/server.rs",
            "fn f(m: &Mutex<T>) { let g = m.lock(); let v = g.n(); drop(g); fs::write(p, v); }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn out_of_scope_crates_are_silent() {
        let out = run(&[(
            "crates/core/src/sketchtree.rs",
            "fn f(m: &Mutex<T>) { let g = m.lock(); fs::write(p, b); }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }
}
