//! L3 — arithmetic discipline on sketch counters and frequencies.
//!
//! PR 1's review found an `i64` overflow in `bank.rs::effective_x` on
//! hostile snapshot frequencies: `X + Σ ξ_v·f_v` with `f_v` near
//! `i64::MAX` panicked in debug and wrapped in release, corrupting
//! every estimate that touched the restore list.  Theorem 1/2
//! unbiasedness assumes exact counter arithmetic, so overflow must be
//! an explicit policy (`checked_`, `wrapping_`, `saturating_`), never
//! an accident.
//!
//! The pass polices `crates/sketch` non-test code:
//!
//! * compound assignments `+=`, `-=`, `*=`, `<<=` and shifts `<<`
//!   anywhere (these are how counters accumulate), and
//! * bare binary `+`, `-`, `*` inside *update-path* functions (named
//!   `update*`, `insert`, `delete`, `add_raw`, `process*`, `offer`,
//!   `push`, `expire`, `merge`), where per-element stream arithmetic
//!   happens.
//!
//! Float accumulation cannot panic or wrap (it saturates to ±inf), so
//! `f64` sites carry L3 allow markers rather than checked variants.  Query-side estimate code multiplies freely in `f64` and
//! is deliberately out of the bare-operator scope.

use super::{enclosing_fn, Pass, RawFinding};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

const COMPOUND: &[&str] = &["+=", "-=", "*=", "<<=", "<<"];
const BARE: &[&str] = &["+", "-", "*"];

const UPDATE_FNS: &[&str] = &[
    "update",
    "update_with_signs",
    "add_raw",
    "insert",
    "delete",
    "process",
    "process_with_signs",
    "process_restored_with_signs",
    "offer",
    "push",
    "expire",
    "merge",
    // The wire-speed ingest path: one routed insert per element, sign
    // rows served from a direct-mapped cache and written through stride
    // indexes (`slot * families`, `start + families`).  A stride slip
    // here silently corrupts a *neighbouring* value's cached signs, so
    // the index arithmetic needs the same explicit-policy treatment as
    // the counters themselves.
    "insert_routed",
    "signs",
    "fill_signs_reduced",
    "apply_with_signs",
    "untrack",
];

/// The L3 pass.
pub struct ArithDiscipline;

impl Pass for ArithDiscipline {
    fn rule(&self) -> &'static str {
        "L3"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/sketch/src/")
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for i in 0..file.tokens.len() {
            if file.in_test[i] || file.code_token(i).is_none() {
                continue;
            }
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Punct {
                continue;
            }
            let op = tok.text.as_str();
            if COMPOUND.contains(&op) {
                // `<<` in a const expression like `1 << 20` is a shift on
                // a literal — still flagged; widths are part of the rule.
                out.push(RawFinding {
                    rule: "L3",
                    line: tok.line,
                    message: format!(
                        "`{op}` on counter/frequency state; use checked_/wrapping_/saturating_ (or allow with the overflow argument)"
                    ),
                });
            } else if BARE.contains(&op) {
                // Only inside update-path functions, and only in binary
                // position (previous code token ends an operand).
                let Some(func) = enclosing_fn(file, i) else { continue };
                if !UPDATE_FNS.contains(&func.name.as_str()) {
                    continue;
                }
                let binary = file.prev_code(i).map_or(false, |p| {
                    let prev = &file.tokens[p];
                    match prev.kind {
                        TokenKind::Ident => {
                            !super::NON_POSTFIX_KEYWORDS.contains(&prev.text.as_str())
                        }
                        TokenKind::Num => true,
                        TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                        _ => false,
                    }
                });
                if binary {
                    out.push(RawFinding {
                        rule: "L3",
                        line: tok.line,
                        message: format!(
                            "bare `{op}` in update path `{}`; use checked_/wrapping_/saturating_ (or allow with the overflow argument)",
                            func.name
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<RawFinding> {
        let f = SourceFile::parse("crates/sketch/src/ams.rs", src);
        let mut out = Vec::new();
        ArithDiscipline.run(&f, &mut out);
        out
    }

    #[test]
    fn flags_compound_assign_and_bare_ops_in_update() {
        let out = run_on(
            "impl X { fn update(&mut self, v: u64, c: i64) { self.x += self.sign(v) * c; } }",
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn bare_ops_outside_update_fns_ok() {
        let out = run_on("fn estimate(&self) -> f64 { self.a as f64 * self.b as f64 + 1.0 }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unary_minus_and_deref_not_flagged() {
        let out = run_on("fn delete(&mut self, v: u64) { let x = -1; let y = *v_ref; f(x, y) }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn shift_flagged_anywhere() {
        let out = run_on("const W: u64 = 1 << 20;");
        assert_eq!(out.len(), 1);
    }

    /// Stride-index arithmetic in the sign-cache lookup (`slot *
    /// families`, `start + families`) is inside L3's update-path scope:
    /// a slip corrupts a neighbouring slot's cached signs.
    #[test]
    fn stride_index_arithmetic_in_cache_lookup_flagged() {
        let out = run_on(
            "impl C { fn signs(&mut self, v: u64) -> &[i8] { let start = slot * self.families; &self.signs[start..start + self.families] } }",
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    /// The routed-insert fast path folds the tracked-value restore into
    /// the insert delta; that fold is counter arithmetic and must use an
    /// explicit overflow policy.
    #[test]
    fn insert_routed_delta_arithmetic_flagged() {
        let out = run_on("fn insert_routed(restored: i64) { let delta = 1 + restored; g(delta); }");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    /// The wrapping forms the hot path actually uses stay clean.
    #[test]
    fn wrapping_calls_in_stride_fns_ok() {
        let out = run_on(
            "fn insert_routed(restored: i64) { let delta = 1i64.wrapping_add(restored); g(delta); }",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tests_excluded() {
        let out = run_on("#[cfg(test)] mod tests { fn t() { let mut x = 0; x += 1; } }");
        assert!(out.is_empty());
    }
}
