//! L9 — spec drift between docs and code.
//!
//! Two tables in the docs make testable claims about the code:
//!
//! * `docs/wire-protocol.md` lists every SKTP opcode (`| 0x01 | Ping |
//!   … |`); `crates/server/src/wire.rs` declares them (`const K_PING:
//!   u8 = 0x01;`).
//! * `docs/observability.md` lists every exported metric in its tables;
//!   the code registers them by string literal
//!   (`registry.counter("sktp_frames_total", …)`).
//!
//! Nothing previously held the two sides together: a new opcode or
//! metric silently left the docs describing a protocol the server no
//! longer speaks.  This pass diffs both directions:
//!
//! * every documented opcode value must have a constant with that value
//!   whose name matches the documented name (normalized prefix match —
//!   `Stats` ↔ `K_STATS_REPLY`, `HeavyHitters` ↔ `K_HEAVY`);
//! * every `K_*` constant must appear in the doc table, same value;
//! * every metric name backticked in `observability.md` must be
//!   registered (histogram exports may document the derived `_count` /
//!   `_sum` / `_bucket` series);
//! * every registered metric name must appear in an `observability.md`
//!   table row.
//!
//! Findings anchored to a doc file cannot carry `lint:allow` markers —
//! drift in the doc is fixed by editing the doc, which is the point.

use super::{Workspace, WorkspacePass, WsFinding};

/// The L9 pass.
pub struct SpecDrift;

const WIRE_DOC: &str = "docs/wire-protocol.md";
const OBS_DOC: &str = "docs/observability.md";

/// Metric-name prefixes we treat as claims about registered metrics.
const METRIC_PREFIXES: &[&str] = &["sketchtree_", "sktp_"];

/// Derived histogram series the docs may mention per registered base.
const HIST_SUFFIXES: &[&str] = &["_count", "_sum", "_bucket"];

impl WorkspacePass for SpecDrift {
    fn rule(&self) -> &'static str {
        "L9"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<WsFinding>) {
        if let Some((_, text)) = ws.docs.iter().find(|(p, _)| p == WIRE_DOC) {
            self.check_wire(ws, text, out);
        }
        if let Some((_, text)) = ws.docs.iter().find(|(p, _)| p == OBS_DOC) {
            self.check_metrics(ws, text, out);
        }
        out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
        out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    }
}

impl SpecDrift {
    fn check_wire(&self, ws: &Workspace, doc: &str, out: &mut Vec<WsFinding>) {
        let rows = opcode_rows(doc);
        let consts: Vec<_> = ws
            .index
            .opcodes
            .iter()
            .filter(|c| ws.files[c.file].rel.ends_with("wire.rs"))
            .collect();

        for row in &rows {
            let Some(c) = consts.iter().find(|c| c.value == Some(row.value)) else {
                out.push(WsFinding {
                    rule: "L9",
                    file: WIRE_DOC.to_string(),
                    line: row.line,
                    message: format!(
                        "documented opcode 0x{:02X} `{}` has no `K_*: u8` constant with that \
                         value in wire.rs — doc describes a frame the server does not speak",
                        row.value, row.name
                    ),
                });
                continue;
            };
            if !names_match(&norm_const(&c.name), &norm_doc(&row.name)) {
                out.push(WsFinding {
                    rule: "L9",
                    file: ws.files[c.file].rel.clone(),
                    line: c.line,
                    message: format!(
                        "`{}` = 0x{:02X} does not match the documented name `{}` for that \
                         opcode ({WIRE_DOC} line {})",
                        c.name, row.value, row.name, row.line
                    ),
                });
            }
        }
        for c in &consts {
            let Some(v) = c.value else {
                out.push(WsFinding {
                    rule: "L9",
                    file: ws.files[c.file].rel.clone(),
                    line: c.line,
                    message: format!("`{}` has a non-literal value — spec diff cannot verify it", c.name),
                });
                continue;
            };
            if !rows.iter().any(|r| r.value == v) {
                out.push(WsFinding {
                    rule: "L9",
                    file: ws.files[c.file].rel.clone(),
                    line: c.line,
                    message: format!(
                        "`{}` = 0x{v:02X} is not in the {WIRE_DOC} opcode table — undocumented frame kind",
                        c.name
                    ),
                });
            }
        }
    }

    fn check_metrics(&self, ws: &Workspace, doc: &str, out: &mut Vec<WsFinding>) {
        let registered: Vec<&str> = ws.index.metrics.iter().map(|m| m.name.as_str()).collect();
        let satisfied = |name: &str| {
            registered.contains(&name)
                || HIST_SUFFIXES.iter().any(|s| {
                    name.strip_suffix(s).map_or(false, |base| registered.contains(&base))
                })
        };

        // Doc → code: every backticked metric name anywhere in the doc.
        // Only well-formed names are claims — glob mentions
        // (`sketchtree_*`) and PromQL alert expressions in prose are
        // not assertions that a series exists.
        for (li, line) in doc.lines().enumerate() {
            for span in backtick_spans(line) {
                let name = span.split('{').next().unwrap_or(span);
                if !METRIC_PREFIXES.iter().any(|p| name.starts_with(p)) {
                    continue;
                }
                if !name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                {
                    continue;
                }
                if !satisfied(name) {
                    out.push(WsFinding {
                        rule: "L9",
                        file: OBS_DOC.to_string(),
                        line: (li + 1) as u32,
                        message: format!(
                            "documented metric `{name}` is never registered — doc describes a \
                             series that is not exported"
                        ),
                    });
                }
            }
        }

        // Code → doc: every registered name must be in a table row.
        let mut documented: Vec<String> = Vec::new();
        for line in doc.lines() {
            if !line.trim_start().starts_with('|') {
                continue;
            }
            for span in backtick_spans(line) {
                documented.push(span.split('{').next().unwrap_or(span).to_string());
            }
        }
        for m in &ws.index.metrics {
            if !documented.iter().any(|d| d == &m.name) {
                out.push(WsFinding {
                    rule: "L9",
                    file: ws.files[m.file].rel.clone(),
                    line: m.line,
                    message: format!(
                        "registered metric `{}` is not in any {OBS_DOC} table row — \
                         undocumented export",
                        m.name
                    ),
                });
            }
        }
    }
}

/// One `| 0xNN | Name | … |` row of the wire-protocol opcode tables.
struct OpcodeRow {
    value: u64,
    name: String,
    line: u32,
}

/// Parses every opcode table row: a `|`-delimited row whose first cell
/// is a hex literal.  Header, separator, and the frame-layout tables
/// (whose first cells are field names) all fail the hex filter.
fn opcode_rows(doc: &str) -> Vec<OpcodeRow> {
    let mut rows = Vec::new();
    for (li, line) in doc.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t
            .split('|')
            .map(|c| c.trim().trim_matches('`'))
            .filter(|c| !c.is_empty())
            .collect();
        let [first, second, ..] = cells.as_slice() else { continue };
        let Some(hex) = first.strip_prefix("0x") else { continue };
        let Ok(value) = u64::from_str_radix(hex, 16) else { continue };
        rows.push(OpcodeRow { value, name: second.to_string(), line: (li + 1) as u32 });
    }
    rows
}

/// The code spans of one markdown line (odd segments between backticks).
fn backtick_spans(line: &str) -> impl Iterator<Item = &str> {
    line.split('`').enumerate().filter_map(|(i, s)| (i % 2 == 1).then_some(s))
}

/// Normalizes a `K_*` constant name: strip the prefix, drop `_`, lowercase.
fn norm_const(name: &str) -> String {
    let base = name.strip_prefix("K_").unwrap_or(name);
    base.chars().filter(|c| *c != '_').collect::<String>().to_lowercase()
}

/// Normalizes a documented opcode name: drop `_`/`-`/spaces, lowercase.
fn norm_doc(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_lowercase()
}

/// Doc and code agree when one normalized name prefixes the other —
/// `statsreply` vs `stats`, `heavy` vs `heavyhitters`.
fn names_match(code: &str, doc: &str) -> bool {
    !code.is_empty() && !doc.is_empty() && (code.starts_with(doc) || doc.starts_with(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(wire_rs: &str, metrics_rs: &str, wire_doc: &str, obs_doc: &str) -> Vec<WsFinding> {
        let files = vec![
            SourceFile::parse("crates/server/src/wire.rs", wire_rs),
            SourceFile::parse("crates/server/src/metrics.rs", metrics_rs),
        ];
        let docs = vec![
            (WIRE_DOC.to_string(), wire_doc.to_string()),
            (OBS_DOC.to_string(), obs_doc.to_string()),
        ];
        let ws = Workspace::new(files, docs);
        let mut out = Vec::new();
        SpecDrift.run(&ws, &mut out);
        out
    }

    const CLEAN_WIRE: &str = "pub const K_PING: u8 = 0x01;\npub const K_STATS_REPLY: u8 = 0x84;\n";
    const CLEAN_WDOC: &str = "| Opcode | Name | Payload |\n|---|---|---|\n| 0x01 | Ping | empty |\n| 0x84 | Stats | counts |\n";
    const CLEAN_MET: &str = "fn wire(r: &Registry) { r.counter(\"sktp_frames_total\", \"h\"); }\n";
    const CLEAN_ODOC: &str = "| Metric | Type |\n|---|---|\n| `sktp_frames_total{direction=…}` | counter |\n";

    #[test]
    fn clean_round_trip_is_empty() {
        let out = run(CLEAN_WIRE, CLEAN_MET, CLEAN_WDOC, CLEAN_ODOC);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn documented_opcode_missing_from_code_is_doc_anchored() {
        let doc = format!("{CLEAN_WDOC}| 0x09 | Merge | synopsis |\n");
        let out = run(CLEAN_WIRE, CLEAN_MET, &doc, CLEAN_ODOC);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, WIRE_DOC);
        assert!(out[0].message.contains("0x09"), "{out:?}");
    }

    #[test]
    fn undocumented_constant_is_rs_anchored() {
        let wire = format!("{CLEAN_WIRE}pub const K_EVICT: u8 = 0x0E;\n");
        let out = run(&wire, CLEAN_MET, CLEAN_WDOC, CLEAN_ODOC);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].file.ends_with("wire.rs"));
        assert!(out[0].message.contains("undocumented frame kind"), "{out:?}");
    }

    #[test]
    fn name_mismatch_at_same_value_is_flagged() {
        let doc = "| 0x01 | Hello | empty |\n| 0x84 | Stats | counts |\n";
        let out = run(CLEAN_WIRE, CLEAN_MET, doc, CLEAN_ODOC);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("K_PING"), "{out:?}");
        assert!(out[0].message.contains("Hello"), "{out:?}");
    }

    #[test]
    fn prefix_name_matching_accepts_reply_suffixes() {
        // `Stats` ↔ `K_STATS_REPLY` in the clean fixture already; also
        // the reverse direction: doc longer than code.
        let wire = "pub const K_HEAVY: u8 = 0x07;\n";
        let doc = "| 0x07 | HeavyHitters | query |\n";
        let out = run(wire, CLEAN_MET, doc, CLEAN_ODOC);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn documented_metric_without_registration_is_flagged() {
        let doc = format!("{CLEAN_ODOC}| `sktp_ghost_total` | counter |\n");
        let out = run(CLEAN_WIRE, CLEAN_MET, CLEAN_WDOC, &doc);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, OBS_DOC);
        assert!(out[0].message.contains("sktp_ghost_total"), "{out:?}");
    }

    #[test]
    fn histogram_derived_series_are_satisfied_by_base() {
        let met = "fn m(r: &Registry) { r.counter(\"sktp_frames_total\", \"h\"); \
                   r.histogram(\"sktp_request_seconds\", \"h\", b); }\n";
        let doc = format!(
            "{CLEAN_ODOC}| `sktp_request_seconds` | histogram |\n\
             Prose: watch `sktp_request_seconds_count` for rates.\n"
        );
        let out = run(CLEAN_WIRE, met, CLEAN_WDOC, &doc);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unregistered_in_doc_table_and_registered_not_in_doc() {
        let met = "fn m(r: &Registry) { r.counter(\"sktp_frames_total\", \"h\"); \
                   r.gauge(\"sktp_hidden_gauge\", \"h\"); }\n";
        let out = run(CLEAN_WIRE, met, CLEAN_WDOC, CLEAN_ODOC);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].file.ends_with("metrics.rs"));
        assert!(out[0].message.contains("sktp_hidden_gauge"), "{out:?}");
        assert!(out[0].message.contains("undocumented export"), "{out:?}");
    }

    #[test]
    fn curly_label_suffixes_are_stripped_before_lookup() {
        // `{direction=…}` in the clean doc row already exercises this;
        // a prose mention with labels must also resolve.
        let doc = format!("{CLEAN_ODOC}See `sktp_frames_total{{direction=\"in\"}}`.\n");
        let out = run(CLEAN_WIRE, CLEAN_MET, CLEAN_WDOC, &doc);
        assert!(out.is_empty(), "{out:?}");
    }
}
