//! L5 — wire-opcode exhaustiveness.
//!
//! The SKTP framing in `wire.rs` declares every opcode as a
//! `const K_*: u8`.  Encoding maps a message to its opcode in `kind()`;
//! decoding matches the opcode back in `decode()`.  A constant that
//! appears on only one side is a protocol hole: either the server can
//! emit a frame no reader accepts, or it advertises a kind it can never
//! produce.  PR 1 grew the opcode table three times; this pass makes the
//! fourth time mechanical.
//!
//! The check is lexical: every `const K_<NAME>: u8` must be mentioned in
//! at least one function named `kind` or `encode` (the encode side) and
//! at least one function named `decode` (the decode side).  Both
//! findings anchor to the constant's declaration line.

use super::{Pass, RawFinding};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// The L5 pass.
pub struct WireExhaustive;

impl Pass for WireExhaustive {
    fn rule(&self) -> &'static str {
        "L5"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.rsplit('/').next().unwrap_or(rel) == "wire.rs"
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        // Collect `const K_X: u8` declarations (name, line).
        let mut opcodes: Vec<(String, u32)> = Vec::new();
        for i in 0..file.tokens.len() {
            if file.in_test[i] || !file.is_ident(i, "const") {
                continue;
            }
            let Some(name_i) = file.next_code(i) else { continue };
            let name = &file.tokens[name_i];
            if name.kind != TokenKind::Ident || !name.text.starts_with("K_") {
                continue;
            }
            let colon = file.next_code(name_i);
            let ty = colon.and_then(|c| {
                if file.is_punct(c, ":") {
                    file.next_code(c)
                } else {
                    None
                }
            });
            if ty.map_or(false, |t| file.is_ident(t, "u8")) {
                opcodes.push((name.text.clone(), name.line));
            }
        }

        // Collect the token texts used inside encode-side and decode-side
        // function bodies.
        let mut encode_side: Vec<&str> = Vec::new();
        let mut decode_side: Vec<&str> = Vec::new();
        for func in &file.functions {
            let side: &mut Vec<&str> = match func.name.as_str() {
                "kind" | "encode" => &mut encode_side,
                "decode" => &mut decode_side,
                _ => continue,
            };
            for j in func.body.clone() {
                if let Some(t) = file.code_token(j) {
                    if t.kind == TokenKind::Ident {
                        side.push(t.text.as_str());
                    }
                }
            }
        }

        for (name, line) in &opcodes {
            if !encode_side.iter().any(|t| t == name) {
                out.push(RawFinding {
                    rule: "L5",
                    line: *line,
                    message: format!("opcode `{name}` has no encode arm (not used in any kind()/encode())"),
                });
            }
            if !decode_side.iter().any(|t| t == name) {
                out.push(RawFinding {
                    rule: "L5",
                    line: *line,
                    message: format!("opcode `{name}` has no decode arm (not used in any decode())"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BALANCED: &str = r#"
const K_PING: u8 = 0x01;
const K_PONG: u8 = 0x81;
impl Req {
    fn kind(&self) -> u8 { match self { Req::Ping => K_PING, Req::Pong => K_PONG } }
    fn decode(k: u8) -> Option<Req> {
        match k { K_PING => Some(Req::Ping), K_PONG => Some(Req::Pong), _ => None }
    }
}
"#;

    fn run_on(src: &str) -> Vec<RawFinding> {
        let f = SourceFile::parse("crates/server/src/wire.rs", src);
        let mut out = Vec::new();
        WireExhaustive.run(&f, &mut out);
        out
    }

    #[test]
    fn balanced_table_is_clean() {
        assert!(run_on(BALANCED).is_empty());
    }

    #[test]
    fn missing_decode_arm_flagged() {
        let src = BALANCED.replace("K_PONG => Some(Req::Pong), ", "");
        let out = run_on(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("K_PONG"));
        assert!(out[0].message.contains("decode"));
    }

    #[test]
    fn missing_encode_arm_flagged() {
        let src = BALANCED.replace("Req::Pong => K_PONG", "Req::Pong => 0x81");
        let out = run_on(&src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("encode"));
    }

    #[test]
    fn only_wire_rs_in_scope() {
        assert!(WireExhaustive.applies("crates/server/src/wire.rs"));
        assert!(!WireExhaustive.applies("crates/server/src/server.rs"));
    }
}
