//! L2 — cast-safety in serialization/deserialization code.
//!
//! PR 1 shipped a silent `as u32` length truncation in `wire.rs`: a
//! payload over 4 GiB would have encoded a wrong length prefix and
//! desynchronized the stream for every later frame.  `as` casts between
//! integer types silently wrap, and in codec code a wrapped length or
//! count is a protocol corruption, not a math quirk.  This pass flags
//! **every** integer-target `as` cast in the codec files (`wire.rs`,
//! `snapshot.rs`, `prufer.rs`) and in `crates/sketch` (whose state
//! export/import feeds the snapshot format).  The fix is `try_from`
//! with an in-band decode error, `From` where the conversion is
//! provably widening, or an L2 allow marker stating why the cast
//! cannot lose a bit.
//!
//! Float-target casts are out of scope: estimates are floats by nature
//! and `f64` conversion is saturating, not wrapping.

use super::{Pass, RawFinding};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// File basenames that are codec code wherever they live.
const CODEC_FILES: &[&str] = &["wire.rs", "snapshot.rs", "prufer.rs"];

/// The L2 pass.
pub struct CastSafety;

impl Pass for CastSafety {
    fn rule(&self) -> &'static str {
        "L2"
    }

    fn applies(&self, rel: &str) -> bool {
        let base = rel.rsplit('/').next().unwrap_or(rel);
        CODEC_FILES.contains(&base) || rel.starts_with("crates/sketch/src/")
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for i in 0..file.tokens.len() {
            if file.in_test[i] || file.code_token(i).is_none() {
                continue;
            }
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident || tok.text != "as" {
                continue;
            }
            // `use x as y` imports share the keyword; only flag when the
            // next token names an integer type.
            let Some(n) = file.next_code(i) else { continue };
            let ty = &file.tokens[n];
            if ty.kind == TokenKind::Ident && INT_TYPES.contains(&ty.text.as_str()) {
                out.push(RawFinding {
                    rule: "L2",
                    line: tok.line,
                    message: format!(
                        "`as {}` cast in codec code silently truncates/wraps; use try_from/From",
                        ty.text
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(rel: &str, src: &str) -> Vec<RawFinding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        CastSafety.run(&f, &mut out);
        out
    }

    #[test]
    fn flags_integer_casts_only() {
        let out = run_on(
            "crates/server/src/wire.rs",
            "fn f(n: usize) { let a = n as u32; let b = n as f64; let c = x as MyType; }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("as u32"));
    }

    #[test]
    fn use_renames_not_flagged() {
        let out = run_on(
            "crates/core/src/snapshot.rs",
            "use std::io::Read as IoRead;\nfn g() {}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tests_excluded() {
        let out = run_on(
            "crates/tree/src/prufer.rs",
            "#[cfg(test)]\nmod tests { fn t() { let x = 1usize as u32; } }",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn scope() {
        assert!(CastSafety.applies("crates/server/src/wire.rs"));
        assert!(CastSafety.applies("crates/core/src/snapshot.rs"));
        assert!(CastSafety.applies("crates/tree/src/prufer.rs"));
        assert!(CastSafety.applies("crates/sketch/src/bank.rs"));
        assert!(!CastSafety.applies("crates/xml/src/reader.rs"));
    }
}
