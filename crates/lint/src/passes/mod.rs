//! The pass framework and the five shipped passes.
//!
//! A pass is a pure function over one annotated [`SourceFile`]: it may
//! not do I/O and may not see other files (L5, which cross-checks
//! opcode tables, still only needs `wire.rs` itself).  Each pass
//! declares which workspace-relative paths it polices; scoping is part
//! of the rule, not of the driver.

use crate::index::WorkspaceIndex;
use crate::source::SourceFile;

pub mod arith;
pub mod blocking;
pub mod cast_safety;
pub mod epoch;
pub mod lock_order;
pub mod locks;
pub mod panic_free;
pub mod spec_drift;
pub mod wire_exhaustive;

/// A finding before allow-marker matching: rule, line, message.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule id (`"L1"` … `"L5"`).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One static-analysis pass.
pub trait Pass {
    /// The rule id this pass reports under.
    fn rule(&self) -> &'static str;
    /// Whether `rel` (workspace-relative, `/`-separated) is in scope.
    fn applies(&self, rel: &str) -> bool;
    /// Analyses one in-scope file.
    fn run(&self, file: &SourceFile, out: &mut Vec<RawFinding>);
}

/// The default per-file pass roster, L1–L5.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panic_free::PanicFree),
        Box::new(cast_safety::CastSafety),
        Box::new(arith::ArithDiscipline),
        Box::new(locks::LockDiscipline),
        Box::new(wire_exhaustive::WireExhaustive),
    ]
}

/// The analysis context for the graph-aware workspace passes: every
/// parsed file, the cross-file [`WorkspaceIndex`] built from them, and
/// the doc files the spec-drift pass diffs against code.
pub struct Workspace {
    /// Every parsed source file, in scan order.
    pub files: Vec<SourceFile>,
    /// The cross-file symbol table / call graph / span index.
    pub index: WorkspaceIndex,
    /// `(workspace-relative path, text)` of the spec documents.
    pub docs: Vec<(String, String)>,
}

impl Workspace {
    /// Builds the index and wraps the inputs.
    pub fn new(files: Vec<SourceFile>, docs: Vec<(String, String)>) -> Workspace {
        let index = WorkspaceIndex::build(&files);
        Workspace { files, index, docs }
    }

    /// True when the function's body starts inside test-only code.
    pub fn fn_in_test(&self, f: &crate::index::FnInfo) -> bool {
        let file = &self.files[f.file];
        f.body.is_empty() || file.in_test.get(f.body.start).copied().unwrap_or(false)
    }
}

/// A finding from a workspace pass — unlike [`RawFinding`] it names its
/// file, because one pass may report across many files (and the docs).
#[derive(Debug, Clone)]
pub struct WsFinding {
    /// Rule id (`"L6"` … `"L9"`).
    pub rule: &'static str,
    /// Workspace-relative path the finding anchors to.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One graph-aware workspace pass.
pub trait WorkspacePass {
    /// The rule id this pass reports under.
    fn rule(&self) -> &'static str;
    /// Analyses the whole workspace.
    fn run(&self, ws: &Workspace, out: &mut Vec<WsFinding>);
}

/// The default workspace-pass roster, L6–L9.
pub fn default_workspace_passes() -> Vec<Box<dyn WorkspacePass>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(blocking::BlockingUnderLock),
        Box::new(epoch::EpochDiscipline),
        Box::new(spec_drift::SpecDrift),
    ]
}

/// Rust keywords that can directly precede `[` without it being an index
/// expression (array literals, slice patterns, loop bodies…).
pub(crate) const NON_POSTFIX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "break", "continue", "move", "ref",
    "as", "static", "const", "where", "use", "pub", "fn", "impl", "for", "while", "loop", "dyn",
    "crate", "box", "unsafe", "async", "await", "yield", "type", "trait", "struct", "enum",
];

/// The innermost function (by body token range) containing token `i`.
pub(crate) fn enclosing_fn<'a>(
    file: &'a SourceFile,
    i: usize,
) -> Option<&'a crate::source::Func> {
    file.functions
        .iter()
        .filter(|f| f.body.contains(&i))
        .min_by_key(|f| f.body.len())
}
