//! The pass framework and the five shipped passes.
//!
//! A pass is a pure function over one annotated [`SourceFile`]: it may
//! not do I/O and may not see other files (L5, which cross-checks
//! opcode tables, still only needs `wire.rs` itself).  Each pass
//! declares which workspace-relative paths it polices; scoping is part
//! of the rule, not of the driver.

use crate::source::SourceFile;

pub mod arith;
pub mod cast_safety;
pub mod locks;
pub mod panic_free;
pub mod wire_exhaustive;

/// A finding before allow-marker matching: rule, line, message.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule id (`"L1"` … `"L5"`).
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One static-analysis pass.
pub trait Pass {
    /// The rule id this pass reports under.
    fn rule(&self) -> &'static str;
    /// Whether `rel` (workspace-relative, `/`-separated) is in scope.
    fn applies(&self, rel: &str) -> bool;
    /// Analyses one in-scope file.
    fn run(&self, file: &SourceFile, out: &mut Vec<RawFinding>);
}

/// The default pass roster, L1–L5.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panic_free::PanicFree),
        Box::new(cast_safety::CastSafety),
        Box::new(arith::ArithDiscipline),
        Box::new(locks::LockDiscipline),
        Box::new(wire_exhaustive::WireExhaustive),
    ]
}

/// Rust keywords that can directly precede `[` without it being an index
/// expression (array literals, slice patterns, loop bodies…).
pub(crate) const NON_POSTFIX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "break", "continue", "move", "ref",
    "as", "static", "const", "where", "use", "pub", "fn", "impl", "for", "while", "loop", "dyn",
    "crate", "box", "unsafe", "async", "await", "yield", "type", "trait", "struct", "enum",
];

/// The innermost function (by body token range) containing token `i`.
pub(crate) fn enclosing_fn<'a>(
    file: &'a SourceFile,
    i: usize,
) -> Option<&'a crate::source::Func> {
    file.functions
        .iter()
        .filter(|f| f.body.contains(&i))
        .min_by_key(|f| f.body.len())
}
