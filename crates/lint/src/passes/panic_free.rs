//! L1 — panic-freedom in service-path library code.
//!
//! PR 1's review found worker threads panicking on hostile input; a
//! panic in a server worker kills the connection it serves and, under a
//! poisoned lock, can wedge the whole process.  This pass bans the
//! mechanically detectable panic sources — `.unwrap()`, `.expect(…)`,
//! `panic!`, `unreachable!`, `todo!`, `unimplemented!`, and slice/array
//! indexing `x[i]` — in the non-test library code of `crates/server`,
//! `crates/sketch`, and the `crates/core` ingest/query hot path.
//!
//! `assert!`-family macros are deliberately *not* banned: they state
//! preconditions at API boundaries, which is a design choice, not an
//! accident.  Sites whose bounds are structurally guaranteed carry a
//! `// lint:allow(L1, reason = "…")` marker stating the invariant.

use super::{Pass, RawFinding, NON_POSTFIX_KEYWORDS};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Files in `crates/core` that sit on the per-tree ingest / per-query
/// estimate path (the rest of `core` is offline tooling: snapshot
/// decode already returns in-band errors, `exact` is measurement
/// scaffolding).
const CORE_HOT: &[&str] = &[
    "crates/core/src/sketchtree.rs",
    "crates/core/src/concurrent.rs",
    "crates/core/src/enumtree.rs",
    "crates/core/src/mapping.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The L1 pass.
pub struct PanicFree;

impl Pass for PanicFree {
    fn rule(&self) -> &'static str {
        "L1"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/server/src/")
            || rel.starts_with("crates/sketch/src/")
            || CORE_HOT.contains(&rel)
    }

    fn run(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        for i in 0..file.tokens.len() {
            if file.in_test[i] || file.code_token(i).is_none() {
                continue;
            }
            let tok = &file.tokens[i];
            match tok.kind {
                TokenKind::Ident if tok.text == "unwrap" || tok.text == "expect" => {
                    let after_dot = file.prev_code(i).map_or(false, |p| file.is_punct(p, "."));
                    let called = file.next_code(i).map_or(false, |n| file.is_punct(n, "("));
                    if after_dot && called {
                        out.push(RawFinding {
                            rule: "L1",
                            line: tok.line,
                            message: format!(
                                ".{}() can panic; return an error or document the invariant",
                                tok.text
                            ),
                        });
                    }
                }
                TokenKind::Ident if PANIC_MACROS.contains(&tok.text.as_str()) => {
                    let is_macro = file.next_code(i).map_or(false, |n| file.is_punct(n, "!"));
                    // `panic` as a path segment (std::panic::catch_unwind)
                    // is not an invocation.
                    if is_macro {
                        out.push(RawFinding {
                            rule: "L1",
                            line: tok.line,
                            message: format!("{}! in library code", tok.text),
                        });
                    }
                }
                TokenKind::Punct if tok.text == "[" => {
                    let Some(p) = file.prev_code(i) else { continue };
                    let prev = &file.tokens[p];
                    let is_postfix = match prev.kind {
                        TokenKind::Ident => !NON_POSTFIX_KEYWORDS.contains(&prev.text.as_str()),
                        TokenKind::Punct => prev.text == ")" || prev.text == "]" || prev.text == "?",
                        _ => false,
                    };
                    if is_postfix {
                        out.push(RawFinding {
                            rule: "L1",
                            line: tok.line,
                            message: format!(
                                "index expression `{}[…]` can panic out of bounds; use get()/iterators or document the bound",
                                prev.text
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<RawFinding> {
        let f = SourceFile::parse("crates/server/src/x.rs", src);
        let mut out = Vec::new();
        PanicFree.run(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_panics_and_indexing() {
        let out = run_on(
            "fn f(v: &[u8]) -> u8 { let a = v.first().unwrap(); x.expect(\"m\"); panic!(\"x\"); v[0] }",
        );
        let rules: Vec<_> = out.iter().map(|f| f.message.clone()).collect();
        assert_eq!(out.len(), 4, "{rules:?}");
    }

    #[test]
    fn ignores_tests_strings_and_patterns() {
        let out = run_on(
            r#"
fn ok(v: &[u8]) {
    let s = "x.unwrap() and v[0]";
    let [a, b] = [1, 2];
    let arr = [0u8; 4];
    let _ = (s, a, b, arr);
}
#[cfg(test)]
mod tests {
    fn t(v: &[u8]) { v[0]; x.unwrap(); panic!(); }
}
"#,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unreachable_and_todo_flagged() {
        let out = run_on("fn f() { if x { unreachable!() } else { todo!() } }");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn scope_is_limited() {
        assert!(PanicFree.applies("crates/server/src/server.rs"));
        assert!(PanicFree.applies("crates/sketch/src/ams.rs"));
        assert!(PanicFree.applies("crates/core/src/sketchtree.rs"));
        assert!(!PanicFree.applies("crates/core/src/exact.rs"));
        assert!(!PanicFree.applies("crates/tree/src/prufer.rs"));
    }
}
