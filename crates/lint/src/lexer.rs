//! A small, loss-tolerant Rust lexer.
//!
//! The passes in this crate reason about token *streams*, never about
//! grammar, so the lexer's one job is to never misclassify text: code
//! inside string literals, raw strings, char literals and comments must
//! not leak tokens, and `lint:allow` markers must only be recognised
//! inside comments.  It handles:
//!
//! * string literals with escapes, byte strings, C-string literals;
//! * raw (byte) strings `r"…"`, `r#"…"#`, … with any hash count;
//! * char and byte literals, including escaped quotes, vs. lifetimes;
//! * nested block comments (`/* /* */ */` is one comment);
//! * raw identifiers (`r#match`);
//! * maximal-munch multi-character operators (`<<=`, `..=`, `->`, …).
//!
//! The lexer never panics and never rejects input: unknown bytes become
//! single-character [`TokenKind::Punct`] tokens, and an unterminated
//! literal or comment extends to end of input.  Tokens carry byte spans
//! into the original source, so `src[tok.start..tok.end] == tok.text`
//! always holds (the round-trip property the proptests pin down).

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// A lifetime such as `'a` (including `'static`).
    Lifetime,
    /// String-ish literal: `"…"`, `b"…"`, `c"…"`, `r"…"`, `br#"…"#`, …
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// `// …` or `//! …` or `/// …` comment (text excludes the newline).
    LineComment,
    /// `/* … */` comment, nesting respected.
    BlockComment,
    /// Operator or other punctuation, possibly multi-character.
    Punct,
}

/// One lexed token with its exact source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

/// Multi-character operators, longest first (maximal munch).
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lexes `src` into a complete token stream.  Total: every non-whitespace
/// byte of the input is covered by exactly one token span.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'b' | b'r' | b'c' if self.literal_prefix() => {}
                _ if is_ident_start(b) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, start_line: u32) {
        self.out.push(Token {
            kind,
            text: self.src[start..self.pos].to_string(),
            line: start_line,
            start,
            end: self.pos,
        });
    }

    /// Advances over `n` bytes, counting newlines.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            if self.bytes.get(self.pos) == Some(&b'\n') {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.advance(2); // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.advance(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.advance(2);
            } else {
                self.advance(1);
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// A non-raw string body starting at the opening quote.
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.advance(1); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.advance(2.min(self.bytes.len() - self.pos)),
                b'"' => {
                    self.advance(1);
                    break;
                }
                _ => self.advance(1),
            }
        }
        self.consume_suffix();
        self.push(TokenKind::Str, start, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`,
    /// `r#ident`.  Returns true when it consumed a literal; false means
    /// the caller should lex a plain identifier.
    fn literal_prefix(&mut self) -> bool {
        let start = self.pos;
        let line = self.line;
        let b0 = self.bytes[self.pos];
        // Raw identifier r#foo (but r#"…"# is a raw string).
        if b0 == b'r' && self.peek(1) == Some(b'#') {
            if let Some(b2) = self.peek(2) {
                if is_ident_start(b2) {
                    self.advance(2);
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.pos += 1;
                    }
                    self.push(TokenKind::Ident, start, line);
                    return true;
                }
            }
        }
        // Work out the full literal prefix: r, b, br, c, cr with optional
        // hashes, followed by a quote.
        let mut i = 1;
        if (b0 == b'b' || b0 == b'c') && self.peek(1) == Some(b'r') {
            i = 2;
        }
        match self.peek(i) {
            Some(b'"') if b0 == b'b' && i == 1 => {
                self.advance(i);
                self.string(start);
                return true;
            }
            Some(b'"') if b0 == b'c' && i == 1 => {
                self.advance(i);
                self.string(start);
                return true;
            }
            Some(b'\'') if b0 == b'b' && i == 1 => {
                self.advance(i);
                self.char_literal(start, line);
                return true;
            }
            _ => {}
        }
        // Raw-string forms: the prefix ends in `r`, then hashes, then `"`.
        let raw = (b0 == b'r' && i == 1) || i == 2;
        if raw {
            let mut hashes = 0usize;
            while self.peek(i + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(i + hashes) == Some(b'"') {
                self.advance(i + hashes + 1);
                // Scan for `"` followed by `hashes` hashes.
                'scan: while self.pos < self.bytes.len() {
                    if self.bytes[self.pos] == b'"' {
                        for h in 0..hashes {
                            if self.peek(1 + h) != Some(b'#') {
                                self.advance(1);
                                continue 'scan;
                            }
                        }
                        self.advance(1 + hashes);
                        self.consume_suffix();
                        self.push(TokenKind::Str, start, line);
                        return true;
                    }
                    self.advance(1);
                }
                self.push(TokenKind::Str, start, line); // unterminated: to EOF
                return true;
            }
        }
        false
    }

    /// `'` starts either a char literal or a lifetime.
    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.pos, self.line);
        // `'\…'` is always a char literal.
        if self.peek(1) == Some(b'\\') {
            self.char_literal(start, line);
            return;
        }
        // `'X` where X begins an identifier: lifetime, unless the
        // character after the identifier-run is `'` (then it is a char
        // literal like 'a').
        if let Some(b1) = self.peek(1) {
            if is_ident_start(b1) {
                let mut j = 2;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.peek(j) == Some(b'\'') {
                    self.char_literal(start, line);
                } else {
                    self.advance(j);
                    self.push(TokenKind::Lifetime, start, line);
                }
                return;
            }
        }
        self.char_literal(start, line);
    }

    /// A char/byte literal starting at its opening `'` (which may be at
    /// `start` or later if a `b` prefix was consumed).
    fn char_literal(&mut self, start: usize, line: u32) {
        self.advance(1); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.advance(2.min(self.bytes.len() - self.pos)),
                b'\'' => {
                    self.advance(1);
                    break;
                }
                b'\n' => break, // stray quote, not a literal: stop cleanly
                _ => self.advance(1),
            }
        }
        self.push(TokenKind::Char, start, line);
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // `1e+9` / `1E-9`: the sign belongs to the exponent.
                let is_exp = (b == b'e' || b == b'E')
                    && !self.src[start..self.pos].starts_with("0x")
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                self.pos += 1;
                if is_exp {
                    self.pos += 1; // the sign
                }
            } else if b == b'.'
                && self.peek(1) != Some(b'.')
                && self.peek(1).map_or(true, |n| !is_ident_start(n))
            {
                // Float point: `1.5`, `1.` — but not ranges `1..` or method
                // calls `1.max(2)`.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, start, line);
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn punct(&mut self) {
        let (start, line) = (self.pos, self.line);
        let rest = &self.src[self.pos..];
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                self.advance(op.len());
                self.push(TokenKind::Punct, start, line);
                return;
            }
        }
        // Single char (multi-byte UTF-8 safe).
        let n = rest.chars().next().map_or(1, char::len_utf8);
        self.advance(n);
        self.push(TokenKind::Punct, start, line);
    }

    /// Literal type suffix such as `u8` in `1u8` or `"x"suffix` (rare but
    /// legal after string literals in macros).
    fn consume_suffix(&mut self) {
        if self.pos < self.bytes.len() && is_ident_start(self.bytes[self.pos]) {
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("fn f(x: u32) -> u32 { x + 1 }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert!(toks.contains(&(TokenKind::Punct, "->".into())));
        assert!(toks.contains(&(TokenKind::Num, "1".into())));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let toks = kinds(r#"let s = "x.unwrap() /* not a comment */";"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(!toks.iter().any(|t| t.1 == "unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; let t = r"plain";"###);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Str)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(strs, vec![r###"r#"quote " inside"#"###, r#"r"plain""#]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::BlockComment).count(),
            1
        );
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Ident).count(), 2);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'x>(v: &'x str) { let q = '\\''; }");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Char).count(),
            2,
            "{toks:?}"
        );
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw "q" bytes"#; let c = b'\n';"##);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 1);
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#match".into())));
    }

    #[test]
    fn maximal_munch_operators() {
        let toks = kinds("a <<= b; c << d; e..=f; g..h");
        let ops: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Punct && t.1 != ";")
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(ops, vec!["<<=", "<<", "..=", ".."]);
    }

    #[test]
    fn spans_reconstruct_source() {
        let src = "fn main() { let s = \"a\\\"b\"; /* c */ }\n";
        for t in lex(src) {
            assert_eq!(&src[t.start..t.end], t.text, "span mismatch");
        }
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = kinds("1u8 + 0x_FF - 1.5e-3 .. 2");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Num)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(nums, vec!["1u8", "0x_FF", "1.5e-3", "2"]);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in ["\"unterminated", "r#\"open", "/* open", "'", "b'", "\u{1F980} é"] {
            let _ = lex(src);
        }
    }
}
