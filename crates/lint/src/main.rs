//! The `sketchtree-lint` binary: run the workspace analyzer and print a
//! report.
//!
//! ```text
//! sketchtree-lint [--root PATH] [--format text|json] [--show-allowed] [--changed-only]
//! ```
//!
//! `--changed-only` reports findings only for files `git diff
//! --name-only HEAD` lists as modified (plus untracked files); the
//! whole workspace is still parsed and indexed, so cross-file passes
//! keep their full call graph — only the *reporting* is scoped.
//!
//! Exit status: 0 when the gate passes (zero undocumented findings),
//! 1 when it fails, 2 on usage errors.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut show_allowed = false;
    let mut changed_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage("--format needs `text` or `json`"),
            },
            "--show-allowed" => show_allowed = true,
            "--changed-only" => changed_only = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match sketchtree_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage("no workspace root found; pass --root"),
            }
        }
    };

    let report = if changed_only {
        let changed = match git_changed_files(&root) {
            Ok(c) => c,
            Err(e) => return usage(&format!("--changed-only: {e}")),
        };
        sketchtree_lint::analyze_workspace_filtered(&root, &|rel| changed.contains(rel))
    } else {
        sketchtree_lint::analyze_workspace(&root)
    };
    match format {
        Format::Text => print!("{}", report.to_text(show_allowed)),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace-relative paths `git` reports as modified since `HEAD`,
/// plus untracked files — the set a pre-commit run cares about.
fn git_changed_files(root: &std::path::Path) -> Result<BTreeSet<String>, String> {
    let mut out = BTreeSet::new();
    for extra in [&["diff", "--name-only", "HEAD"][..], &["ls-files", "--others", "--exclude-standard"][..]] {
        let cmd = Command::new("git")
            .arg("-C")
            .arg(root)
            .args(extra)
            .output()
            .map_err(|e| format!("failed to run git: {e}"))?;
        if !cmd.status.success() {
            return Err(format!(
                "git {} failed: {}",
                extra.join(" "),
                String::from_utf8_lossy(&cmd.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&cmd.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(out)
}

enum Format {
    Text,
    Json,
}

const USAGE: &str =
    "usage: sketchtree-lint [--root PATH] [--format text|json] [--show-allowed] [--changed-only]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("sketchtree-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
