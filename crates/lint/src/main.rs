//! The `sketchtree-lint` binary: run the workspace analyzer and print a
//! report.
//!
//! ```text
//! sketchtree-lint [--root PATH] [--format text|json] [--show-allowed]
//! ```
//!
//! Exit status: 0 when the gate passes (zero undocumented findings),
//! 1 when it fails, 2 on usage errors.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut show_allowed = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage("--format needs `text` or `json`"),
            },
            "--show-allowed" => show_allowed = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match sketchtree_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage("no workspace root found; pass --root"),
            }
        }
    };

    let report = sketchtree_lint::analyze_workspace(&root);
    match format {
        Format::Text => print!("{}", report.to_text(show_allowed)),
        Format::Json => print!("{}", report.to_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Text,
    Json,
}

const USAGE: &str = "usage: sketchtree-lint [--root PATH] [--format text|json] [--show-allowed]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("sketchtree-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
