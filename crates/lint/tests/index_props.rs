//! Property-based tests for the workspace index builder.
//!
//! Stage two's soundness rests on the index's structural invariants:
//! function bodies are well-formed token ranges, every recorded call,
//! acquisition and guard span lands inside its owning body, and call
//! resolution only ever returns real function indices.  These
//! properties pin all of that on arbitrary and on generated-but-
//! plausible source, so a lexer or scanner change cannot silently
//! corrupt the graph the L6–L8 passes walk.

use proptest::prelude::*;
use sketchtree_lint::index::WorkspaceIndex;
use sketchtree_lint::source::SourceFile;

/// Arbitrary source-ish text, same alphabet the lexer properties use.
fn arb_source() -> impl Strategy<Value = String> {
    "[ -~\n\t]{0,300}"
}

/// A generated-but-plausible impl block: named methods that acquire
/// named locks, call each other, and sometimes bump an epoch.
fn arb_impl_source() -> impl Strategy<Value = String> {
    let lock = prop_oneof![Just("alpha"), Just("beta"), Just("gamma")];
    let meth = prop_oneof![Just("lock"), Just("read"), Just("write")];
    let body = (lock, meth, any::<bool>(), any::<bool>()).prop_map(
        |(lock, meth, call_helper, bump)| {
            let mut b = format!("let g = self.{lock}.{meth}().unwrap_or_else(|e| e.into_inner()); ");
            if call_helper {
                b.push_str("self.helper(); ");
            }
            if bump {
                b.push_str("self.epoch += 1; ");
            }
            b
        },
    );
    prop::collection::vec(body, 1..5).prop_map(|bodies| {
        let mut src = String::from("impl T { fn helper(&self) { self.x(); } ");
        for (i, b) in bodies.iter().enumerate() {
            src.push_str(&format!("fn m{i}(&mut self) {{ {b} }} "));
        }
        src.push('}');
        src
    })
}

/// Checks every structural invariant of one built index.
fn assert_invariants(files: &[SourceFile], index: &WorkspaceIndex) {
    assert_eq!(index.hash_names.len(), files.len());
    for f in &index.fns {
        assert!(f.file < files.len(), "file index out of range");
        let ntok = files[f.file].tokens.len();
        assert!(f.body.start <= f.body.end, "inverted body range");
        assert!(f.body.end <= ntok, "body range past the token stream");
        for c in &f.calls {
            assert!(f.body.contains(&c.tok), "call site outside its body");
            assert!(!c.name.is_empty(), "unnamed call site");
        }
        for a in &f.acqs {
            assert!(f.body.contains(&a.tok), "acquisition outside its body");
            assert!(a.span.start <= a.span.end, "inverted guard span");
            // Guard spans are clipped to the body that owns them.
            assert!(a.span.start >= f.body.start && a.span.end <= f.body.end,
                "guard span escapes its body");
            assert!(!a.lock.is_empty(), "unnamed lock");
        }
        for c in &f.calls {
            if let Some(gi) = index.resolve_call(c, f) {
                assert!(gi < index.fns.len(), "resolved call out of range");
                assert_eq!(index.fns[gi].name, c.name, "resolved to a different name");
            }
        }
    }
    // The name table is consistent with the function list.
    for (name, idxs) in &index.fns_by_name {
        for &i in idxs {
            assert_eq!(&index.fns[i].name, name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The index builder never panics and upholds its structural
    /// invariants on arbitrary bytes.
    #[test]
    fn index_invariants_hold_on_arbitrary_source(src in arb_source()) {
        let files = vec![SourceFile::parse("crates/a/src/x.rs", &src)];
        let index = WorkspaceIndex::build(&files);
        assert_invariants(&files, &index);
    }

    /// Same invariants on generated lock-and-call heavy impl blocks —
    /// the shapes the workspace passes actually consume.
    #[test]
    fn index_invariants_hold_on_generated_impls(
        a in arb_impl_source(),
        b in arb_impl_source(),
    ) {
        let files = vec![
            SourceFile::parse("crates/a/src/x.rs", &a),
            SourceFile::parse("crates/b/src/y.rs", &b),
        ];
        let index = WorkspaceIndex::build(&files);
        assert_invariants(&files, &index);
        // Every generated method was found: 1 helper + n bodies per file.
        assert!(index.fns.len() >= 4, "scanner dropped functions: {index:?}");
    }

    /// Building twice from the same sources yields the same index — the
    /// determinism the stable-sorted report output depends on.
    #[test]
    fn index_build_is_deterministic(a in arb_impl_source(), b in arb_source()) {
        let files = vec![
            SourceFile::parse("crates/a/src/x.rs", &a),
            SourceFile::parse("crates/b/src/y.rs", &b),
        ];
        let once = format!("{:?}", WorkspaceIndex::build(&files));
        let twice = format!("{:?}", WorkspaceIndex::build(&files));
        prop_assert_eq!(once, twice);
    }
}
