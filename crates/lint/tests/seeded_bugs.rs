//! Seeded-bug self-tests: every rule must FIRE on a planted violation.
//!
//! A static analyzer that silently stops matching is worse than none at
//! all — the gate would keep passing while the codebase regresses.  Each
//! test here plants a known violation in a synthetic file placed inside
//! the relevant pass's scope and asserts the expected rule reports it;
//! the negative tests pin the escape hatches (test code, documented
//! allow markers) so they cannot silently widen.

use sketchtree_lint::passes::default_passes;
use sketchtree_lint::report::Report;
use sketchtree_lint::source::SourceFile;
use sketchtree_lint::{analyze_file, analyze_sources};

/// Runs the default passes over one synthetic file.
fn analyze(rel: &str, src: &str) -> Report {
    let file = SourceFile::parse(rel, src);
    let mut report = Report::default();
    analyze_file(&file, &default_passes(), &mut report);
    report
}

/// Runs the FULL analyzer — both stages, index and all — over a
/// synthetic workspace.
fn analyze_ws(files: &[(&str, &str)], docs: &[(&str, &str)]) -> Report {
    let files = files.iter().map(|(r, s)| SourceFile::parse(r, s)).collect();
    let docs = docs.iter().map(|(r, s)| (r.to_string(), s.to_string())).collect();
    analyze_sources(files, docs, &|_| true)
}

fn undocumented_rules(report: &Report) -> Vec<&'static str> {
    report.undocumented().map(|f| f.rule).collect()
}

#[test]
fn l1_fires_on_unwrap_expect_and_indexing() {
    let report = analyze(
        "crates/sketch/src/seeded.rs",
        "fn f(v: &[u64]) -> u64 { let a = v.first().unwrap(); let b = v.iter().next().expect(\"x\"); a + b + v[0] }",
    );
    let rules = undocumented_rules(&report);
    assert_eq!(rules.iter().filter(|r| **r == "L1").count(), 3, "{report:?}");
}

#[test]
fn l1_fires_on_panic_macros() {
    let report = analyze(
        "crates/server/src/seeded.rs",
        "fn f(x: u32) { if x > 3 { panic!(\"no\"); } else { unreachable!() } }",
    );
    let rules = undocumented_rules(&report);
    assert_eq!(rules.iter().filter(|r| **r == "L1").count(), 2, "{report:?}");
}

#[test]
fn l2_fires_on_narrowing_cast_in_codec() {
    let report = analyze(
        "crates/server/src/wire.rs",
        "fn f(n: u64) -> u32 { n as u32 }",
    );
    assert_eq!(undocumented_rules(&report), vec!["L2"], "{report:?}");
}

#[test]
fn l3_fires_on_compound_and_bare_update_arithmetic() {
    let report = analyze(
        "crates/sketch/src/seeded.rs",
        "impl S { fn bump(&mut self) { self.n += 1; } fn update(&mut self, d: i64) { self.x = self.x + d; } }",
    );
    let rules = undocumented_rules(&report);
    assert_eq!(rules.iter().filter(|r| **r == "L3").count(), 2, "{report:?}");
}

#[test]
fn l4_fires_on_guard_held_reacquisition() {
    let report = analyze(
        "crates/server/src/seeded.rs",
        "fn f(&self) { let g = self.inner.read(); let h = self.inner.write(); }",
    );
    assert!(
        undocumented_rules(&report).contains(&"L4"),
        "{report:?}"
    );
}

#[test]
fn l4_fires_on_io_under_lock_in_server() {
    let report = analyze(
        "crates/server/src/server.rs",
        "fn f(&self) { let g = self.ck.lock(); fs::write(p, b).ok(); }",
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L4" && f.message.contains("fs::write")),
        "{report:?}"
    );
}

#[test]
fn l5_fires_on_opcode_missing_from_decode() {
    let report = analyze(
        "crates/server/src/wire.rs",
        "pub const K_PING: u8 = 1;\npub const K_PONG: u8 = 2;\n\
         fn kind() -> u8 { K_PING ^ K_PONG }\n\
         fn decode(k: u8) -> bool { k == K_PONG }",
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L5" && f.message.contains("K_PING")),
        "{report:?}"
    );
}

#[test]
fn test_code_is_exempt() {
    let report = analyze(
        "crates/sketch/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    fn f(v: &[u64]) -> u64 { v[0] + v.first().unwrap() }\n}",
    );
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.findings.len(), 0, "test code must produce nothing");
}

#[test]
fn reasoned_allow_suppresses_but_is_recorded() {
    let marker = "lint:allow(L1, reason = \"seeded self-test\")";
    let src = format!("fn f(v: &[u64]) -> u64 {{\n    // {marker}\n    v[0]\n}}");
    let report = analyze("crates/sketch/src/seeded.rs", &src);
    assert!(report.is_clean(), "{report:?}");
    let allowed: Vec<_> = report.allowed().collect();
    assert_eq!(allowed.len(), 1, "{report:?}");
    assert_eq!(allowed[0].rule, "L1");
    assert_eq!(allowed[0].allowed.as_deref(), Some("seeded self-test"));
}

#[test]
fn reasonless_allow_suppresses_nothing_and_is_itself_flagged() {
    let marker = "lint:allow(L1)";
    let src = format!("fn f(v: &[u64]) -> u64 {{\n    // {marker}\n    v[0]\n}}");
    let report = analyze("crates/sketch/src/seeded.rs", &src);
    let rules = undocumented_rules(&report);
    assert!(rules.contains(&"A0"), "reasonless marker not flagged: {report:?}");
    assert!(rules.contains(&"L1"), "reasonless marker suppressed a finding: {report:?}");
}

#[test]
fn allow_for_wrong_rule_does_not_suppress() {
    let marker = "lint:allow(L2, reason = \"wrong rule on purpose\")";
    let src = format!("fn f(v: &[u64]) -> u64 {{\n    // {marker}\n    v[0]\n}}");
    let report = analyze("crates/sketch/src/seeded.rs", &src);
    assert!(
        undocumented_rules(&report).contains(&"L1"),
        "an L2 marker must not excuse an L1 finding: {report:?}"
    );
}

// ---- workspace passes (stage two) ------------------------------------

#[test]
fn l6_fires_on_a_seeded_cross_file_lock_cycle() {
    let report = analyze_ws(
        &[
            (
                "crates/a/src/x.rs",
                "impl A { fn f(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); } }",
            ),
            (
                "crates/b/src/y.rs",
                "impl A { fn r(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); } }",
            ),
        ],
        &[],
    );
    let cycles: Vec<_> = report
        .undocumented()
        .filter(|f| f.rule == "L6" && f.message.contains("cycle"))
        .collect();
    assert_eq!(cycles.len(), 2, "both edges must report the cycle: {report:?}");
}

#[test]
fn l6_fires_on_guard_held_reacquisition_through_a_helper() {
    let report = analyze_ws(
        &[(
            "crates/a/src/x.rs",
            "impl A { fn lock_t(&self) -> MutexGuard<'_, T> { self.t.lock().unwrap_or_else(E::into_inner) } \
             fn f(&self) { let g = self.lock_t(); self.lock_t(); } }",
        )],
        &[],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L6" && f.message.contains("re-acquire")),
        "{report:?}"
    );
}

#[test]
fn l7_fires_on_seeded_io_under_a_held_guard() {
    let report = analyze_ws(
        &[(
            "crates/server/src/seeded.rs",
            "fn save(m: &Mutex<T>) { let g = m.lock().unwrap_or_else(|e| e.into_inner()); fs::write(p, b).ok(); }",
        )],
        &[],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L7" && f.message.contains("fs::write")),
        "{report:?}"
    );
}

#[test]
fn l7_fires_one_helper_call_below_the_acquisition() {
    let report = analyze_ws(
        &[(
            "crates/server/src/seeded.rs",
            "impl C { fn save(&self) { let g = self.ck.lock(); self.persist_now(); } \
             fn persist_now(&self) { fs::write(p, b).ok(); } }",
        )],
        &[],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L7" && f.message.contains("persist_now")),
        "{report:?}"
    );
}

#[test]
fn l8_fires_on_a_seeded_mutation_that_skips_the_epoch_bump() {
    let report = analyze_ws(
        &[(
            "crates/core/src/sketchtree.rs",
            "impl SketchTree { fn sneak(&mut self, v: u64) { self.synopsis.insert(v); } }",
        )],
        &[],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L8" && f.message.contains("without bumping")),
        "{report:?}"
    );
}

#[test]
fn l8_is_satisfied_by_a_bump_two_calls_down() {
    let report = analyze_ws(
        &[
            (
                "crates/core/src/concurrent.rs",
                "impl Shared { fn batch(&self, t: &[Tree]) { self.inner.write().ingest_precomputed_batch(t); } }",
            ),
            (
                "crates/core/src/sketchtree.rs",
                "impl SketchTree { fn ingest_precomputed_batch(&mut self, t: &[Tree]) { self.apply(t); } \
                 fn apply(&mut self, t: &[Tree]) { self.synopsis.note_inserted(t.len() as u64); self.epoch += 1; } }",
            ),
        ],
        &[],
    );
    assert!(
        !report.undocumented().any(|f| f.rule == "L8"),
        "transitive bump must satisfy: {report:?}"
    );
}

#[test]
fn l8_fires_on_a_wal_replay_that_skips_the_epoch_bump() {
    // Recovery replay mutating sketch state through a non-bumping
    // mutator would poison every epoch-keyed cache from the first
    // post-restart request.
    let report = analyze_ws(
        &[(
            "crates/server/src/durability.rs",
            "fn replay_batch(st: &mut SketchTree, t: &[Tree]) { for x in t { st.ingest_precomputed(x); } }",
        )],
        &[],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L8" && f.message.contains("without bumping")),
        "{report:?}"
    );
}

#[test]
fn l8_fires_on_hash_iteration_feeding_a_snapshot() {
    let report = analyze_ws(
        &[(
            "crates/core/src/snapshot.rs",
            "struct S { parts: HashMap<u64, P> } impl S { fn encode(&self) -> Vec<u8> { \
             self.parts.iter().flat_map(|(_, p)| p.bytes()).collect() } }",
        )],
        &[],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L8" && f.message.contains("hash order")),
        "{report:?}"
    );
}

const SEEDED_WIRE: &str = "pub(crate) const K_PING: u8 = 0x01;\nconst K_STATS_REPLY: u8 = 0x84;\n";
const SEEDED_WDOC: &str =
    "| Opcode | Name | Payload |\n|---|---|---|\n| 0x01 | Ping | empty |\n| 0x84 | Stats | counts |\n";
const SEEDED_MET: &str = "fn wire(r: &Registry) { r.counter(\"sktp_frames_total\", \"h\"); }\n";
const SEEDED_ODOC: &str = "| Metric | Type |\n|---|---|\n| `sktp_frames_total` | counter |\n";

#[test]
fn l9_is_clean_when_docs_and_code_agree() {
    let report = analyze_ws(
        &[
            ("crates/server/src/wire.rs", SEEDED_WIRE),
            ("crates/server/src/metrics.rs", SEEDED_MET),
        ],
        &[
            ("docs/wire-protocol.md", SEEDED_WDOC),
            ("docs/observability.md", SEEDED_ODOC),
        ],
    );
    assert!(
        !report.undocumented().any(|f| f.rule == "L9"),
        "{report:?}"
    );
}

#[test]
fn l9_fires_when_an_opcode_const_loses_its_doc_row() {
    // The acceptance drill: delete a row from the opcode table and the
    // gate must fail, anchored at the now-undocumented constant.
    let wdoc = "| Opcode | Name | Payload |\n|---|---|---|\n| 0x01 | Ping | empty |\n";
    let report = analyze_ws(
        &[
            ("crates/server/src/wire.rs", SEEDED_WIRE),
            ("crates/server/src/metrics.rs", SEEDED_MET),
        ],
        &[
            ("docs/wire-protocol.md", wdoc),
            ("docs/observability.md", SEEDED_ODOC),
        ],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L9"
                && f.file.ends_with("wire.rs")
                && f.message.contains("K_STATS_REPLY")),
        "{report:?}"
    );
}

#[test]
fn l9_doc_anchored_findings_cannot_be_allowed() {
    // A documented opcode with no constant anchors at the doc file —
    // which has no token stream to carry a marker, so the finding is
    // structurally unallowable.
    let wdoc = format!("{SEEDED_WDOC}| 0x0E | Evict | key |\n");
    let report = analyze_ws(
        &[
            ("crates/server/src/wire.rs", SEEDED_WIRE),
            ("crates/server/src/metrics.rs", SEEDED_MET),
        ],
        &[
            ("docs/wire-protocol.md", &wdoc),
            ("docs/observability.md", SEEDED_ODOC),
        ],
    );
    let doc_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "L9" && f.file == "docs/wire-protocol.md")
        .collect();
    assert_eq!(doc_findings.len(), 1, "{report:?}");
    assert!(doc_findings[0].allowed.is_none());
    assert!(!report.is_clean());
}

#[test]
fn l9_fires_when_a_metric_table_row_is_removed() {
    let odoc = "| Metric | Type |\n|---|---|\n";
    let report = analyze_ws(
        &[
            ("crates/server/src/wire.rs", SEEDED_WIRE),
            ("crates/server/src/metrics.rs", SEEDED_MET),
        ],
        &[
            ("docs/wire-protocol.md", SEEDED_WDOC),
            ("docs/observability.md", odoc),
        ],
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L9" && f.message.contains("sktp_frames_total")),
        "{report:?}"
    );
}

#[test]
fn workspace_findings_honor_reasoned_allow_markers() {
    let src = "impl A { fn lock_t(&self) -> MutexGuard<'_, T> { self.t.lock().unwrap_or_else(E::into_inner) } \
               fn f(&self) { let g = self.lock_t();\n\
               // lint:allow(L6, reason = \"seeded workspace self-test\")\n\
               self.lock_t(); } }";
    let report = analyze_ws(&[("crates/a/src/x.rs", src)], &[]);
    assert!(
        !report.undocumented().any(|f| f.rule == "L6"),
        "reasoned marker must excuse the workspace finding: {report:?}"
    );
    assert!(
        report.allowed().any(|f| f.rule == "L6"),
        "the excused finding is still recorded: {report:?}"
    );
}

#[test]
fn out_of_scope_files_are_untouched() {
    // The datagen crate is outside every pass's scope: the same seeded
    // violations produce nothing there.
    let report = analyze(
        "crates/datagen/src/seeded.rs",
        "fn f(v: &[u64], n: u64) -> u32 { v[0].unwrap(); n as u32 }",
    );
    assert!(report.is_clean(), "{report:?}");
}
