//! Seeded-bug self-tests: every rule must FIRE on a planted violation.
//!
//! A static analyzer that silently stops matching is worse than none at
//! all — the gate would keep passing while the codebase regresses.  Each
//! test here plants a known violation in a synthetic file placed inside
//! the relevant pass's scope and asserts the expected rule reports it;
//! the negative tests pin the escape hatches (test code, documented
//! allow markers) so they cannot silently widen.

use sketchtree_lint::passes::default_passes;
use sketchtree_lint::report::Report;
use sketchtree_lint::source::SourceFile;
use sketchtree_lint::analyze_file;

/// Runs the default passes over one synthetic file.
fn analyze(rel: &str, src: &str) -> Report {
    let file = SourceFile::parse(rel, src);
    let mut report = Report::default();
    analyze_file(&file, &default_passes(), &mut report);
    report
}

fn undocumented_rules(report: &Report) -> Vec<&'static str> {
    report.undocumented().map(|f| f.rule).collect()
}

#[test]
fn l1_fires_on_unwrap_expect_and_indexing() {
    let report = analyze(
        "crates/sketch/src/seeded.rs",
        "fn f(v: &[u64]) -> u64 { let a = v.first().unwrap(); let b = v.iter().next().expect(\"x\"); a + b + v[0] }",
    );
    let rules = undocumented_rules(&report);
    assert_eq!(rules.iter().filter(|r| **r == "L1").count(), 3, "{report:?}");
}

#[test]
fn l1_fires_on_panic_macros() {
    let report = analyze(
        "crates/server/src/seeded.rs",
        "fn f(x: u32) { if x > 3 { panic!(\"no\"); } else { unreachable!() } }",
    );
    let rules = undocumented_rules(&report);
    assert_eq!(rules.iter().filter(|r| **r == "L1").count(), 2, "{report:?}");
}

#[test]
fn l2_fires_on_narrowing_cast_in_codec() {
    let report = analyze(
        "crates/server/src/wire.rs",
        "fn f(n: u64) -> u32 { n as u32 }",
    );
    assert_eq!(undocumented_rules(&report), vec!["L2"], "{report:?}");
}

#[test]
fn l3_fires_on_compound_and_bare_update_arithmetic() {
    let report = analyze(
        "crates/sketch/src/seeded.rs",
        "impl S { fn bump(&mut self) { self.n += 1; } fn update(&mut self, d: i64) { self.x = self.x + d; } }",
    );
    let rules = undocumented_rules(&report);
    assert_eq!(rules.iter().filter(|r| **r == "L3").count(), 2, "{report:?}");
}

#[test]
fn l4_fires_on_guard_held_reacquisition() {
    let report = analyze(
        "crates/server/src/seeded.rs",
        "fn f(&self) { let g = self.inner.read(); let h = self.inner.write(); }",
    );
    assert!(
        undocumented_rules(&report).contains(&"L4"),
        "{report:?}"
    );
}

#[test]
fn l4_fires_on_io_under_lock_in_server() {
    let report = analyze(
        "crates/server/src/server.rs",
        "fn f(&self) { let g = self.ck.lock(); fs::write(p, b).ok(); }",
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L4" && f.message.contains("fs::write")),
        "{report:?}"
    );
}

#[test]
fn l5_fires_on_opcode_missing_from_decode() {
    let report = analyze(
        "crates/server/src/wire.rs",
        "pub const K_PING: u8 = 1;\npub const K_PONG: u8 = 2;\n\
         fn kind() -> u8 { K_PING ^ K_PONG }\n\
         fn decode(k: u8) -> bool { k == K_PONG }",
    );
    assert!(
        report
            .undocumented()
            .any(|f| f.rule == "L5" && f.message.contains("K_PING")),
        "{report:?}"
    );
}

#[test]
fn test_code_is_exempt() {
    let report = analyze(
        "crates/sketch/src/seeded.rs",
        "#[cfg(test)]\nmod tests {\n    fn f(v: &[u64]) -> u64 { v[0] + v.first().unwrap() }\n}",
    );
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.findings.len(), 0, "test code must produce nothing");
}

#[test]
fn reasoned_allow_suppresses_but_is_recorded() {
    let marker = "lint:allow(L1, reason = \"seeded self-test\")";
    let src = format!("fn f(v: &[u64]) -> u64 {{\n    // {marker}\n    v[0]\n}}");
    let report = analyze("crates/sketch/src/seeded.rs", &src);
    assert!(report.is_clean(), "{report:?}");
    let allowed: Vec<_> = report.allowed().collect();
    assert_eq!(allowed.len(), 1, "{report:?}");
    assert_eq!(allowed[0].rule, "L1");
    assert_eq!(allowed[0].allowed.as_deref(), Some("seeded self-test"));
}

#[test]
fn reasonless_allow_suppresses_nothing_and_is_itself_flagged() {
    let marker = "lint:allow(L1)";
    let src = format!("fn f(v: &[u64]) -> u64 {{\n    // {marker}\n    v[0]\n}}");
    let report = analyze("crates/sketch/src/seeded.rs", &src);
    let rules = undocumented_rules(&report);
    assert!(rules.contains(&"A0"), "reasonless marker not flagged: {report:?}");
    assert!(rules.contains(&"L1"), "reasonless marker suppressed a finding: {report:?}");
}

#[test]
fn allow_for_wrong_rule_does_not_suppress() {
    let marker = "lint:allow(L2, reason = \"wrong rule on purpose\")";
    let src = format!("fn f(v: &[u64]) -> u64 {{\n    // {marker}\n    v[0]\n}}");
    let report = analyze("crates/sketch/src/seeded.rs", &src);
    assert!(
        undocumented_rules(&report).contains(&"L1"),
        "an L2 marker must not excuse an L1 finding: {report:?}"
    );
}

#[test]
fn out_of_scope_files_are_untouched() {
    // The datagen crate is outside every pass's scope: the same seeded
    // violations produce nothing there.
    let report = analyze(
        "crates/datagen/src/seeded.rs",
        "fn f(v: &[u64], n: u64) -> u32 { v[0].unwrap(); n as u32 }",
    );
    assert!(report.is_clean(), "{report:?}");
}
