//! Property-based tests for the analyzer's Rust lexer.
//!
//! The passes are only as sound as the token stream: a string literal
//! that leaks punctuation, a comment that swallows code, or a span that
//! drifts off the source would silently corrupt every rule.  These
//! properties pin the load-bearing invariants on arbitrary input.

use proptest::prelude::*;
use sketchtree_lint::lexer::{lex, TokenKind};

/// Source-ish text: printable characters including quotes, braces and
/// comment starters, so the tricky lexer states all get exercised.
fn arb_source() -> impl Strategy<Value = String> {
    "[ -~\n\t]{0,200}"
}

/// String-literal / comment innards with no `"`, `\`, `*` or `/` — their
/// lexed form is fully predictable (no escapes, no comment delimiters).
fn arb_plain_inner() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 +(){}\\[\\].!#&|;:<>=-]{0,40}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics, whatever bytes come in.
    #[test]
    fn lex_never_panics(src in arb_source()) {
        let _ = lex(&src);
    }

    /// Every token's span points at exactly its own text, tokens are
    /// ordered, non-overlapping, and line numbers never decrease — the
    /// invariants the pass framework and allow-matching rely on.
    #[test]
    fn spans_are_exact_ordered_and_in_bounds(src in arb_source()) {
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        let mut prev_line = 1u32;
        for t in &tokens {
            prop_assert!(t.start >= prev_end, "overlapping tokens");
            prop_assert!(t.end <= src.len(), "span out of bounds");
            prop_assert_eq!(src.get(t.start..t.end), Some(t.text.as_str()));
            prop_assert!(t.line >= prev_line, "line numbers went backwards");
            prev_end = t.end;
            prev_line = t.line;
        }
    }

    /// A string literal lexes as ONE `Str` token: none of its contents
    /// leak out as idents or punctuation.
    #[test]
    fn string_contents_do_not_leak(inner in arb_plain_inner()) {
        let src = format!("fn f() {{ let s = \"{inner}\"; }}");
        let tokens = lex(&src);
        let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1, "src: {}", src);
        prop_assert_eq!(&strs[0].text, &format!("\"{inner}\""));
        // Exactly the surrounding structure remains as code tokens.
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["fn", "f", "let", "s"]);
    }

    /// Comment markers inside string literals stay inside the string:
    /// the lexer must not start a comment there, or allow markers could
    /// be smuggled in via string data.
    #[test]
    fn comment_starters_inside_strings_are_data(inner in arb_plain_inner()) {
        let src = format!("let a = \"// {inner}\"; let b = \"/* {inner} */\";");
        let tokens = lex(&src);
        prop_assert!(tokens.iter().all(|t| t.kind != TokenKind::LineComment
            && t.kind != TokenKind::BlockComment), "src: {}", src);
        prop_assert_eq!(tokens.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
    }

    /// Block comments nest: `/* /* … */ */` is one comment token at any
    /// depth, and the code around it survives.
    #[test]
    fn block_comments_nest(depth in 1usize..6, inner in arb_plain_inner()) {
        let mut body = inner.clone();
        for _ in 0..depth {
            body = format!("/* {body} */");
        }
        let src = format!("let x = 1; {body} let y = 2;");
        let tokens = lex(&src);
        let comments: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::BlockComment)
            .collect();
        prop_assert_eq!(comments.len(), 1, "src: {}", src);
        prop_assert_eq!(&comments[0].text, &body);
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["let", "x", "let", "y"]);
    }

    /// Concatenating token texts with the inter-token gaps reconstructs
    /// the source byte for byte — nothing is dropped or duplicated.
    #[test]
    fn tokens_plus_gaps_reconstruct_source(src in arb_source()) {
        let tokens = lex(&src);
        let mut rebuilt = String::new();
        let mut pos = 0usize;
        for t in &tokens {
            rebuilt.push_str(src.get(pos..t.start).unwrap_or(""));
            rebuilt.push_str(&t.text);
            pos = t.end;
        }
        rebuilt.push_str(src.get(pos..).unwrap_or(""));
        prop_assert_eq!(rebuilt, src);
    }
}
