//! Property-based tests for the hashing substrates.

use proptest::prelude::*;
use sketchtree_hash::{bignat::BigNat, gf2p64, gf2poly::Gf2Poly, m61, pairing, rabin::RabinFingerprinter};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- GF(2^64) field laws ----

    #[test]
    fn gf2p64_field_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(gf2p64::mul(a, b), gf2p64::mul(b, a));
        prop_assert_eq!(
            gf2p64::mul(gf2p64::mul(a, b), c),
            gf2p64::mul(a, gf2p64::mul(b, c))
        );
        prop_assert_eq!(
            gf2p64::mul(a, gf2p64::add(b, c)),
            gf2p64::add(gf2p64::mul(a, b), gf2p64::mul(a, c))
        );
        prop_assert_eq!(gf2p64::mul(a, 1), a);
    }

    #[test]
    fn gf2p64_inverse(a in 1u64..) {
        prop_assert_eq!(gf2p64::mul(a, gf2p64::inverse(a)), 1);
    }

    // ---- Mersenne-61 field vs u128 reference ----

    #[test]
    fn m61_mul_matches_reference(a in 0..m61::P, b in 0..m61::P) {
        let expect = ((u128::from(a) * u128::from(b)) % u128::from(m61::P)) as u64;
        prop_assert_eq!(m61::mul(a, b), expect);
    }

    #[test]
    fn m61_add_matches_reference(a in 0..m61::P, b in 0..m61::P) {
        let expect = ((u128::from(a) + u128::from(b)) % u128::from(m61::P)) as u64;
        prop_assert_eq!(m61::add(a, b), expect);
    }

    #[test]
    fn m61_reduce_matches_mod(x in any::<u64>()) {
        prop_assert_eq!(m61::reduce(x), x % m61::P);
    }

    // ---- GF(2) polynomials ----

    #[test]
    fn gf2poly_ring_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (pa, pb, pc) = (Gf2Poly::from_u64(a), Gf2Poly::from_u64(b), Gf2Poly::from_u64(c));
        prop_assert_eq!(pa.mul(&pb), pb.mul(&pa));
        prop_assert_eq!(pa.mul(&pb).mul(&pc), pa.mul(&pb.mul(&pc)));
        prop_assert_eq!(pa.mul(&pb.add(&pc)), pa.mul(&pb).add(&pa.mul(&pc)));
        prop_assert_eq!(pa.add(&pa), Gf2Poly::zero());
    }

    #[test]
    fn gf2poly_division_identity(a in any::<u64>(), b in any::<u64>(), m in 2u64..) {
        let pa = Gf2Poly::from_u64(a).mul(&Gf2Poly::from_u64(b));
        let pm = Gf2Poly::from_u64(m);
        let r = pa.rem(&pm);
        // deg r < deg m, and m | (a*b − r).
        prop_assert!(r.degree().unwrap_or(0) <= pm.degree().unwrap());
        if let (Some(rd), Some(md)) = (r.degree(), pm.degree()) {
            prop_assert!(rd < md);
        }
        prop_assert_eq!(pa.add(&r).rem(&pm), Gf2Poly::zero());
    }

    #[test]
    fn gf2poly_gcd_divides_both(a in 1u64.., b in 1u64..) {
        let (pa, pb) = (Gf2Poly::from_u64(a), Gf2Poly::from_u64(b));
        let g = pa.gcd(&pb);
        prop_assert_eq!(pa.rem(&g), Gf2Poly::zero());
        prop_assert_eq!(pb.rem(&g), Gf2Poly::zero());
    }

    // ---- Pairing functions ----

    #[test]
    fn pairing_roundtrip(x in 0u64..1_000_000, y in 0u64..1_000_000) {
        let z = pairing::pair2(&BigNat::from_u64(x), &BigNat::from_u64(y));
        let (rx, ry) = pairing::unpair2(&z);
        prop_assert_eq!(rx.to_u64(), Some(x));
        prop_assert_eq!(ry.to_u64(), Some(y));
    }

    #[test]
    fn pairing_tuple_injective_pairwise(
        a in prop::collection::vec(0u64..50, 3),
        b in prop::collection::vec(0u64..50, 3),
    ) {
        let pa = pairing::pair_tuple_u64(&a);
        let pb = pairing::pair_tuple_u64(&b);
        prop_assert_eq!(a == b, pa == pb);
    }

    // ---- BigNat arithmetic vs u128 reference ----

    #[test]
    fn bignat_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (na, nb) = (BigNat::from_u64(a), BigNat::from_u64(b));
        prop_assert_eq!(
            na.add(&nb).to_string(),
            (u128::from(a) + u128::from(b)).to_string()
        );
        prop_assert_eq!(
            na.mul(&nb).to_string(),
            (u128::from(a) * u128::from(b)).to_string()
        );
        if a >= b {
            prop_assert_eq!(na.sub(&nb).to_u64(), Some(a - b));
        }
    }

    #[test]
    fn bignat_isqrt_bounds(a in any::<u64>()) {
        let n = BigNat::from_u64(a);
        let r = n.isqrt();
        prop_assert!(r.mul(&r) <= n);
        let r1 = r.add(&BigNat::one());
        prop_assert!(r1.mul(&r1) > n);
    }

    #[test]
    fn bignat_divmod_identity(a in any::<u64>(), d in 1u64..) {
        let (na, nd) = (BigNat::from_u64(a), BigNat::from_u64(d));
        let q = na.div_floor(&nd);
        let r = na.rem_floor(&nd);
        prop_assert_eq!(q.to_u64(), Some(a / d));
        prop_assert_eq!(r.to_u64(), Some(a % d));
    }

    // ---- Rabin fingerprints ----

    #[test]
    fn rabin_deterministic_and_length_sensitive(
        seq in prop::collection::vec(any::<u64>(), 0..20),
        extra in any::<u64>(),
    ) {
        let f = RabinFingerprinter::new(31, 77);
        let a = f.fingerprint_symbols(&seq);
        prop_assert_eq!(a, f.fingerprint_symbols(&seq));
        let mut longer = seq.clone();
        longer.push(extra);
        // Extending a sequence must change the fingerprint (prefix-freedom
        // of the canonical initial state + LEB framing). Collisions are
        // possible in principle but vanishingly unlikely at 2^-31 per case;
        // treat equality as a bug signal.
        prop_assert_ne!(a, f.fingerprint_symbols(&longer));
    }

    #[test]
    fn rabin_respects_degree(degree in 8u32..=61, bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let f = RabinFingerprinter::new(degree, 3);
        prop_assert!(f.fingerprint_bytes(&bytes) < (1u64 << degree));
    }
}
