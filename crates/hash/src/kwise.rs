//! k-wise independent ±1 random variables — the ξ families of AMS sketches.
//!
//! The AMS sketch (paper Section 3) maintains `X = Σ f_i ξ_i` where the
//! `ξ_i ∈ {−1, +1}` are *four-wise independent*: any four distinct ξ's are
//! jointly uniform.  Four-wise independence is exactly what makes
//! `E[ξ_q X] = f_q` and `Var[ξ_q X] ≤ SJ(S)` hold (Equations 1–2).  The
//! query-expression estimators of paper Section 4 need higher independence:
//! a product term over m distinct patterns needs (2m+1)-wise independent ξ's
//! (Appendix B uses 5-wise for pairs).
//!
//! Two constructions are provided:
//!
//! * [`KWiseSign`] — evaluate a uniformly random polynomial of degree `k−1`
//!   over the field `Z_p` with the Mersenne prime `p = 2^61 − 1` (fast
//!   reduction; see [`crate::m61`]) and output the least-significant bit.
//!   Over a field, a random degree-(k−1) polynomial is an exactly k-wise
//!   independent uniform hash family; the low bit of a value uniform on
//!   `[0, p)` has bias `1/(2p) < 2^{-61}` — negligible against the
//!   `O(1/√s1)` estimation noise — and inherits the k-wise independence.
//!   Keys are reduced mod `p`; SketchTree's mapped values are < 2^61 by
//!   construction (fingerprint degree ≤ 61), so distinct values never
//!   alias.
//! * [`Bch4Sign`] — the original construction of Alon, Matias & Szegedy via
//!   parity-check matrices of binary BCH codes: `ξ_x = (−1)^{s0 ⊕ ⟨s1,x⟩ ⊕
//!   ⟨s2,x³⟩}` with `x³` computed in GF(2^64).  Kept both as a historical
//!   reference and as a cross-check in the test suite.

use crate::gf2p64;
use crate::m61;
use crate::splitmix::SplitMix64;

/// A ±1 sign family over 64-bit keys.
pub trait Sign {
    /// Returns `+1` or `−1` for the given key.
    fn sign(&self, key: u64) -> i64;

    /// Returns the sign as a boolean (`true` for −1), handy for branch-free
    /// accumulation.
    #[inline]
    fn is_negative(&self, key: u64) -> bool {
        self.sign(key) < 0
    }
}

/// Exactly k-wise independent ±1 variables from a random polynomial over
/// GF(2^64).
///
/// ```
/// use sketchtree_hash::{KWiseSign, Sign};
/// let xi = KWiseSign::from_seed(42, 4);
/// let s = xi.sign(12345);
/// assert!(s == 1 || s == -1);
/// assert_eq!(s, KWiseSign::from_seed(42, 4).sign(12345)); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseSign {
    /// Polynomial coefficients, constant term first. `coeffs.len() == k`.
    coeffs: Vec<u64>,
}

impl KWiseSign {
    /// Builds a k-wise independent family from a seed.
    ///
    /// `k` must be at least 2 (pairwise); AMS sketches use `k = 4`.
    ///
    /// # Panics
    /// Panics if `k < 2`.
    pub fn from_seed(seed: u64, k: usize) -> Self {
        assert!(k >= 2, "independence degree must be at least 2, got {k}");
        let mut rng = SplitMix64::new(seed);
        // A uniformly random polynomial over Z_p: all k coefficients
        // uniform in [0, p).  (A random polynomial of degree < k over a
        // field is k-wise independent even when high coefficients are zero:
        // the map coefficients → values-at-k-points is a bijection by
        // Lagrange interpolation.)  Rejection-sample the 61-bit range for
        // exact uniformity.
        let coeffs = (0..k)
            .map(|_| loop {
                let v = rng.next_u64() >> 3; // 61 bits
                if v < m61::P {
                    break v;
                }
            })
            .collect();
        Self { coeffs }
    }

    /// The independence degree k of this family.
    #[inline]
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// The polynomial coefficients over `Z_p`, constant term first.
    ///
    /// Exposed so callers that pack many families into one contiguous
    /// coefficient table (e.g. a sketch bank's ξ slab) can copy the exact
    /// coefficients this family evaluates — the signs then stay
    /// bit-identical to evaluating through [`Sign::sign`].
    #[inline]
    pub fn coefficients(&self) -> &[u64] {
        &self.coeffs
    }
}

impl Sign for KWiseSign {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        sign_from_coefficients(&self.coeffs, m61::reduce(key))
    }
}

/// The ±1 sign a coefficient slice (as returned by
/// [`KWiseSign::coefficients`]) assigns to an *already-reduced* key.
///
/// The caller applies [`m61::reduce`] once; hot loops that evaluate many
/// families against the same key reduce the key a single time instead of
/// once per family.  Evaluating through this function is bit-identical to
/// [`Sign::sign`] on the owning [`KWiseSign`].
#[inline]
pub fn sign_from_coefficients(coeffs: &[u64], reduced_key: u64) -> i64 {
    // Four coefficients (the default independence) get a fully unrolled
    // Horner chain — the ingest hot path evaluates hundreds of such
    // families per inserted value, and the unroll lets the compiler
    // schedule the four mul/add steps without loop-carried bookkeeping.
    // The operations and their order are exactly `m61::eval_poly`'s, so
    // the sign is bit-identical to the generic path.
    let v = if let [c0, c1, c2, c3] = *coeffs {
        let x = reduced_key;
        let acc = m61::add(m61::mul(0, x), c3);
        let acc = m61::add(m61::mul(acc, x), c2);
        let acc = m61::add(m61::mul(acc, x), c1);
        m61::add(m61::mul(acc, x), c0)
    } else {
        m61::eval_poly(coeffs, reduced_key)
    };
    1 - 2 * ((v & 1) as i64)
}

/// The classic AMS four-wise independent construction from BCH codes.
///
/// `ξ_x = (−1)^{s0 ⊕ parity(s1 & x) ⊕ parity(s2 & x³)}` where `x³` is the
/// cube of `x` in GF(2^64).  The vectors `(1, x, x³)` over GF(2^64) are the
/// columns of the parity-check matrix of the 2-error-correcting BCH code,
/// whose dual has minimum distance 5, which is precisely four-wise
/// independence of the sign family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bch4Sign {
    s0: bool,
    s1: u64,
    s2: u64,
}

impl Bch4Sign {
    /// Builds a four-wise independent BCH family from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        Self {
            s0: rng.next_u64() & 1 == 1,
            s1: rng.next_u64(),
            s2: rng.next_u64(),
        }
    }
}

#[inline]
fn parity64(v: u64) -> bool {
    v.count_ones() & 1 == 1
}

impl Sign for Bch4Sign {
    #[inline]
    fn sign(&self, key: u64) -> i64 {
        let cube = gf2p64::mul(gf2p64::square(key), key);
        let bit = self.s0 ^ parity64(self.s1 & key) ^ parity64(self.s2 & cube);
        if bit {
            -1
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_minus_one() {
        let xi = KWiseSign::from_seed(1, 4);
        let bch = Bch4Sign::from_seed(1);
        for key in 0..1000u64 {
            assert!(matches!(xi.sign(key), 1 | -1));
            assert!(matches!(bch.sign(key), 1 | -1));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = KWiseSign::from_seed(9, 6);
        let b = KWiseSign::from_seed(9, 6);
        for key in [0u64, 1, u64::MAX, 0xDEAD] {
            assert_eq!(a.sign(key), b.sign(key));
        }
    }

    #[test]
    fn different_seeds_give_different_families() {
        let a = KWiseSign::from_seed(1, 4);
        let b = KWiseSign::from_seed(2, 4);
        let agree = (0..256u64).filter(|&k| a.sign(k) == b.sign(k)).count();
        // Two independent families agree on ~half the keys; they must not be
        // identical or complementary.
        assert!(agree > 64 && agree < 192, "agree = {agree}");
    }

    /// Empirically check E[ξ] ≈ 0 for many independent seeds at a fixed key
    /// (the unbiasedness that makes the AMS estimator unbiased).
    #[test]
    fn empirical_mean_zero_over_seeds() {
        for key in [0u64, 7, 123_456_789] {
            let sum: i64 = (0..4000u64)
                .map(|s| KWiseSign::from_seed(s, 4).sign(key))
                .sum();
            assert!(sum.abs() < 250, "key {key}: biased sum {sum}");
        }
    }

    /// Empirically check pairwise decorrelation: E[ξ_a ξ_b] ≈ 0 over seeds.
    #[test]
    fn empirical_pairwise_decorrelation() {
        let pairs = [(1u64, 2u64), (0, u64::MAX), (100, 101)];
        for (a, b) in pairs {
            let sum: i64 = (0..4000u64)
                .map(|s| {
                    let xi = KWiseSign::from_seed(s, 4);
                    xi.sign(a) * xi.sign(b)
                })
                .sum();
            assert!(sum.abs() < 250, "({a},{b}): correlated sum {sum}");
        }
    }

    /// Empirically check 4-tuple decorrelation E[ξ_a ξ_b ξ_c ξ_d] ≈ 0,
    /// which is what the AMS variance bound actually uses.
    #[test]
    fn empirical_fourwise_decorrelation() {
        let sum: i64 = (0..4000u64)
            .map(|s| {
                let xi = KWiseSign::from_seed(s, 4);
                xi.sign(11) * xi.sign(22) * xi.sign(33) * xi.sign(44)
            })
            .sum();
        assert!(sum.abs() < 250, "correlated 4-tuple sum {sum}");
    }

    #[test]
    fn bch_empirical_fourwise() {
        let sum: i64 = (0..4000u64)
            .map(|s| {
                let xi = Bch4Sign::from_seed(s);
                xi.sign(3) * xi.sign(17) * xi.sign(1 << 40) * xi.sign(u64::MAX)
            })
            .sum();
        assert!(sum.abs() < 250, "BCH 4-tuple correlated: {sum}");
    }

    /// Exact exhaustive check of pairwise independence for a *small* field
    /// analogue is impractical here; instead verify the Lagrange argument's
    /// premise — evaluating the family at k distinct points as a function of
    /// the seed hits both signs for every point.
    #[test]
    fn every_key_sees_both_signs_across_seeds() {
        for key in [0u64, 1, 42, u64::MAX] {
            let mut saw_pos = false;
            let mut saw_neg = false;
            for s in 0..64u64 {
                match KWiseSign::from_seed(s, 4).sign(key) {
                    1 => saw_pos = true,
                    -1 => saw_neg = true,
                    _ => unreachable!(),
                }
            }
            assert!(saw_pos && saw_neg, "key {key} is degenerate");
        }
    }

    #[test]
    #[should_panic]
    fn k_below_two_rejected() {
        KWiseSign::from_seed(0, 1);
    }

    #[test]
    fn independence_reports_k() {
        assert_eq!(KWiseSign::from_seed(0, 7).independence(), 7);
    }
}
