//! Polynomials over GF(2) and random irreducible-polynomial generation.
//!
//! Paper Section 6.1 replaces the exact pairing function by Rabin
//! fingerprints: "an irreducible polynomial of large degree is chosen
//! uniformly at random … we chose irreducible polynomials of degree 31".
//! This module supplies the polynomial arithmetic that makes that possible:
//! arbitrary-degree GF(2) polynomials, Rabin's irreducibility test, and
//! rejection sampling of uniformly random irreducible polynomials.
//!
//! Representation: little-endian `u64` words, bit `i` of word `w` is the
//! coefficient of `x^(64w + i)`.  The vector is kept *normalized* (no
//! trailing zero words), so the zero polynomial is the empty vector.

use crate::splitmix::SplitMix64;

/// A polynomial over GF(2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Gf2Poly {
    words: Vec<u64>,
}

impl Gf2Poly {
    /// The zero polynomial.
    #[inline]
    pub fn zero() -> Self {
        Self { words: Vec::new() }
    }

    /// The constant polynomial `1`.
    #[inline]
    pub fn one() -> Self {
        Self { words: vec![1] }
    }

    /// The monomial `x`.
    #[inline]
    pub fn x() -> Self {
        Self { words: vec![2] }
    }

    /// Builds a polynomial from little-endian words (coefficient of `x^i` is
    /// bit `i`).
    pub fn from_words(words: Vec<u64>) -> Self {
        let mut p = Self { words };
        p.normalize();
        p
    }

    /// Builds a polynomial whose coefficients are the bits of `bits`
    /// (bit 0 = constant term).
    #[inline]
    pub fn from_u64(bits: u64) -> Self {
        Self::from_words(vec![bits])
    }

    /// Returns the coefficient bits as a `u64` if the degree is below 64.
    pub fn to_u64(&self) -> Option<u64> {
        match self.words.len() {
            0 => Some(0),
            1 => Some(self.words[0]),
            _ => None,
        }
    }

    /// `x^d`, the monomial of degree `d`.
    pub fn monomial(d: usize) -> Self {
        let mut words = vec![0u64; d / 64 + 1];
        words[d / 64] = 1u64 << (d % 64);
        Self { words }
    }

    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// True if this is the zero polynomial.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        let last = *self.words.last()?;
        Some((self.words.len() - 1) * 64 + (63 - last.leading_zeros() as usize))
    }

    /// Returns coefficient of `x^i`.
    pub fn coeff(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Polynomial addition (XOR of coefficient vectors).
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.words.len() >= other.words.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut words = long.words.clone();
        for (w, s) in words.iter_mut().zip(&short.words) {
            *w ^= s;
        }
        Self::from_words(words)
    }

    /// Multiplication by `x^k` (left shift by `k` bits).
    pub fn shl(&self, k: usize) -> Self {
        if self.is_zero() || k == 0 {
            let mut p = self.clone();
            if k > 0 {
                p = Self::from_words({
                    let mut w = vec![0u64; k / 64];
                    w.extend_from_slice(&p.words);
                    w
                });
            }
            return p;
        }
        let word_shift = k / 64;
        let bit_shift = k % 64;
        let mut words = vec![0u64; word_shift + self.words.len() + 1];
        for (i, &w) in self.words.iter().enumerate() {
            words[word_shift + i] |= w << bit_shift;
            if bit_shift > 0 {
                words[word_shift + i + 1] |= w >> (64 - bit_shift);
            }
        }
        Self::from_words(words)
    }

    /// Schoolbook polynomial multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut acc = vec![0u64; self.words.len() + other.words.len() + 1];
        for (i, &a) in self.words.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.words.iter().enumerate() {
                let prod = crate::gf2p64::clmul(a, b);
                acc[i + j] ^= prod as u64;
                acc[i + j + 1] ^= (prod >> 64) as u64;
            }
        }
        Self::from_words(acc)
    }

    /// Remainder of `self` divided by `modulus`.
    ///
    /// # Panics
    /// Panics if `modulus` is zero.
    pub fn rem(&self, modulus: &Self) -> Self {
        let md = modulus.degree().expect("division by the zero polynomial");
        let mut r = self.clone();
        while let Some(rd) = r.degree() {
            if rd < md {
                break;
            }
            r = r.add(&modulus.shl(rd - md));
        }
        r
    }

    /// `(self * other) mod modulus`.
    pub fn mulmod(&self, other: &Self, modulus: &Self) -> Self {
        self.mul(other).rem(modulus)
    }

    /// Greatest common divisor (monic by construction over GF(2)).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Computes `x^(2^n) mod self` by `n` repeated squarings.
    fn x_pow_pow2_mod(&self, n: usize) -> Self {
        let mut g = Gf2Poly::x().rem(self);
        for _ in 0..n {
            g = g.mulmod(&g.clone(), self);
        }
        g
    }

    /// Rabin's irreducibility test.
    ///
    /// A polynomial `f` of degree `n ≥ 1` over GF(2) is irreducible iff
    /// `x^(2^n) ≡ x (mod f)` and, for every prime divisor `p` of `n`,
    /// `gcd(x^(2^(n/p)) − x, f) = 1`.
    pub fn is_irreducible(&self) -> bool {
        let n = match self.degree() {
            None | Some(0) => return false,
            Some(n) => n,
        };
        // Constant term must be 1, otherwise x divides f (cheap early out).
        if !self.coeff(0) {
            return n == 1 && self.coeff(1); // f = x is irreducible
        }
        let x = Gf2Poly::x();
        // x^(2^n) mod f must equal x mod f.
        if self.x_pow_pow2_mod(n) != x.rem(self) {
            return false;
        }
        for p in prime_divisors(n) {
            let g = self.x_pow_pow2_mod(n / p).add(&x.rem(self));
            let gcd = self.gcd(&g);
            if gcd.degree() != Some(0) {
                return false;
            }
        }
        true
    }

    /// Samples a uniformly random irreducible polynomial of the given degree.
    ///
    /// Rejection sampling over random monic polynomials; by the prime
    /// polynomial theorem about 1 in `degree` candidates is irreducible, so
    /// this terminates quickly for the degrees SketchTree uses (31–61).
    ///
    /// # Panics
    /// Panics if `degree == 0`.
    pub fn random_irreducible(degree: usize, seed: u64) -> Self {
        assert!(degree >= 1, "irreducible polynomials have degree >= 1");
        let mut rng = SplitMix64::new(seed);
        loop {
            let nwords = degree / 64 + 1;
            let mut words: Vec<u64> = (0..nwords).map(|_| rng.next_u64()).collect();
            // Force degree exactly `degree` and a non-zero constant term
            // (both necessary conditions for irreducibility when degree>1).
            let top = degree % 64;
            words[nwords - 1] &= (1u64 << top) | ((1u64 << top) - 1);
            words[nwords - 1] |= 1u64 << top;
            if degree > 1 {
                words[0] |= 1;
            }
            let cand = Self::from_words(words);
            if cand.is_irreducible() {
                return cand;
            }
        }
    }
}

/// Distinct prime divisors of `n` by trial division (n is a polynomial
/// degree, so tiny).
fn prime_divisors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_degree() {
        assert_eq!(Gf2Poly::zero().degree(), None);
        assert_eq!(Gf2Poly::one().degree(), Some(0));
        assert_eq!(Gf2Poly::x().degree(), Some(1));
        assert_eq!(Gf2Poly::monomial(100).degree(), Some(100));
        assert_eq!(Gf2Poly::from_words(vec![5, 0, 0]).degree(), Some(2));
    }

    #[test]
    fn add_is_xor_and_self_inverse() {
        let a = Gf2Poly::from_u64(0b1011);
        let b = Gf2Poly::from_u64(0b0110);
        assert_eq!(a.add(&b), Gf2Poly::from_u64(0b1101));
        assert_eq!(a.add(&a), Gf2Poly::zero());
    }

    #[test]
    fn mul_matches_known_products() {
        // (x+1)^2 = x^2+1
        let xp1 = Gf2Poly::from_u64(0b11);
        assert_eq!(xp1.mul(&xp1), Gf2Poly::from_u64(0b101));
        // (x^2+x+1)(x+1) = x^3+1
        let a = Gf2Poly::from_u64(0b111);
        assert_eq!(a.mul(&xp1), Gf2Poly::from_u64(0b1001));
    }

    #[test]
    fn mul_crosses_word_boundaries() {
        let a = Gf2Poly::monomial(63);
        let b = Gf2Poly::monomial(63);
        assert_eq!(a.mul(&b), Gf2Poly::monomial(126));
    }

    #[test]
    fn shl_matches_monomial_mul() {
        let a = Gf2Poly::from_u64(0b1011);
        for k in [0usize, 1, 63, 64, 65, 130] {
            assert_eq!(a.shl(k), a.mul(&Gf2Poly::monomial(k)), "k={k}");
        }
    }

    #[test]
    fn rem_division_identity() {
        // For random-ish a, m: a = q*m + r is hard without q; check instead
        // that (a mod m) has degree < deg m and a + (a mod m) is divisible by m.
        let a = Gf2Poly::from_words(vec![0xDEAD_BEEF_CAFE_F00D, 0x1234_5678]);
        let m = Gf2Poly::from_u64(0x89); // x^7+x^3+1 (irreducible? unimportant)
        let r = a.rem(&m);
        assert!(r.degree().unwrap_or(0) < 7);
        let diff = a.add(&r);
        assert_eq!(diff.rem(&m), Gf2Poly::zero());
    }

    #[test]
    fn rem_by_larger_modulus_is_identity() {
        let a = Gf2Poly::from_u64(0b101);
        let m = Gf2Poly::monomial(10);
        assert_eq!(a.rem(&m), a);
    }

    #[test]
    #[should_panic]
    fn rem_by_zero_panics() {
        Gf2Poly::one().rem(&Gf2Poly::zero());
    }

    #[test]
    fn gcd_basics() {
        let a = Gf2Poly::from_u64(0b1001); // x^3+1 = (x+1)(x^2+x+1)
        let b = Gf2Poly::from_u64(0b11); // x+1
        assert_eq!(a.gcd(&b), b);
        let c = Gf2Poly::from_u64(0b111); // x^2+x+1, irreducible
        assert_eq!(c.gcd(&b).degree(), Some(0));
    }

    #[test]
    fn known_irreducibles_accepted() {
        // x^2+x+1, x^3+x+1, x^4+x+1, x^8+x^4+x^3+x+1 (AES), x^31+x^3+1
        for bits in [0b111u64, 0b1011, 0b10011, 0x11B, (1 << 31) | 0b1001] {
            assert!(
                Gf2Poly::from_u64(bits).is_irreducible(),
                "bits {bits:#x} should be irreducible"
            );
        }
    }

    #[test]
    fn known_reducibles_rejected() {
        // x^2+1 = (x+1)^2; x^4+x^2+1 = (x^2+x+1)^2; x^2 = x*x; x^3+1
        for bits in [0b101u64, 0b10101, 0b100, 0b1001] {
            assert!(
                !Gf2Poly::from_u64(bits).is_irreducible(),
                "bits {bits:#x} should be reducible"
            );
        }
    }

    #[test]
    fn constants_not_irreducible() {
        assert!(!Gf2Poly::zero().is_irreducible());
        assert!(!Gf2Poly::one().is_irreducible());
        assert!(Gf2Poly::x().is_irreducible()); // x is prime
        assert!(Gf2Poly::from_u64(0b11).is_irreducible()); // x+1
    }

    #[test]
    fn random_irreducible_has_requested_degree() {
        for degree in [5usize, 31, 61] {
            let p = Gf2Poly::random_irreducible(degree, 12345);
            assert_eq!(p.degree(), Some(degree));
            assert!(p.is_irreducible());
        }
    }

    #[test]
    fn random_irreducible_deterministic_per_seed() {
        assert_eq!(
            Gf2Poly::random_irreducible(31, 7),
            Gf2Poly::random_irreducible(31, 7)
        );
    }

    #[test]
    fn random_irreducible_varies_with_seed() {
        let a = Gf2Poly::random_irreducible(31, 1);
        let b = Gf2Poly::random_irreducible(31, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn prime_divisors_correct() {
        assert_eq!(prime_divisors(1), Vec::<usize>::new());
        assert_eq!(prime_divisors(2), vec![2]);
        assert_eq!(prime_divisors(12), vec![2, 3]);
        assert_eq!(prime_divisors(31), vec![31]);
        assert_eq!(prime_divisors(60), vec![2, 3, 5]);
    }

    #[test]
    fn to_u64_roundtrip() {
        assert_eq!(Gf2Poly::from_u64(0xABCD).to_u64(), Some(0xABCD));
        assert_eq!(Gf2Poly::monomial(100).to_u64(), None);
        assert_eq!(Gf2Poly::zero().to_u64(), Some(0));
    }

    #[test]
    fn coeff_reads_bits() {
        let p = Gf2Poly::monomial(70).add(&Gf2Poly::one());
        assert!(p.coeff(0));
        assert!(p.coeff(70));
        assert!(!p.coeff(35));
        assert!(!p.coeff(1000));
    }
}
