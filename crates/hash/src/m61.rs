//! Arithmetic modulo the Mersenne prime `p = 2^61 − 1`.
//!
//! The k-wise independent ξ families evaluate one random polynomial per
//! sketch per stream value — the single hottest operation in SketchTree's
//! update path (each pattern instance touches `s1 × s2` sketches).  Working
//! modulo a Mersenne prime keeps reduction to two shifts and adds on top of
//! a native 64×64→128 multiply, an order of magnitude faster than portable
//! carry-less GF(2^64) multiplication while still giving a true finite
//! field (so random polynomials remain *exactly* k-wise independent).

/// The Mersenne prime `2^61 − 1`.
pub const P: u64 = (1u64 << 61) - 1;

/// Reduces any `u64` into `[0, P)`.
#[inline]
pub fn reduce(x: u64) -> u64 {
    let r = (x & P) + (x >> 61);
    if r >= P {
        r - P
    } else {
        r
    }
}

/// Addition mod P (inputs must be `< P`).
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let s = a + b; // < 2^62, no overflow
    if s >= P {
        s - P
    } else {
        s
    }
}

/// Multiplication mod P (inputs must be `< P`).
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let x = u128::from(a) * u128::from(b); // < 2^122
    // Fold: x = hi·2^61 + lo ≡ hi + lo (mod 2^61 − 1).
    let lo = (x as u64) & P;
    let hi = (x >> 61) as u64; // < 2^61
    let s = lo + hi; // < 2^62
    reduce(s)
}

/// Evaluates `coeffs[0] + coeffs[1]·x + … ` at `x` by Horner's rule.
/// Coefficients and point must be `< P`.
#[inline]
pub fn eval_poly(coeffs: &[u64], x: u64) -> u64 {
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_range_and_fixed_points() {
        assert_eq!(reduce(0), 0);
        assert_eq!(reduce(P), 0);
        assert_eq!(reduce(P - 1), P - 1);
        assert_eq!(reduce(P + 5), 5);
        assert!(reduce(u64::MAX) < P);
        // u64::MAX = 2^64 - 1 = 8·(2^61 - 1) + 7 → 7 + ... let's verify by
        // direct modular arithmetic.
        assert_eq!(reduce(u64::MAX), (u64::MAX % P));
    }

    #[test]
    fn add_matches_u128_reference() {
        let vals = [0u64, 1, 2, P / 2, P - 1, P - 2];
        for &a in &vals {
            for &b in &vals {
                let expect = ((u128::from(a) + u128::from(b)) % u128::from(P)) as u64;
                assert_eq!(add(a, b), expect, "{a} + {b}");
            }
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let vals = [0u64, 1, 2, 3, 12345, P / 3, P - 1, P - 2, 1 << 60];
        for &a in &vals {
            for &b in &vals {
                let expect = ((u128::from(a) * u128::from(b)) % u128::from(P)) as u64;
                assert_eq!(mul(a, b), expect, "{a} * {b}");
            }
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(P-1) ≡ 1 for a ≢ 0: check with a few squarings-based powers.
        fn pow(mut a: u64, mut e: u64) -> u64 {
            let mut r = 1u64;
            while e > 0 {
                if e & 1 == 1 {
                    r = mul(r, a);
                }
                a = mul(a, a);
                e >>= 1;
            }
            r
        }
        for a in [2u64, 3, 12345, P - 2] {
            assert_eq!(pow(a, P - 1), 1, "a = {a}");
        }
    }

    #[test]
    fn eval_poly_matches_naive() {
        let coeffs = [7u64, 3, 999_999, P - 5];
        let x = 0xABCDEFu64;
        let mut naive = 0u64;
        let mut xp = 1u64;
        for &c in &coeffs {
            naive = add(naive, mul(c, xp));
            xp = mul(xp, x);
        }
        assert_eq!(eval_poly(&coeffs, x), naive);
        assert_eq!(eval_poly(&[], x), 0);
        assert_eq!(eval_poly(&[42], x), 42);
    }
}
