//! Exact Cantor pairing functions — the paper's reference mapping.
//!
//! Paper Section 2.2 maps tuples to single natural numbers with
//!
//! ```text
//! PF_2(x, y) = ½(x² + 2xy + y² + 3x + y)
//! PF_3(x, y, z) = PF_2(PF_2(x, y), z)
//! ```
//!
//! (the Cantor pairing polynomial, with `x` playing the "+x" role), extended
//! inductively to k-tuples.  The mapping is a bijection `ℕ² → ℕ`, so the
//! composition for tuples of a *fixed* length is injective; for tuples of
//! varying lengths the paper pads every tuple to the maximum length before
//! pairing (Section 2.3).  We implement both the forward map, the padding
//! convention, and the inverse (for property tests).
//!
//! All arithmetic is exact over [`BigNat`] — the values explode doubly
//! exponentially in tuple length, which is precisely why the production path
//! uses Rabin fingerprints instead ([`crate::rabin`]).

use crate::bignat::BigNat;

/// The paper's `PF_2`: `½(x² + 2xy + y² + 3x + y)` = `T(x+y) + x` where
/// `T(n) = n(n+1)/2` is the n-th triangular number.
pub fn pair2(x: &BigNat, y: &BigNat) -> BigNat {
    let s = x.add(y);
    let tri = s.mul(&s.add(&BigNat::one())).half();
    tri.add(x)
}

/// Inverse of [`pair2`]: recovers `(x, y)` from `z`.
///
/// Uses `w = ⌊(√(8z+1) − 1)/2⌋`, `t = w(w+1)/2`, `x = z − t`, `y = w − x`.
pub fn unpair2(z: &BigNat) -> (BigNat, BigNat) {
    let eight_z_plus_1 = z.shl(3).add(&BigNat::one());
    let w = eight_z_plus_1.isqrt().sub(&BigNat::one()).half();
    let t = w.mul(&w.add(&BigNat::one())).half();
    let x = z.sub(&t);
    let y = w.sub(&x);
    (x, y)
}

/// Pairs a k-tuple by left-folding `PF_2`:
/// `PF_k(x₁,…,x_k) = PF_2(PF_2(…PF_2(x₁,x₂)…), x_k)`.
///
/// Returns `x₁` unchanged for 1-tuples and zero for the empty tuple (the
/// empty tuple never occurs in SketchTree: patterns have at least one edge,
/// hence sequences of length ≥ 2).
pub fn pair_tuple(tuple: &[BigNat]) -> BigNat {
    let mut iter = tuple.iter();
    let first = match iter.next() {
        None => return BigNat::zero(),
        Some(f) => f.clone(),
    };
    iter.fold(first, |acc, x| pair2(&acc, x))
}

/// Convenience: pairs a tuple of `u64`s.
pub fn pair_tuple_u64(tuple: &[u64]) -> BigNat {
    let nats: Vec<BigNat> = tuple.iter().map(|&v| BigNat::from_u64(v)).collect();
    pair_tuple(&nats)
}

/// Pads `tuple` to `target_len` with `pad` and pairs it — the Section 2.3
/// convention that restores injectivity across tuple lengths.
///
/// The pad symbol must be chosen outside the value domain of real tuple
/// elements (SketchTree reserves symbol 0 for padding and shifts labels and
/// postorder numbers to start at 1).
///
/// # Panics
/// Panics if `tuple.len() > target_len`.
pub fn pair_padded_u64(tuple: &[u64], target_len: usize, pad: u64) -> BigNat {
    assert!(
        tuple.len() <= target_len,
        "tuple of length {} exceeds padding target {}",
        tuple.len(),
        target_len
    );
    let mut nats: Vec<BigNat> = tuple.iter().map(|&v| BigNat::from_u64(v)).collect();
    nats.resize(target_len, BigNat::from_u64(pad));
    pair_tuple(&nats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigNat {
        BigNat::from_u64(v)
    }

    #[test]
    fn pair2_matches_paper_formula() {
        // Direct evaluation of ½(x²+2xy+y²+3x+y) for small values.
        for x in 0..20u64 {
            for y in 0..20u64 {
                let direct = (x * x + 2 * x * y + y * y + 3 * x + y) / 2;
                assert_eq!(
                    pair2(&n(x), &n(y)).to_u64(),
                    Some(direct),
                    "x={x} y={y}"
                );
            }
        }
    }

    #[test]
    fn pair2_known_values() {
        assert_eq!(pair2(&n(0), &n(0)).to_u64(), Some(0));
        assert_eq!(pair2(&n(1), &n(0)).to_u64(), Some(2));
        assert_eq!(pair2(&n(0), &n(1)).to_u64(), Some(1));
        assert_eq!(pair2(&n(1), &n(1)).to_u64(), Some(4));
    }

    #[test]
    fn pair2_is_injective_on_grid() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..40u64 {
            for y in 0..40u64 {
                assert!(
                    seen.insert(pair2(&n(x), &n(y)).to_string()),
                    "collision at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn pair2_is_surjective_prefix() {
        // The first 40*40 pair codes cover 0..=some dense prefix; check the
        // first 500 naturals are all hit (Cantor pairing is a bijection).
        let mut seen = vec![false; 500];
        for x in 0..60u64 {
            for y in 0..60u64 {
                if let Some(v) = pair2(&n(x), &n(y)).to_u64() {
                    if (v as usize) < seen.len() {
                        seen[v as usize] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "pairing is not dense from 0");
    }

    #[test]
    fn unpair2_inverts_pair2() {
        for x in 0..30u64 {
            for y in 0..30u64 {
                let z = pair2(&n(x), &n(y));
                let (rx, ry) = unpair2(&z);
                assert_eq!((rx.to_u64(), ry.to_u64()), (Some(x), Some(y)));
            }
        }
    }

    #[test]
    fn unpair2_inverts_pair2_big() {
        let x = BigNat::one().shl(70);
        let y = BigNat::one().shl(65).add(&n(12345));
        let z = pair2(&x, &y);
        let (rx, ry) = unpair2(&z);
        assert_eq!(rx, x);
        assert_eq!(ry, y);
    }

    #[test]
    fn tuple_matches_inductive_definition() {
        // PF_3(x,y,z) = PF_2(PF_2(x,y),z)
        let (x, y, z) = (n(3), n(5), n(7));
        assert_eq!(
            pair_tuple(&[x.clone(), y.clone(), z.clone()]),
            pair2(&pair2(&x, &y), &z)
        );
    }

    #[test]
    fn tuple_edge_cases() {
        assert_eq!(pair_tuple(&[]), BigNat::zero());
        assert_eq!(pair_tuple(&[n(9)]), n(9));
    }

    #[test]
    fn tuple_u64_convenience() {
        assert_eq!(
            pair_tuple_u64(&[3, 5, 7]),
            pair_tuple(&[n(3), n(5), n(7)])
        );
    }

    #[test]
    fn tuple_injective_same_length() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    assert!(seen.insert(pair_tuple_u64(&[a, b, c]).to_string()));
                }
            }
        }
    }

    #[test]
    fn padding_restores_cross_length_injectivity() {
        // Without padding, [PF2(1,2)] (a 1-tuple) and [1,2] collide; with
        // padding to a common length and a reserved pad symbol they differ.
        let one_tuple = pair_tuple_u64(&[pair_tuple_u64(&[1, 2]).to_u64().unwrap()]);
        let two_tuple = pair_tuple_u64(&[1, 2]);
        assert_eq!(one_tuple, two_tuple); // the collision the paper warns about

        let padded_short = pair_padded_u64(&[one_tuple.to_u64().unwrap()], 2, 0);
        let padded_long = pair_padded_u64(&[1, 2], 2, 0);
        assert_ne!(padded_short, padded_long);
    }

    #[test]
    fn padding_identity_when_full_length() {
        assert_eq!(pair_padded_u64(&[4, 5], 2, 0), pair_tuple_u64(&[4, 5]));
    }

    #[test]
    #[should_panic]
    fn padding_target_too_small_panics() {
        pair_padded_u64(&[1, 2, 3], 2, 0);
    }

    #[test]
    fn growth_is_handled_without_overflow() {
        // An 8-element tuple of values around 2^20 — the paired value far
        // exceeds u64 but must format cleanly.
        let tuple: Vec<u64> = (0..8).map(|i| (1 << 20) + i).collect();
        let v = pair_tuple_u64(&tuple);
        assert!(v.to_u64().is_none());
        assert!(v.bits() > 64);
        assert!(!v.to_string().is_empty());
    }
}
