//! SplitMix64: a tiny, fast, deterministic PRNG used for seed expansion.
//!
//! SketchTree needs to derive many independent random coefficients (the
//! polynomial coefficients behind each sketch instance's ξ family) from a
//! single user-supplied `u64` seed, and it must do so identically at update
//! time and at query time.  SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is
//! the standard choice for this: a stateless avalanche permutation applied to
//! a 64-bit counter.  It passes BigCrush when used as a generator and, more
//! importantly here, never produces correlated outputs for distinct counter
//! values because the finalizer is a bijection.

/// A SplitMix64 generator.
///
/// ```
/// use sketchtree_hash::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next output restricted to `[0, bound)` using Lemire's
    /// multiply-shift rejection-free approximation, which is adequate for
    /// seed derivation (not for statistics).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a non-zero 64-bit output (useful for field coefficients that
    /// must not degenerate).
    #[inline]
    pub fn next_nonzero_u64(&mut self) -> u64 {
        loop {
            let v = self.next_u64();
            if v != 0 {
                return v;
            }
        }
    }

    /// Derives an independent child seed for stream `index`.
    ///
    /// The mapping is injective in `(seed, index)` for indices below 2^32,
    /// which is far beyond the number of sketch instances ever instantiated.
    #[inline]
    pub fn derive(seed: u64, index: u64) -> u64 {
        let mut g = SplitMix64::new(seed ^ index.rotate_left(32));
        g.next_u64() ^ index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut g = SplitMix64::new(0);
        // Reference values from the canonical SplitMix64 implementation.
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(g.next_below(13) < 13);
        }
    }

    #[test]
    fn derive_distinct_indices_distinct_seeds() {
        let s: Vec<u64> = (0..256).map(|i| SplitMix64::derive(99, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn nonzero_is_nonzero() {
        let mut g = SplitMix64::new(3);
        for _ in 0..100 {
            assert_ne!(g.next_nonzero_u64(), 0);
        }
    }

    #[test]
    fn rough_bit_balance() {
        // Sanity: over 4096 outputs each bit should be set roughly half the time.
        let mut g = SplitMix64::new(1234);
        let mut ones = [0u32; 64];
        let n = 4096;
        for _ in 0..n {
            let v = g.next_u64();
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((v >> b) & 1) as u32;
            }
        }
        for &c in &ones {
            assert!(c > n / 2 - 300 && c < n / 2 + 300, "bit bias: {c}");
        }
    }
}
