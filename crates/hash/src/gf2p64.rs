//! Arithmetic in the finite field GF(2^64).
//!
//! Elements are 64-bit words interpreted as polynomials over GF(2) modulo the
//! irreducible polynomial `x^64 + x^4 + x^3 + x + 1` (the lexicographically
//! least irreducible trinomial-free choice commonly used for CLMUL-based
//! hashing; its low word is `0x1B`).
//!
//! Why a field and not plain integer arithmetic?  A uniformly random
//! polynomial of degree `< k` over a *field* evaluated at distinct points
//! yields exactly k-wise independent uniform values — the property the AMS
//! sketch analysis (paper Section 3) requires of its ξ variables.  Working
//! over GF(2^64) keeps evaluation branch-free (XOR/shift only) and gives an
//! exactly uniform output space, unlike "mod prime then take a bit", which is
//! only approximately unbiased.

/// The reduction polynomial's low bits: `x^4 + x^3 + x + 1`.
const POLY_LOW: u64 = 0x1B;

/// Adds two field elements (addition in GF(2^64) is XOR).
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    a ^ b
}

/// Carry-less (polynomial) multiplication of two 64-bit words, producing the
/// full 128-bit product.
///
/// This is a portable shift-and-XOR implementation.  On the data sizes
/// SketchTree touches (one evaluation of a degree ≤ 10 polynomial per pattern
/// per sketch row) it is far from the bottleneck; the pattern enumeration is.
#[inline]
pub fn clmul(a: u64, b: u64) -> u128 {
    let mut acc: u128 = 0;
    let a = u128::from(a);
    let mut b = b;
    let mut shift = 0u32;
    while b != 0 {
        let tz = b.trailing_zeros();
        shift += tz;
        acc ^= a << shift;
        b >>= tz;
        b &= !1; // clear the bit we just consumed
    }
    acc
}

/// Reduces a 128-bit carry-less product modulo `x^64 + x^4 + x^3 + x + 1`.
#[inline]
pub fn reduce(v: u128) -> u64 {
    // Fold the high 64 bits down twice: x^64 ≡ x^4 + x^3 + x + 1.
    let lo = v as u64;
    let hi = (v >> 64) as u64;
    // hi * (x^4+x^3+x+1) has degree ≤ 63+4 = 67, so one more small fold.
    let folded = clmul(hi, POLY_LOW);
    let lo2 = folded as u64;
    let hi2 = (folded >> 64) as u64; // at most 4 bits
    let folded2 = clmul(hi2, POLY_LOW) as u64; // degree ≤ 3+4 < 64, no carry
    lo ^ lo2 ^ folded2
}

/// Multiplies two elements of GF(2^64).
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    reduce(clmul(a, b))
}

/// Squares an element (same cost as `mul` in this portable implementation).
#[inline]
pub fn square(a: u64) -> u64 {
    mul(a, a)
}

/// Raises `a` to the power `e` by square-and-multiply.
pub fn pow(mut a: u64, mut e: u64) -> u64 {
    let mut acc = 1u64;
    while e != 0 {
        if e & 1 == 1 {
            acc = mul(acc, a);
        }
        a = square(a);
        e >>= 1;
    }
    acc
}

/// Multiplicative inverse of a non-zero element, via `a^(2^64 - 2)`.
///
/// # Panics
/// Panics if `a == 0`, which has no inverse.
pub fn inverse(a: u64) -> u64 {
    assert_ne!(a, 0, "zero has no multiplicative inverse in GF(2^64)");
    // Fermat: a^(2^64 - 2) = a^{-1} in the multiplicative group of order
    // 2^64 - 1.
    pow(a, u64::MAX - 1)
}

/// Evaluates the polynomial `coeffs[0] + coeffs[1]·x + … + coeffs[d]·x^d`
/// at point `x`, using Horner's rule in GF(2^64).
#[inline]
pub fn eval_poly(coeffs: &[u64], x: u64) -> u64 {
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmul_matches_definition_small() {
        // (x+1)(x+1) = x^2+1 over GF(2)
        assert_eq!(clmul(0b11, 0b11), 0b101);
        // x * x^63 = x^64
        assert_eq!(clmul(1 << 63, 2), 1u128 << 64);
        assert_eq!(clmul(0, 0xFFFF), 0);
        assert_eq!(clmul(1, 0xDEAD_BEEF), 0xDEAD_BEEF);
    }

    #[test]
    fn reduction_identity_below_64() {
        for v in [0u64, 1, 2, 0xFFFF_FFFF_FFFF_FFFF] {
            assert_eq!(reduce(u128::from(v)), v);
        }
    }

    #[test]
    fn x64_reduces_to_poly_low() {
        assert_eq!(reduce(1u128 << 64), POLY_LOW);
    }

    #[test]
    fn mul_commutative_associative_distributive() {
        let xs = [1u64, 2, 3, 0x8000_0000_0000_0001, 0xDEAD_BEEF_CAFE_F00D];
        for &a in &xs {
            for &b in &xs {
                assert_eq!(mul(a, b), mul(b, a));
                for &c in &xs {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn one_is_identity_zero_annihilates() {
        for a in [3u64, 0xABCD, u64::MAX] {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for a in [1u64, 2, 3, 0xFFFF, 0x8000_0000_0000_0000, u64::MAX] {
            assert_eq!(mul(a, inverse(a)), 1, "a={a:#x}");
        }
    }

    #[test]
    #[should_panic]
    fn inverse_of_zero_panics() {
        inverse(0);
    }

    #[test]
    fn pow_small_cases() {
        let a = 0x1234_5678_9ABC_DEF0u64;
        assert_eq!(pow(a, 0), 1);
        assert_eq!(pow(a, 1), a);
        assert_eq!(pow(a, 2), mul(a, a));
        assert_eq!(pow(a, 3), mul(mul(a, a), a));
    }

    #[test]
    fn fermat_order_divides_group_order() {
        // a^(2^64-1) = 1 for all non-zero a.
        for a in [1u64, 5, 0xCAFE, u64::MAX] {
            assert_eq!(pow(a, u64::MAX), 1);
        }
    }

    #[test]
    fn eval_poly_horner_matches_naive() {
        let coeffs = [7u64, 3, 0xFF, 0x1234];
        let x = 0xABCDu64;
        let mut naive = 0u64;
        let mut xp = 1u64;
        for &c in &coeffs {
            naive = add(naive, mul(c, xp));
            xp = mul(xp, x);
        }
        assert_eq!(eval_poly(&coeffs, x), naive);
    }

    #[test]
    fn eval_poly_empty_and_constant() {
        assert_eq!(eval_poly(&[], 42), 0);
        assert_eq!(eval_poly(&[9], 42), 9);
    }
}
