//! Streaming Rabin fingerprints — the paper's one-dimensional mapping.
//!
//! Paper Section 6.1: when the exact pairing function outgrows a machine
//! word, SketchTree instead concatenates the LPS and NPS of a pattern into a
//! long bit string, interprets it as a polynomial over GF(2), and takes its
//! residue modulo a randomly chosen irreducible polynomial `p_irr` of degree
//! 31.  Distinct patterns collide only with probability about
//! `len(bits) / 2^degree` per pair (Rabin/Broder), made negligible by degree
//! choice.
//!
//! [`RabinFingerprinter`] supports incremental append of bytes and of
//! variable-length-encoded symbols, so a pattern's sequences can be
//! fingerprinted in one linear pass without materialising the bit string.
//! Fingerprinting is *keyed*: two fingerprinters built from the same seed and
//! degree produce identical values, which is how query-time mapping matches
//! update-time mapping.

use crate::gf2poly::Gf2Poly;

/// A streaming Rabin fingerprint function keyed by a random irreducible
/// polynomial.
///
/// ```
/// use sketchtree_hash::RabinFingerprinter;
/// let fp = RabinFingerprinter::new(31, 42);
/// let a = fp.fingerprint_symbols(&[1, 2, 3]);
/// let b = fp.fingerprint_symbols(&[1, 2, 3]);
/// let c = fp.fingerprint_symbols(&[3, 2, 1]);
/// assert_eq!(a, b);
/// assert_ne!(a, c); // order matters (with overwhelming probability)
/// ```
#[derive(Debug, Clone)]
pub struct RabinFingerprinter {
    /// The irreducible modulus, including its leading bit. Degree <= 63 so
    /// residues fit a `u64`.
    modulus: u64,
    /// Degree of the modulus.
    degree: u32,
    /// `table[b]` is the reduction of `b << degree` for each byte `b`; lets
    /// us consume input a byte at a time instead of a bit at a time.
    table: Box<[u64; 256]>,
}

impl RabinFingerprinter {
    /// Creates a fingerprinter with a random irreducible polynomial of the
    /// given degree (2..=63), derived deterministically from `seed`.
    ///
    /// The paper's experiments use degree 31; degree 61 drives the collision
    /// probability below 10^-12 for realistic pattern populations.
    ///
    /// # Panics
    /// Panics unless `2 <= degree <= 63`.
    pub fn new(degree: u32, seed: u64) -> Self {
        assert!(
            (2..=63).contains(&degree),
            "fingerprint degree must be in 2..=63, got {degree}"
        );
        let poly = Gf2Poly::random_irreducible(degree as usize, seed);
        let modulus = poly
            .to_u64()
            .expect("degree <= 63 polynomial fits in a u64");
        Self::from_modulus(modulus, degree)
    }

    /// Creates a fingerprinter from an explicit modulus (must have degree
    /// `degree`, i.e. bit `degree` set and no higher bit).  Exposed for
    /// testing and for persisting a synopsis configuration.
    ///
    /// # Panics
    /// Panics if the modulus degree does not match.
    pub fn from_modulus(modulus: u64, degree: u32) -> Self {
        assert!(
            modulus >> degree == 1,
            "modulus {modulus:#x} does not have degree {degree}"
        );
        let mut table = Box::new([0u64; 256]);
        for b in 0..256u64 {
            // Reduce the polynomial b(x) * x^degree bit by bit.
            let mut acc = 0u64;
            for bit in (0..8).rev() {
                // Multiply acc by x and reduce.
                let carry = acc >> (degree - 1) & 1;
                acc = (acc << 1) & ((1u64 << degree) - 1);
                if carry == 1 {
                    acc ^= modulus & ((1u64 << degree) - 1);
                }
                if (b >> bit) & 1 == 1 {
                    // Add x^degree (which reduces to modulus's low bits).
                    acc ^= modulus & ((1u64 << degree) - 1);
                }
            }
            table[b as usize] = acc;
        }
        Self {
            modulus,
            degree,
            table,
        }
    }

    /// The modulus polynomial (including leading bit).
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// The modulus degree.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Appends one byte to a running fingerprint.
    #[inline]
    pub fn push_byte(&self, fp: u64, byte: u8) -> u64 {
        // fp' = (fp * x^8 + byte) mod modulus.
        // Split fp*x^8 into (top byte)*x^degree-ish contributions using the
        // precomputed table.
        let d = self.degree;
        if d >= 8 {
            // fp = top * x^(d-8) + rest, so
            // fp * x^8 + byte = top * x^d + rest * x^8 + byte, and the only
            // part needing reduction is top * x^d, precomputed in the table.
            let top = (fp >> (d - 8)) as u8;
            let low = (fp << 8) & ((1u64 << d) - 1);
            low ^ self.table[top as usize] ^ u64::from(byte)
        } else {
            // Tiny degrees (<8): process bit-by-bit.
            let mut acc = fp;
            for bit in (0..8).rev() {
                let carry = acc >> (d - 1) & 1;
                acc = (acc << 1) & ((1u64 << d) - 1);
                if carry == 1 {
                    acc ^= self.modulus & ((1u64 << d) - 1);
                }
                if (byte >> bit) & 1 == 1 {
                    acc ^= 1;
                }
            }
            acc
        }
    }

    /// Fingerprints a byte slice starting from the canonical initial state.
    ///
    /// The initial state is `1` (not `0`) so that leading zero bytes change
    /// the fingerprint — `[0, 5]` and `[5]` must not collide.
    pub fn fingerprint_bytes(&self, bytes: &[u8]) -> u64 {
        let mut fp = self.initial();
        for &b in bytes {
            fp = self.push_byte(fp, b);
        }
        fp
    }

    /// Appends a `u64` symbol using a self-delimiting variable-length
    /// encoding (LEB128-style), so symbol boundaries are unambiguous and
    /// sequences of different lengths can never produce the same byte
    /// stream.
    pub fn push_symbol(&self, mut fp: u64, mut symbol: u64) -> u64 {
        loop {
            let byte = (symbol & 0x7F) as u8;
            symbol >>= 7;
            if symbol == 0 {
                return self.push_byte(fp, byte);
            }
            fp = self.push_byte(fp, byte | 0x80);
        }
    }

    /// Fingerprints a sequence of symbols from the canonical initial state.
    pub fn fingerprint_symbols(&self, symbols: &[u64]) -> u64 {
        self.append_symbols(self.initial(), symbols)
    }

    /// Extends an in-progress fingerprint with a run of symbols — the
    /// streaming form of [`RabinFingerprinter::fingerprint_symbols`].
    /// Callers that hold a value's symbols in several contiguous buffers
    /// (e.g. an LPS label-code run followed by an NPS number run) chain
    /// them without materialising a concatenated vector:
    /// `append_symbols(append_symbols(initial(), lps), nps)` equals
    /// `fingerprint_symbols(lps ++ nps)` bit for bit.
    pub fn append_symbols(&self, mut fp: u64, symbols: &[u64]) -> u64 {
        for &s in symbols {
            fp = self.push_symbol(fp, s);
        }
        fp
    }

    /// Fingerprints many symbol sequences packed back-to-back in one
    /// contiguous buffer, one table-driven pass over the whole batch.
    ///
    /// `ends[i]` is the exclusive end offset of sequence `i` in `symbols`
    /// (so sequence `i` spans `ends[i-1]..ends[i]`, with `ends[-1] = 0`);
    /// offsets must be non-decreasing and the last must equal
    /// `symbols.len()`.  One fingerprint per sequence is appended to
    /// `out`, each identical to
    /// [`RabinFingerprinter::fingerprint_symbols`] of that segment.
    ///
    /// # Panics
    /// Panics if the offsets are not monotone or do not cover `symbols`.
    pub fn fingerprint_segments(&self, symbols: &[u64], ends: &[u32], out: &mut Vec<u64>) {
        out.reserve(ends.len());
        let mut start = 0usize;
        for &end in ends {
            let end = end as usize;
            assert!(
                end >= start && end <= symbols.len(),
                "segment offsets must be monotone and within the batch buffer"
            );
            // lint:allow(L1, reason = "start <= end <= symbols.len() asserted on the line above")
            out.push(self.append_symbols(self.initial(), &symbols[start..end]));
            start = end;
        }
        assert_eq!(start, symbols.len(), "segment offsets must cover the whole batch buffer");
    }

    /// The canonical initial state for a fresh fingerprint.
    #[inline]
    pub fn initial(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp31() -> RabinFingerprinter {
        RabinFingerprinter::new(31, 42)
    }

    /// Reference bit-at-a-time implementation to validate the table-driven
    /// byte path.
    fn fingerprint_bits_reference(f: &RabinFingerprinter, bytes: &[u8]) -> u64 {
        let d = f.degree();
        let mask = (1u64 << d) - 1;
        let modlow = f.modulus() & mask;
        let mut acc = 1u64; // canonical initial state
        for &byte in bytes {
            for bit in (0..8).rev() {
                let carry = acc >> (d - 1) & 1;
                acc = (acc << 1) & mask;
                if carry == 1 {
                    acc ^= modlow;
                }
                if (byte >> bit) & 1 == 1 {
                    acc ^= 1;
                }
            }
        }
        acc
    }

    #[test]
    fn byte_path_matches_bit_reference() {
        let f = fp31();
        let inputs: [&[u8]; 6] = [
            &[],
            &[0],
            &[1, 2, 3],
            &[0xFF; 16],
            &[0, 0, 0, 7],
            b"hello world, this is rabin",
        ];
        for bytes in inputs {
            assert_eq!(
                f.fingerprint_bytes(bytes),
                fingerprint_bits_reference(&f, bytes),
                "mismatch on {bytes:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RabinFingerprinter::new(31, 9);
        let b = RabinFingerprinter::new(31, 9);
        assert_eq!(a.modulus(), b.modulus());
        assert_eq!(a.fingerprint_symbols(&[5, 6]), b.fingerprint_symbols(&[5, 6]));
    }

    #[test]
    fn different_seed_different_modulus() {
        assert_ne!(
            RabinFingerprinter::new(31, 1).modulus(),
            RabinFingerprinter::new(31, 2).modulus()
        );
    }

    #[test]
    fn append_symbols_chains_like_concatenation() {
        let f = fp31();
        let lps = [7u64, 0, u64::MAX, 300];
        let nps = [2u64, 3, 4];
        let concat: Vec<u64> = lps.iter().chain(nps.iter()).copied().collect();
        let chained = f.append_symbols(f.append_symbols(f.initial(), &lps), &nps);
        assert_eq!(chained, f.fingerprint_symbols(&concat));
    }

    #[test]
    fn segments_match_per_sequence_fingerprints() {
        let f = fp31();
        let seqs: [&[u64]; 4] = [&[1, 2, 3], &[], &[u64::MAX], &[0, 0, 5000]];
        let mut packed = Vec::new();
        let mut ends = Vec::new();
        for s in seqs {
            packed.extend_from_slice(s);
            // lint:allow(L2, reason = "test buffer is tiny, fits u32")
            ends.push(packed.len() as u32);
        }
        let mut out = vec![99u64]; // pre-existing contents must be preserved
        f.fingerprint_segments(&packed, &ends, &mut out);
        assert_eq!(out.len(), 1 + seqs.len());
        assert_eq!(out[0], 99);
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(out[i + 1], f.fingerprint_symbols(s), "segment {i}");
        }
    }

    #[test]
    #[should_panic(expected = "cover the whole batch buffer")]
    fn segments_must_cover_buffer() {
        let f = fp31();
        let mut out = Vec::new();
        f.fingerprint_segments(&[1, 2, 3], &[2], &mut out);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn segments_must_be_monotone() {
        let f = fp31();
        let mut out = Vec::new();
        f.fingerprint_segments(&[1, 2, 3], &[2, 1, 3], &mut out);
    }

    #[test]
    fn leading_zero_sensitivity() {
        let f = fp31();
        assert_ne!(f.fingerprint_bytes(&[0, 5]), f.fingerprint_bytes(&[5]));
        assert_ne!(f.fingerprint_bytes(&[]), f.fingerprint_bytes(&[0]));
    }

    #[test]
    fn symbol_boundaries_unambiguous() {
        let f = fp31();
        // [1, 2] vs [some symbol whose encoding is the concatenation]:
        // LEB128 of 1 is 0x01, of 2 is 0x02; a single symbol yielding bytes
        // 0x01 0x02 would need a continuation bit on the first byte, so the
        // byte streams differ.
        assert_ne!(
            f.fingerprint_symbols(&[1, 2]),
            f.fingerprint_symbols(&[0x0101])
        );
        assert_ne!(f.fingerprint_symbols(&[1, 2]), f.fingerprint_symbols(&[1, 2, 0]));
        assert_ne!(f.fingerprint_symbols(&[]), f.fingerprint_symbols(&[0]));
    }

    #[test]
    fn large_symbols_roundtrip_consistency() {
        let f = fp31();
        let seq = [u64::MAX, 0, 1 << 40, 12345];
        assert_eq!(f.fingerprint_symbols(&seq), f.fingerprint_symbols(&seq));
    }

    #[test]
    fn fingerprints_fit_degree() {
        for degree in [8u32, 16, 31, 61] {
            let f = RabinFingerprinter::new(degree, 5);
            let v = f.fingerprint_bytes(b"some reasonably long input string....");
            assert!(v < (1u64 << degree), "degree {degree}: {v:#x}");
        }
    }

    #[test]
    fn collision_rate_is_tiny_empirically() {
        // 20k random-ish sequences through a degree-31 fingerprint: expected
        // collisions ~ (2e4)^2 / 2 / 2^31 ≈ 0.09, so none is the norm.
        let f = fp31();
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for i in 0..20_000u64 {
            let seq = [i, i.wrapping_mul(0x9E3779B9), i ^ 0xABCD, i % 7];
            if !seen.insert(f.fingerprint_symbols(&seq)) {
                collisions += 1;
            }
        }
        assert!(collisions <= 2, "too many collisions: {collisions}");
    }

    #[test]
    #[should_panic]
    fn degree_too_large_rejected() {
        RabinFingerprinter::new(64, 0);
    }

    #[test]
    #[should_panic]
    fn degree_too_small_rejected() {
        RabinFingerprinter::new(1, 0);
    }

    #[test]
    fn small_degree_bit_path() {
        // Degrees below 8 take the bit-by-bit branch of push_byte.
        let f = RabinFingerprinter::new(4, 3);
        let v = f.fingerprint_bytes(&[0xAB, 0xCD]);
        assert!(v < 16);
        assert_eq!(v, fingerprint_bits_reference(&f, &[0xAB, 0xCD]));
    }

    #[test]
    #[should_panic]
    fn from_modulus_degree_mismatch_panics() {
        RabinFingerprinter::from_modulus(0b1011, 5);
    }
}
