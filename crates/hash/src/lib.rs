//! Hashing substrates for SketchTree.
//!
//! This crate provides every piece of "randomness plumbing" the SketchTree
//! algorithm (Rao & Moon, ICDE 2006) depends on, implemented from scratch:
//!
//! * [`splitmix`] — a tiny deterministic seed-expansion PRNG
//!   ([`splitmix::SplitMix64`]) used to derive per-sketch random coefficients
//!   from a single `u64` seed.
//! * [`gf2p64`] — carry-less arithmetic in the finite field GF(2^64),
//!   the backbone of the exactly k-wise independent hash families.
//! * [`kwise`] — k-wise independent ±1 random variables (the `ξ` variables
//!   of the AMS sketch construction, paper Section 3), both as random
//!   polynomials over GF(2^64) and as the classic BCH-code construction from
//!   Alon, Matias & Szegedy.
//! * [`gf2poly`] — polynomials over GF(2) of arbitrary degree, with Rabin's
//!   irreducibility test and random irreducible-polynomial generation
//!   (paper Section 6.1).
//! * [`rabin`] — streaming Rabin fingerprints of symbol sequences modulo an
//!   irreducible polynomial (the paper's default one-dimensional mapping).
//! * [`bignat`] — arbitrary-precision natural numbers, so that the exact
//!   Cantor pairing functions can be evaluated without overflow.
//! * [`pairing`] — the pairing functions `PF_2`/`PF_k` of paper Section 2.2,
//!   with the padding semantics of Section 2.3 and full inverses for testing.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bignat;
pub mod gf2p64;
pub mod gf2poly;
pub mod kwise;
pub mod m61;
pub mod pairing;
pub mod rabin;
pub mod splitmix;

pub use bignat::BigNat;
pub use gf2poly::Gf2Poly;
pub use kwise::{Bch4Sign, KWiseSign, Sign};
pub use pairing::{pair2, pair_tuple, unpair2};
pub use rabin::RabinFingerprinter;
pub use splitmix::SplitMix64;
