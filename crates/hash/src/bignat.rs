//! Arbitrary-precision natural numbers.
//!
//! The exact pairing functions of paper Section 2.2 map k-tuples of labels
//! and postorder numbers to single integers.  The paper itself observes that
//! "the range of PF(·) grows rapidly" beyond machine words — which is why we
//! need arbitrary precision to implement the *reference* mapping faithfully
//! (the production mapping is the Rabin fingerprint of Section 6.1).
//!
//! Only the operations the pairing functions need are implemented: addition,
//! subtraction, multiplication, halving, integer square root, comparison and
//! decimal formatting.  Limbs are little-endian `u32`s stored in a `u64`
//! accumulator during arithmetic, keeping carries trivial and the code easy
//! to audit.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision natural number (unsigned).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigNat {
    /// Little-endian base-2^32 limbs; normalized (no trailing zeros), so
    /// zero is the empty vector.
    limbs: Vec<u32>,
}

impl BigNat {
    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// One.
    #[inline]
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = Self {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u64::from(self.limbs[0])),
            2 => Some(u64::from(self.limbs[0]) | (u64::from(self.limbs[1]) << 32)),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True if zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = u64::from(l) + u64::from(short.get(i).copied().unwrap_or(0)) + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction. Saturates conceptually forbidden: panics on underflow.
    ///
    /// # Panics
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_nat(other) != Ordering::Less,
            "BigNat subtraction underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = i64::from(self.limbs[i])
                - i64::from(other.limbs.get(i).copied().unwrap_or(0))
                - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Multiplication (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u64::from(out[i + j]) + u64::from(a) * u64::from(b) + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = u64::from(out[k]) + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Division by 2 (floor).
    pub fn half(&self) -> Self {
        let mut out = vec![0u32; self.limbs.len()];
        let mut carry = 0u32;
        for i in (0..self.limbs.len()).rev() {
            let cur = (u64::from(carry) << 32) | u64::from(self.limbs[i]);
            out[i] = (cur >> 1) as u32;
            carry = (cur & 1) as u32;
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// True if even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Comparison.
    pub fn cmp_nat(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Left shift by `k` bits (multiply by 2^k).
    pub fn shl(&self, k: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = k / 32;
        let bit_shift = k % 32;
        let mut out = vec![0u32; limb_shift + self.limbs.len() + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            let v = u64::from(l) << bit_shift;
            out[limb_shift + i] |= v as u32;
            out[limb_shift + i + 1] |= (v >> 32) as u32;
        }
        let mut n = Self { limbs: out };
        n.normalize();
        n
    }

    /// Integer square root (floor), by Newton's method on bit-length-based
    /// initial guess; always terminates because the iteration is strictly
    /// decreasing once above the root.
    pub fn isqrt(&self) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        if let Some(v) = self.to_u64() {
            // Fast path with exact integer sqrt on u64.
            let mut r = (v as f64).sqrt() as u64;
            // Correct float slop in both directions.
            while r.checked_mul(r).is_none_or(|rr| rr > v) {
                r -= 1;
            }
            while (r + 1).checked_mul(r + 1).is_some_and(|rr| rr <= v) {
                r += 1;
            }
            return Self::from_u64(r);
        }
        // Initial guess: 2^(ceil(bits/2)) >= sqrt(self).
        let mut x = Self::one().shl(self.bits().div_ceil(2));
        loop {
            // x' = (x + self/x) / 2; division self/x done via multiply-free
            // long division.
            let q = self.div_floor(&x);
            let next = x.add(&q).half();
            if next.cmp_nat(&x) != Ordering::Less {
                // Converged: x is the floor sqrt (standard Newton argument).
                return x;
            }
            x = next;
        }
    }

    /// Floor division by binary long division.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_floor(&self, divisor: &Self) -> Self {
        assert!(!divisor.is_zero(), "BigNat division by zero");
        if self.cmp_nat(divisor) == Ordering::Less {
            return Self::zero();
        }
        let shift = self.bits() - divisor.bits();
        let mut quotient = Self::zero();
        let mut rem = self.clone();
        for s in (0..=shift).rev() {
            let d = divisor.shl(s);
            if rem.cmp_nat(&d) != Ordering::Less {
                rem = rem.sub(&d);
                quotient = quotient.add(&Self::one().shl(s));
            }
        }
        quotient
    }

    /// Remainder of floor division.
    pub fn rem_floor(&self, divisor: &Self) -> Self {
        self.sub(&self.div_floor(divisor).mul(divisor))
    }

    /// Divides by a small `u32`, returning (quotient, remainder).
    fn divmod_small(&self, d: u32) -> (Self, u32) {
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem = 0u64;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | u64::from(self.limbs[i]);
            out[i] = (cur / u64::from(d)) as u32;
            rem = cur % u64::from(d);
        }
        let mut q = Self { limbs: out };
        q.normalize();
        (q, rem as u32)
    }
}

impl PartialOrd for BigNat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigNat {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_nat(other)
    }
}

impl fmt::Display for BigNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_small(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for c in chunks.iter().rev().skip(1) {
            write!(f, "{c:09}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 0xFFFF_FFFF, 0x1_0000_0000, u64::MAX] {
            assert_eq!(BigNat::from_u64(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn add_with_carries() {
        let a = BigNat::from_u64(u64::MAX);
        let b = BigNat::from_u64(1);
        let s = a.add(&b);
        assert_eq!(s.to_u64(), None);
        assert_eq!(s.to_string(), "18446744073709551616");
    }

    #[test]
    fn sub_inverse_of_add() {
        let a = BigNat::from_u64(123_456_789_012_345);
        let b = BigNat::from_u64(987_654_321);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), BigNat::zero());
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        BigNat::from_u64(1).sub(&BigNat::from_u64(2));
    }

    #[test]
    fn mul_matches_u128() {
        let pairs = [
            (0u64, 5u64),
            (1, u64::MAX),
            (0xFFFF_FFFF, 0xFFFF_FFFF),
            (u64::MAX, u64::MAX),
            (123_456_789, 987_654_321),
        ];
        for (a, b) in pairs {
            let prod = BigNat::from_u64(a).mul(&BigNat::from_u64(b));
            let expect = u128::from(a) * u128::from(b);
            assert_eq!(prod.to_string(), expect.to_string());
        }
    }

    #[test]
    fn half_and_parity() {
        assert_eq!(BigNat::from_u64(10).half(), BigNat::from_u64(5));
        assert_eq!(BigNat::from_u64(11).half(), BigNat::from_u64(5));
        assert!(BigNat::from_u64(10).is_even());
        assert!(!BigNat::from_u64(11).is_even());
        assert!(BigNat::zero().is_even());
        // Carry across limb boundary.
        let big = BigNat::from_u64(3 << 32);
        assert_eq!(big.half().to_u64(), Some(3 << 31));
    }

    #[test]
    fn ordering_total_and_consistent() {
        let vals = [0u64, 1, 2, 0xFFFF_FFFF, 1 << 40, u64::MAX];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    BigNat::from_u64(a).cmp(&BigNat::from_u64(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
        let huge = BigNat::from_u64(u64::MAX).mul(&BigNat::from_u64(u64::MAX));
        assert!(huge > BigNat::from_u64(u64::MAX));
    }

    #[test]
    fn shl_matches_multiplication() {
        let a = BigNat::from_u64(0b1011);
        assert_eq!(a.shl(3).to_u64(), Some(0b1011000));
        assert_eq!(a.shl(0), a);
        assert_eq!(a.shl(64).to_string(), (0b1011u128 << 64).to_string());
        assert_eq!(BigNat::zero().shl(100), BigNat::zero());
    }

    #[test]
    fn isqrt_exact_and_floor() {
        for v in [0u64, 1, 2, 3, 4, 15, 16, 17, 99, 100, 101, u32::MAX as u64] {
            let r = BigNat::from_u64(v).isqrt().to_u64().unwrap();
            assert!(r * r <= v, "v={v} r={r}");
            assert!((r + 1) * (r + 1) > v, "v={v} r={r}");
        }
    }

    #[test]
    fn isqrt_big() {
        // (2^80 + 3)^2 has a known floor sqrt.
        let base = BigNat::one().shl(80).add(&BigNat::from_u64(3));
        let sq = base.mul(&base);
        assert_eq!(sq.isqrt(), base);
        let sq_minus = sq.sub(&BigNat::one());
        assert_eq!(sq_minus.isqrt(), base.sub(&BigNat::one()));
    }

    #[test]
    fn div_floor_and_rem() {
        let a = BigNat::from_u64(1_000_000_007);
        let b = BigNat::from_u64(97);
        let q = a.div_floor(&b);
        let r = a.rem_floor(&b);
        assert_eq!(q.to_u64(), Some(1_000_000_007 / 97));
        assert_eq!(r.to_u64(), Some(1_000_000_007 % 97));
        assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    #[should_panic]
    fn div_by_zero_panics() {
        BigNat::one().div_floor(&BigNat::zero());
    }

    #[test]
    fn display_decimal() {
        assert_eq!(BigNat::zero().to_string(), "0");
        assert_eq!(BigNat::from_u64(42).to_string(), "42");
        assert_eq!(
            BigNat::from_u64(1_000_000_000).to_string(),
            "1000000000"
        );
        assert_eq!(
            BigNat::from_u64(u64::MAX).to_string(),
            u64::MAX.to_string()
        );
        // Zero-padding of inner chunks: 2^64 = 18446744073709551616.
        assert_eq!(
            BigNat::from_u64(u64::MAX).add(&BigNat::one()).to_string(),
            "18446744073709551616"
        );
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigNat::zero().bits(), 0);
        assert_eq!(BigNat::one().bits(), 1);
        assert_eq!(BigNat::from_u64(255).bits(), 8);
        assert_eq!(BigNat::from_u64(256).bits(), 9);
        assert_eq!(BigNat::one().shl(100).bits(), 101);
    }
}
