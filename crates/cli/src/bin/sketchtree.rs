//! `sketchtree` — build, persist and query SketchTree synopses from the
//! command line. See `sketchtree_cli` for the command reference.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match sketchtree_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
