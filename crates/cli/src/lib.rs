//! The `sketchtree` command-line tool.
//!
//! ```text
//! sketchtree ingest <file.xml>|- [options]     build a synopsis from XML
//!     --snapshot PATH     write the synopsis to PATH (default: sketchtree.snapshot)
//!     --k N               max pattern edges (default 4)
//!     --s1 N --s2 N       sketch array size (default 25 x 7)
//!     --streams N         virtual streams (default 229)
//!     --topk N            heavy hitters tracked per stream (default 50)
//!     --independence N    xi independence (default 5: products of 2 work)
//!     --seed N            sketch seed
//!
//! sketchtree query <snapshot> <pattern>... [--unordered]
//!     estimate COUNT_ord (or COUNT with --unordered) for each pattern
//!
//! sketchtree expr <snapshot> "<expression>"
//!     evaluate a +,-,* expression, e.g. "COUNT_ord(A(B)) - COUNT(C)"
//!
//! sketchtree stats <snapshot>|<host:port> [--metrics [--json]]
//!     print synopsis configuration and stream counters.  A target that is
//!     not an existing file and contains ':' is treated as a running
//!     server's address; --metrics fetches the full metrics exposition
//!     (Prometheus text, or JSON with --json) instead of the summary
//!
//! sketchtree heavy <snapshot> [--limit N]
//!     print the tracked heavy-hitter patterns (mapped values)
//!
//! sketchtree merge <a.snap> <b.snap>... -o <out.snap>
//!     fold identically configured shard snapshots into one synopsis;
//!     with top-k disabled the result is byte-identical to ingesting
//!     every shard's stream into a single synopsis
//!
//! sketchtree serve <addr> [options]
//!     run the SKTP daemon: streaming remote ingest + online queries
//!     --snapshot PATH         checkpoint file (restore on start, write on stop)
//!     --checkpoint-secs N     also checkpoint every N seconds
//!     --wal-path PATH         write-ahead log: fsync every ingest batch
//!                             before acking, replay the tail on start,
//!                             rotate on every checkpoint
//!     --wal-fsync-every N     group commit: one fsync per N batches
//!                             (default 1 = every batch; a crash may
//!                             lose up to N-1 acked batches; 0 = never,
//!                             benchmarking only)
//!     --workers N             worker threads (default 4)
//!     --ingest-threads N      parallel ingest pipeline width (default:
//!                             SKETCHTREE_INGEST_THREADS, else the CPU
//!                             count; the synopsis is bit-identical at
//!                             every setting)
//!     --metrics-port N        serve HTTP /metrics + /healthz on 0.0.0.0:N
//!                             (0 picks an ephemeral port; omit to disable)
//!     plus the ingest sketch flags (--k, --s1, ... ) for a fresh synopsis
//!
//! sketchtree wal-dump <wal-file>
//!     inspect a write-ahead log: one line per intact frame (sequence
//!     number, sizes, label/tree counts), plus whether a torn tail from
//!     a crash would be truncated at recovery
//!
//! sketchtree remote-ingest <addr> <file.xml>|- [--batch N]
//!     stream XML documents to a running server in batches (default 64)
//!
//! sketchtree remote-query <addr> <pattern>... [--unordered | --expr]
//!     estimate counts (or full expressions with --expr) against a server
//!
//! sketchtree remote-subscribe <addr> <query>... [--unordered | --expr] [--updates N]
//!     register standing queries and stream pushed estimate updates to
//!     stdout, one line per query per ingest batch; --updates N exits
//!     after N updates (default: stream until the connection closes)
//!
//! sketchtree loadgen [options]
//!     drive a mixed open-loop benchmark workload against a server (or an
//!     in-process one) and write BENCH_loadgen_<scenario>.json; same
//!     flags as the standalone `sketchtree-loadgen` binary — see
//!     `sketchtree loadgen --help` and docs/benchmarks.md
//! ```
//!
//! The library layer ([`run`]) is separated from the binary so integration
//! tests can drive the exact command paths without spawning processes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

use sketchtree_core::snapshot::{read_snapshot, write_snapshot};
use sketchtree_core::sketchtree::{SketchTree, SketchTreeConfig};
use sketchtree_core::{exprparse, summary::ExpandLimits};
use sketchtree_server::{Client, Server, ServerConfig, SubscribeMode};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_xml::{DocumentSplitter, XmlTreeBuilder};
use std::io::{BufRead, BufReader, Write};

/// Top-level error type for CLI runs.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Anything from the library layers, stringified for display.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "{u}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

fn usage() -> String {
    "usage:\n  sketchtree ingest <file.xml>|- [--snapshot PATH] [--k N] [--s1 N] [--s2 N] \
     [--streams N] [--topk N] [--independence N] [--seed N]\n  \
     sketchtree query <snapshot> <pattern>... [--unordered]\n  \
     sketchtree expr <snapshot> \"<expression>\"\n  \
     sketchtree stats <snapshot>|<host:port> [--metrics [--json]]\n  \
     sketchtree heavy <snapshot> [--limit N]\n  \
     sketchtree merge <a.snap> <b.snap>... -o <out.snap>\n  \
     sketchtree serve <addr> [--snapshot PATH] [--checkpoint-secs N] [--wal-path PATH] \
     [--wal-fsync-every N] [--workers N] [--ingest-threads N] [--metrics-port N] \
     [sketch flags as for ingest]\n  \
     sketchtree wal-dump <wal-file>\n  \
     sketchtree remote-ingest <addr> <file.xml>|- [--batch N]\n  \
     sketchtree remote-query <addr> <pattern>... [--unordered | --expr]\n  \
     sketchtree remote-subscribe <addr> <query>... [--unordered | --expr] [--updates N]\n  \
     sketchtree loadgen [options]   (see: sketchtree loadgen --help)"
        .to_string()
}

/// Runs the CLI with pre-split arguments (excluding `argv[0]`), writing
/// human-readable output to `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let cmd = args.first().ok_or_else(|| CliError::Usage(usage()))?;
    match cmd.as_str() {
        "ingest" => ingest(&args[1..], out),
        "query" => query(&args[1..], out),
        "expr" => expr(&args[1..], out),
        "stats" => stats(&args[1..], out),
        "heavy" => heavy(&args[1..], out),
        "merge" => merge(&args[1..], out),
        "serve" => serve(&args[1..], out),
        "wal-dump" => wal_dump(&args[1..], out),
        "remote-ingest" => remote_ingest(&args[1..], out),
        "remote-query" => remote_query(&args[1..], out),
        "remote-subscribe" => remote_subscribe(&args[1..], out),
        "loadgen" => sketchtree_loadgen::run_cli(&args[1..], out).map_err(CliError::Failed),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n\n{}",
            usage()
        ))),
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?
            .parse()
            .map_err(|_| CliError::Usage(format!("bad value for {flag}"))),
    }
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Boolean flags take no value.
            skip = a != "--unordered" && a != "--expr" && a != "--metrics" && a != "--json";
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

/// Builds the synopsis configuration from the shared sketch flags
/// (`--k`, `--s1`, `--s2`, `--streams`, `--topk`, `--independence`,
/// `--seed`), used by both `ingest` and `serve`.
fn sketch_config(args: &[String]) -> Result<SketchTreeConfig, CliError> {
    Ok(SketchTreeConfig {
        max_pattern_edges: parse_flag(args, "--k", 4usize)?,
        synopsis: SynopsisConfig {
            s1: parse_flag(args, "--s1", 25usize)?,
            s2: parse_flag(args, "--s2", 7usize)?,
            virtual_streams: parse_flag(args, "--streams", 229usize)?,
            topk: parse_flag(args, "--topk", 50usize)?,
            independence: parse_flag(args, "--independence", 5usize)?,
            seed: parse_flag(args, "--seed", 0x5EED_u64)?,
            ..SynopsisConfig::default()
        },
        maintain_summary: true,
        track_exact: false,
        expand_limits: ExpandLimits::default(),
        ..SketchTreeConfig::default()
    })
}

fn ingest(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let inputs = positional(args);
    if inputs.is_empty() {
        return Err(CliError::Usage("ingest needs an input file (or -)".into()));
    }
    let mut st = SketchTree::new(sketch_config(args)?);
    let mut builder = XmlTreeBuilder::default();
    let start = std::time::Instant::now();
    for input in &inputs {
        let reader: Box<dyn BufRead> = if input.as_str() == "-" {
            Box::new(BufReader::new(std::io::stdin()))
        } else {
            Box::new(BufReader::new(std::fs::File::open(input.as_str())?))
        };
        let mut splitter = DocumentSplitter::new(reader);
        loop {
            let doc = splitter
                .next_document()
                .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
            let Some(doc) = doc else { break };
            let tree = builder
                .parse_document(&doc, st.labels_mut())
                .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
            st.ingest(&tree);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let snapshot_path: String = parse_flag(args, "--snapshot", "sketchtree.snapshot".to_string())?;
    let bytes = write_snapshot(&st);
    std::fs::write(&snapshot_path, &bytes)?;
    writeln!(
        out,
        "ingested {} documents ({} pattern instances) in {:.2}s",
        st.trees_processed(),
        st.patterns_processed(),
        secs
    )?;
    writeln!(
        out,
        "synopsis: {} KB in memory, snapshot {} KB -> {}",
        st.memory_bytes() / 1024,
        bytes.len() / 1024,
        snapshot_path
    )?;
    Ok(())
}

fn load(path: &str) -> Result<SketchTree, CliError> {
    let bytes = std::fs::read(path)?;
    read_snapshot(&bytes).map_err(|e| CliError::Failed(format!("{path}: {e}")))
}

fn query(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let (snapshot, patterns) = pos
        .split_first()
        .ok_or_else(|| CliError::Usage("query needs a snapshot and patterns".into()))?;
    if patterns.is_empty() {
        return Err(CliError::Usage("query needs at least one pattern".into()));
    }
    let unordered = args.iter().any(|a| a == "--unordered");
    let st = load(snapshot)?;
    for p in patterns {
        let est = if unordered {
            st.count_unordered(p)
        } else {
            st.count_ordered(p)
        }
        .map_err(|e| CliError::Failed(format!("{p}: {e}")))?;
        writeln!(out, "{p}\t{est:.1}")?;
    }
    Ok(())
}

fn expr(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let [snapshot, expression] = pos.as_slice() else {
        return Err(CliError::Usage("expr needs a snapshot and one expression".into()));
    };
    let st = load(snapshot)?;
    let e = exprparse::parse_expr(expression)
        .map_err(|e| CliError::Failed(format!("expression: {e}")))?;
    let est = st
        .estimate(&e)
        .map_err(|e| CliError::Failed(format!("estimate: {e}")))?;
    writeln!(out, "{est:.1}")?;
    Ok(())
}

fn stats(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let [target] = pos.as_slice() else {
        return Err(CliError::Usage(
            "stats needs a snapshot path or a server address (host:port)".into(),
        ));
    };
    // A target that is not a file on disk but looks like host:port is a
    // running server; everything else keeps the original snapshot path.
    if !std::path::Path::new(target.as_str()).exists() && target.contains(':') {
        return remote_stats(target, args, out);
    }
    let st = load(target)?;
    let c = st.config();
    writeln!(out, "trees processed     : {}", st.trees_processed())?;
    writeln!(out, "pattern instances   : {}", st.patterns_processed())?;
    writeln!(out, "distinct labels     : {}", st.labels().len())?;
    writeln!(out, "max pattern edges k : {}", c.max_pattern_edges)?;
    writeln!(
        out,
        "sketches            : s1={} s2={} over {} virtual streams",
        c.synopsis.s1, c.synopsis.s2, c.synopsis.virtual_streams
    )?;
    writeln!(out, "top-k per stream    : {}", c.synopsis.topk)?;
    writeln!(out, "synopsis memory     : {} KB", st.memory_bytes() / 1024)?;
    writeln!(
        out,
        "residual self-join  : {:.3e}",
        st.residual_self_join()
    )?;
    Ok(())
}

/// `stats <host:port>`: summary (or full metrics exposition with
/// `--metrics`) fetched from a running server.
fn remote_stats(addr: &str, args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut client =
        Client::connect(addr).map_err(|e| CliError::Failed(format!("{addr}: {e}")))?;
    if args.iter().any(|a| a == "--metrics") {
        let json = args.iter().any(|a| a == "--json");
        let text = client
            .metrics(json)
            .map_err(|e| CliError::Failed(format!("metrics: {e}")))?;
        write!(out, "{text}")?;
        if !text.ends_with('\n') {
            writeln!(out)?;
        }
        return Ok(());
    }
    let s = client
        .stats()
        .map_err(|e| CliError::Failed(format!("stats: {e}")))?;
    writeln!(out, "trees processed     : {}", s.trees_processed)?;
    writeln!(out, "pattern instances   : {}", s.patterns_processed)?;
    writeln!(out, "distinct labels     : {}", s.labels)?;
    writeln!(out, "max pattern edges k : {}", s.max_pattern_edges)?;
    writeln!(
        out,
        "sketches            : s1={} s2={} over {} virtual streams",
        s.s1, s.s2, s.virtual_streams
    )?;
    writeln!(out, "top-k per stream    : {}", s.topk)?;
    writeln!(out, "synopsis memory     : {} KB", s.memory_bytes / 1024)?;
    Ok(())
}

fn heavy(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let [snapshot] = pos.as_slice() else {
        return Err(CliError::Usage("heavy needs a snapshot".into()));
    };
    let limit = parse_flag(args, "--limit", 20usize)?;
    let st = load(snapshot)?;
    for (v, f) in st.tracked_heavy_hitters().into_iter().take(limit) {
        writeln!(out, "{v}\t~{f}")?;
    }
    Ok(())
}

fn merge(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    // `-o`/`--out` names the output; every other argument is an input
    // shard.  (`positional` only understands `--` flags, so `-o` is
    // handled by hand here.)  Merging is associative, so three or more
    // shards fold left.
    let mut output: Option<&String> = None;
    let mut inputs: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => {
                output = Some(
                    args.get(i + 1)
                        .ok_or_else(|| CliError::Usage("-o needs an output path".into()))?,
                );
                i += 2;
            }
            _ => {
                inputs.push(&args[i]);
                i += 1;
            }
        }
    }
    let output =
        output.ok_or_else(|| CliError::Usage("merge needs -o <out.snap>".into()))?;
    if inputs.len() < 2 {
        return Err(CliError::Usage(
            "merge needs at least two input snapshots".into(),
        ));
    }
    let mut acc = load(inputs[0])?;
    for path in &inputs[1..] {
        let shard = load(path)?;
        acc.merge(&shard)
            .map_err(|e| CliError::Failed(format!("{path}: {e}")))?;
    }
    let bytes = write_snapshot(&acc);
    std::fs::write(output.as_str(), &bytes)?;
    writeln!(
        out,
        "merged {} snapshots: {} trees, {} pattern instances -> {} ({} KB)",
        inputs.len(),
        acc.trees_processed(),
        acc.patterns_processed(),
        output,
        bytes.len() / 1024
    )?;
    Ok(())
}

fn serve(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let [addr] = pos.as_slice() else {
        return Err(CliError::Usage("serve needs a listen address (host:port)".into()));
    };
    let checkpoint_path: String = parse_flag(args, "--snapshot", String::new())?;
    let checkpoint_secs: u64 = parse_flag(args, "--checkpoint-secs", 0u64)?;
    // -1 (the default) disables the endpoint; 0 asks for an ephemeral port.
    let metrics_port: i64 = parse_flag(args, "--metrics-port", -1i64)?;
    let metrics_addr = match metrics_port {
        -1 => None,
        p if (0..=i64::from(u16::MAX)).contains(&p) => Some(std::net::SocketAddr::from((
            [0, 0, 0, 0],
            u16::try_from(p).unwrap_or_default(),
        ))),
        _ => return Err(CliError::Usage("bad value for --metrics-port".into())),
    };
    let wal_path: String = parse_flag(args, "--wal-path", String::new())?;
    let wal_fsync_every: u32 = parse_flag(args, "--wal-fsync-every", 1u32)?;
    let config = ServerConfig {
        workers: parse_flag(args, "--workers", 4usize)?,
        // 0 (the default) = SKETCHTREE_INGEST_THREADS or available
        // parallelism; the synopsis is bit-identical at every setting.
        ingest_threads: parse_flag(args, "--ingest-threads", 0usize)?,
        checkpoint_path: (!checkpoint_path.is_empty()).then(|| checkpoint_path.clone().into()),
        checkpoint_interval: (checkpoint_secs > 0)
            .then(|| std::time::Duration::from_secs(checkpoint_secs)),
        metrics_addr,
        sketch: sketch_config(args)?,
        wal: (!wal_path.is_empty()).then(|| sketchtree_server::WalConfig {
            path: wal_path.clone().into(),
            fsync_every: wal_fsync_every,
        }),
        ..ServerConfig::default()
    };
    if checkpoint_path.is_empty() && checkpoint_secs > 0 {
        return Err(CliError::Usage(
            "--checkpoint-secs needs --snapshot PATH".into(),
        ));
    }
    if wal_path.is_empty() && args.iter().any(|a| a == "--wal-fsync-every") {
        return Err(CliError::Usage(
            "--wal-fsync-every needs --wal-path PATH".into(),
        ));
    }
    let server = Server::start(addr.as_str(), config)?;
    // The bound address goes out *before* blocking so callers using an
    // ephemeral port (":0") can discover it.
    writeln!(out, "listening on {}", server.addr())?;
    if let Some(maddr) = server.metrics_addr() {
        writeln!(out, "metrics on http://{maddr}/metrics")?;
    }
    out.flush()?;
    server.wait();
    let restored = server.shared().trees_processed();
    server
        .shutdown()
        .map_err(|e| CliError::Failed(format!("shutdown: {e}")))?;
    writeln!(out, "server stopped after {restored} trees")?;
    Ok(())
}

/// Read-only WAL inspector: prints one line per intact frame and reports
/// any torn tail exactly as recovery would classify it (without
/// repairing the file — dumping must never mutate evidence).
fn wal_dump(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(CliError::Usage("wal-dump needs a wal file path".into()));
    };
    let scan = sketchtree_wal::scan(std::path::Path::new(path.as_str()))
        .map_err(|e| CliError::Failed(format!("{path}: {e}")))?;
    let mut trees_total: u64 = 0;
    for frame in &scan.frames {
        match sketchtree_wal::decode_batch(&frame.batch) {
            Ok((labels, trees)) => {
                let nodes: usize = trees.iter().map(sketchtree_tree::Tree::len).sum();
                trees_total += trees.len() as u64;
                writeln!(
                    out,
                    "seq {:>6}  offset {:>8}  {:>8} bytes  {:>5} labels  {:>6} trees  {:>8} nodes",
                    frame.seq,
                    frame.offset,
                    frame.end - frame.offset,
                    labels.len(),
                    trees.len(),
                    nodes,
                )?;
            }
            Err(e) => {
                writeln!(
                    out,
                    "seq {:>6}  offset {:>8}  {:>8} bytes  UNDECODABLE ({e}) — recovery truncates here",
                    frame.seq,
                    frame.offset,
                    frame.end - frame.offset,
                )?;
                break;
            }
        }
    }
    writeln!(
        out,
        "{} frames, {trees_total} trees, {} of {} bytes valid",
        scan.frames.len(),
        scan.valid_len,
        scan.file_len,
    )?;
    if let Some(torn) = scan.torn {
        writeln!(
            out,
            "torn tail at byte {} ({}) — recovery truncates it and continues",
            torn.offset, torn.reason,
        )?;
    }
    Ok(())
}

fn remote_ingest(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let (addr, inputs) = pos
        .split_first()
        .ok_or_else(|| CliError::Usage("remote-ingest needs an address and input files".into()))?;
    if inputs.is_empty() {
        return Err(CliError::Usage(
            "remote-ingest needs an input file (or -)".into(),
        ));
    }
    let batch_size: usize = parse_flag(args, "--batch", 64usize)?;
    let batch_size = batch_size.max(1);
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| CliError::Failed(format!("{addr}: {e}")))?;
    let start = std::time::Instant::now();
    let (mut trees, mut patterns) = (0u64, 0u64);
    let mut last = None;
    let mut batch: Vec<String> = Vec::with_capacity(batch_size);
    let mut flush_batch = |batch: &mut Vec<String>,
                           trees: &mut u64,
                           patterns: &mut u64,
                           last: &mut Option<sketchtree_server::client::IngestSummary>|
     -> Result<(), CliError> {
        if batch.is_empty() {
            return Ok(());
        }
        let summary = client
            .ingest_xml(batch)
            .map_err(|e| CliError::Failed(format!("ingest: {e}")))?;
        *trees += summary.trees;
        *patterns += summary.patterns;
        *last = Some(summary);
        batch.clear();
        Ok(())
    };
    for input in inputs {
        let reader: Box<dyn BufRead> = if input.as_str() == "-" {
            Box::new(BufReader::new(std::io::stdin()))
        } else {
            Box::new(BufReader::new(std::fs::File::open(input.as_str())?))
        };
        let mut splitter = DocumentSplitter::new(reader);
        loop {
            let doc = splitter
                .next_document()
                .map_err(|e| CliError::Failed(format!("{input}: {e}")))?;
            let Some(doc) = doc else { break };
            batch.push(doc);
            if batch.len() >= batch_size {
                flush_batch(&mut batch, &mut trees, &mut patterns, &mut last)?;
            }
        }
    }
    flush_batch(&mut batch, &mut trees, &mut patterns, &mut last)?;
    let secs = start.elapsed().as_secs_f64();
    writeln!(
        out,
        "ingested {trees} documents ({patterns} pattern instances) in {secs:.2}s"
    )?;
    if let Some(summary) = last {
        writeln!(
            out,
            "server totals: {} trees, {} pattern instances",
            summary.total_trees, summary.total_patterns
        )?;
    }
    Ok(())
}

fn remote_query(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let (addr, queries) = pos
        .split_first()
        .ok_or_else(|| CliError::Usage("remote-query needs an address and patterns".into()))?;
    if queries.is_empty() {
        return Err(CliError::Usage(
            "remote-query needs at least one pattern".into(),
        ));
    }
    let unordered = args.iter().any(|a| a == "--unordered");
    let as_expr = args.iter().any(|a| a == "--expr");
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| CliError::Failed(format!("{addr}: {e}")))?;
    for q in queries {
        let est = if as_expr {
            client.expr(q)
        } else if unordered {
            client.count_unordered(q)
        } else {
            client.count_ordered(q)
        }
        .map_err(|e| CliError::Failed(format!("{q}: {e}")))?;
        writeln!(out, "{q}\t{est:.1}")?;
    }
    Ok(())
}

/// `remote-subscribe <addr> <query>...`: register standing queries and
/// stream pushed [`sketchtree_server::Update`]s to `out`, one tab-separated
/// line (`epoch  query  estimate`) per query per ingest batch.
fn remote_subscribe(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let pos = positional(args);
    let (addr, queries) = pos.split_first().ok_or_else(|| {
        CliError::Usage("remote-subscribe needs an address and at least one query".into())
    })?;
    if queries.is_empty() {
        return Err(CliError::Usage(
            "remote-subscribe needs at least one query".into(),
        ));
    }
    let unordered = args.iter().any(|a| a == "--unordered");
    let as_expr = args.iter().any(|a| a == "--expr");
    if unordered && as_expr {
        return Err(CliError::Usage(
            "--unordered and --expr are mutually exclusive".into(),
        ));
    }
    let mode = if as_expr {
        SubscribeMode::Expr
    } else if unordered {
        SubscribeMode::Unordered
    } else {
        SubscribeMode::Ordered
    };
    // 0 (the default) streams until the connection closes; tests and
    // scripts bound the run with an explicit update budget.
    let updates_limit: u64 = parse_flag(args, "--updates", 0u64)?;
    let mut client =
        Client::connect(addr.as_str()).map_err(|e| CliError::Failed(format!("{addr}: {e}")))?;
    let mut names: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    for q in queries {
        let (id, epoch) = client
            .subscribe(mode, q)
            .map_err(|e| CliError::Failed(format!("{q}: {e}")))?;
        writeln!(out, "subscribed {q} (id {id}, epoch {epoch})")?;
        names.insert(id, (*q).clone());
    }
    out.flush()?;
    let mut printed = 0u64;
    loop {
        match client.next_update(std::time::Duration::from_millis(500)) {
            Ok(Some(u)) => {
                let name = names.get(&u.id).map(String::as_str).unwrap_or("?");
                match u.result {
                    Ok(v) => writeln!(out, "epoch {}\t{}\t{:.1}", u.epoch, name, v)?,
                    Err(e) => writeln!(out, "epoch {}\t{}\terror: {}", u.epoch, name, e)?,
                }
                out.flush()?;
                printed += 1;
                if updates_limit > 0 && printed >= updates_limit {
                    return Ok(());
                }
            }
            Ok(None) => continue, // quiet stream; keep waiting
            Err(e) => return Err(CliError::Failed(format!("updates: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sketchtree-cli-test-{}-{name}", std::process::id()));
        p
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).expect("command succeeds");
        String::from_utf8(out).expect("utf8 output")
    }

    #[test]
    fn full_cli_workflow() {
        // Write a small corpus.
        let xml_path = tmpfile("corpus.xml");
        let snap_path = tmpfile("synopsis.bin");
        let mut corpus = String::new();
        for i in 0..200 {
            let author = if i % 2 == 0 { "smith" } else { "jones" };
            corpus.push_str(&format!(
                "<article><author>{author}</author><year>2001</year></article>\n"
            ));
        }
        std::fs::write(&xml_path, corpus).unwrap();

        // ingest
        let out = run_ok(&[
            "ingest",
            xml_path.to_str().unwrap(),
            "--snapshot",
            snap_path.to_str().unwrap(),
            "--k",
            "3",
            "--s1",
            "40",
            "--streams",
            "31",
            "--topk",
            "8",
        ]);
        assert!(out.contains("ingested 200 documents"), "{out}");

        // query
        let out = run_ok(&[
            "query",
            snap_path.to_str().unwrap(),
            "author(smith)",
            "article(author(jones))",
        ]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        let smith: f64 = lines[0].split('\t').nth(1).unwrap().parse().unwrap();
        assert!((smith - 100.0).abs() < 25.0, "{out}");

        // unordered query
        let out = run_ok(&[
            "query",
            snap_path.to_str().unwrap(),
            "article(year,author)",
            "--unordered",
        ]);
        let v: f64 = out.trim().split('\t').nth(1).unwrap().parse().unwrap();
        assert!((v - 200.0).abs() < 40.0, "{out}");

        // expr
        let out = run_ok(&[
            "expr",
            snap_path.to_str().unwrap(),
            "COUNT_ord(author(smith)) - COUNT_ord(author(jones))",
        ]);
        let v: f64 = out.trim().parse().unwrap();
        assert!(v.abs() < 30.0, "difference should be near 0: {out}");

        // stats
        let out = run_ok(&["stats", snap_path.to_str().unwrap()]);
        assert!(out.contains("trees processed     : 200"), "{out}");
        assert!(out.contains("virtual streams"), "{out}");

        // heavy
        let out = run_ok(&["heavy", snap_path.to_str().unwrap(), "--limit", "5"]);
        assert!(out.lines().count() <= 5);

        std::fs::remove_file(&xml_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn merge_subcommand_matches_single_ingest() {
        let flags = ["--k", "3", "--s1", "30", "--streams", "17", "--topk", "0"];
        let shard_a: String = (0..100)
            .map(|_| "<article><author>smith</author><year>2001</year></article>\n")
            .collect();
        let shard_b: String = (0..100)
            .map(|_| "<inproceedings><author>jones</author></inproceedings>\n")
            .collect();
        let a_xml = tmpfile("merge-a.xml");
        let b_xml = tmpfile("merge-b.xml");
        let full_xml = tmpfile("merge-full.xml");
        std::fs::write(&a_xml, &shard_a).unwrap();
        std::fs::write(&b_xml, &shard_b).unwrap();
        std::fs::write(&full_xml, format!("{shard_a}{shard_b}")).unwrap();

        let a_snap = tmpfile("merge-a.snap");
        let b_snap = tmpfile("merge-b.snap");
        let full_snap = tmpfile("merge-full.snap");
        let merged_snap = tmpfile("merge-out.snap");
        for (xml, snap) in [(&a_xml, &a_snap), (&b_xml, &b_snap), (&full_xml, &full_snap)] {
            let mut args = vec![
                "ingest",
                xml.to_str().unwrap(),
                "--snapshot",
                snap.to_str().unwrap(),
            ];
            args.extend_from_slice(&flags);
            run_ok(&args);
        }
        let out = run_ok(&[
            "merge",
            a_snap.to_str().unwrap(),
            b_snap.to_str().unwrap(),
            "-o",
            merged_snap.to_str().unwrap(),
        ]);
        assert!(out.contains("merged 2 snapshots: 200 trees"), "{out}");

        // With top-k disabled, the merged synopsis is byte-for-byte the
        // one a single node would have built over the whole corpus.
        let merged = std::fs::read(&merged_snap).unwrap();
        let full = std::fs::read(&full_snap).unwrap();
        assert_eq!(merged, full, "merged snapshot differs from single-node ingest");

        // And the merged snapshot answers queries.
        let out = run_ok(&["query", merged_snap.to_str().unwrap(), "author(smith)"]);
        let v: f64 = out.trim().split('\t').nth(1).unwrap().parse().unwrap();
        assert!((v - 100.0).abs() < 30.0, "{out}");

        for p in [&a_xml, &b_xml, &full_xml, &a_snap, &b_snap, &full_snap, &merged_snap] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn remote_subscribe_streams_updates() {
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig {
                sketch: SketchTreeConfig {
                    max_pattern_edges: 3,
                    ..SketchTreeConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let addr = server.addr().to_string();
        // Background producer: small spaced batches so the subscriber
        // observes several distinct epochs while it waits.
        let feeder = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let Ok(mut c) = Client::connect(addr.as_str()) else { return };
                for _ in 0..100 {
                    let docs: Vec<String> = (0..4)
                        .map(|_| "<article><author>smith</author></article>".to_string())
                        .collect();
                    if c.ingest_xml(&docs).is_err() {
                        break; // server shut down under us; that's fine
                    }
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            })
        };
        let out = run_ok(&["remote-subscribe", &addr, "article(author)", "--updates", "3"]);
        assert!(out.contains("subscribed article(author)"), "{out}");
        assert_eq!(
            out.lines().filter(|l| l.starts_with("epoch ")).count(),
            3,
            "{out}"
        );
        server.shutdown().expect("clean shutdown");
        feeder.join().expect("feeder exits");
    }

    #[test]
    fn merge_usage_errors() {
        let mut sink = Vec::new();
        // No -o.
        assert!(matches!(
            run(&["merge".into(), "a.snap".into(), "b.snap".into()], &mut sink),
            Err(CliError::Usage(_))
        ));
        // Fewer than two inputs.
        assert!(matches!(
            run(
                &["merge".into(), "a.snap".into(), "-o".into(), "out.snap".into()],
                &mut sink
            ),
            Err(CliError::Usage(_))
        ));
        // -o without a value.
        assert!(matches!(
            run(
                &["merge".into(), "a.snap".into(), "b.snap".into(), "-o".into()],
                &mut sink
            ),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_errors() {
        let mut sink = Vec::new();
        assert!(matches!(
            run(&[], &mut sink),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["bogus".into()], &mut sink),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["ingest".into()], &mut sink),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["query".into(), "nope.bin".into()], &mut sink),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["wal-dump".into()], &mut sink),
            Err(CliError::Usage(_))
        ));
        // --wal-fsync-every without --wal-path is a configuration error,
        // not a silently ignored knob.
        assert!(matches!(
            run(
                &["serve".into(), "127.0.0.1:0".into(), "--wal-fsync-every".into(), "8".into()],
                &mut sink
            ),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn wal_dump_lists_frames_and_torn_tail() {
        let path = tmpfile("wal-dump.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = sketchtree_wal::Wal::open(&path, 1).expect("open wal");
        let labels = vec!["a".to_string(), "b".to_string()];
        let trees = vec![sketchtree_tree::Tree::node(
            sketchtree_tree::Label(0),
            vec![sketchtree_tree::Tree::leaf(sketchtree_tree::Label(1))],
        )];
        let payload = sketchtree_wal::encode_batch(&labels, &trees).expect("encode");
        wal.append(&payload).expect("append");
        wal.append(&payload).expect("append");
        drop(wal);
        let text = run_ok(&["wal-dump", path.to_str().expect("utf8 path")]);
        assert!(text.contains("seq      1"), "{text}");
        assert!(text.contains("2 frames, 2 trees"), "{text}");
        assert!(!text.contains("torn tail"), "{text}");
        // A crash-torn tail is reported but the file is left untouched.
        let before = std::fs::read(&path).expect("read");
        let mut torn = before.clone();
        torn.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &torn).expect("write");
        let text = run_ok(&["wal-dump", path.to_str().expect("utf8 path")]);
        assert!(text.contains("torn tail"), "{text}");
        assert_eq!(std::fs::read(&path).expect("read"), torn, "dump must not repair");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_is_io_error() {
        let mut sink = Vec::new();
        let r = run(
            &["stats".into(), "/definitely/not/here.bin".into()],
            &mut sink,
        );
        assert!(matches!(r, Err(CliError::Io(_))));
    }

    #[test]
    fn malformed_xml_reports_file() {
        let xml_path = tmpfile("bad.xml");
        std::fs::write(&xml_path, "<a><b></a>").unwrap();
        let mut sink = Vec::new();
        let r = run(
            &["ingest".into(), xml_path.to_str().unwrap().into()],
            &mut sink,
        );
        match r {
            Err(CliError::Failed(m)) => assert!(m.contains("bad.xml"), "{m}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        std::fs::remove_file(&xml_path).ok();
    }
}
