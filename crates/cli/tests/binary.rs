//! End-to-end tests of the compiled `sketchtree` binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sketchtree")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sketchtree-bin-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn binary_ingest_query_roundtrip() {
    let xml = tmp("c.xml");
    let snap = tmp("s.bin");
    let mut corpus = String::new();
    for _ in 0..100 {
        corpus.push_str("<r><a>x</a></r>");
    }
    std::fs::write(&xml, corpus).unwrap();

    let out = Command::new(bin())
        .args([
            "ingest",
            xml.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--streams",
            "13",
            "--s1",
            "30",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ingested 100 documents"));

    let out = Command::new(bin())
        .args(["query", snap.to_str().unwrap(), "r(a)"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let est: f64 = stdout.trim().split('\t').nth(1).unwrap().parse().unwrap();
    assert!((est - 100.0).abs() < 25.0, "{stdout}");

    std::fs::remove_file(&xml).ok();
    std::fs::remove_file(&snap).ok();
}

#[test]
fn binary_stdin_ingestion() {
    use std::io::Write;
    let snap = tmp("stdin.bin");
    let mut child = Command::new(bin())
        .args(["ingest", "-", "--snapshot", snap.to_str().unwrap(), "--streams", "7"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<a><b/></a><a><b/></a>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ingested 2 documents"));
    std::fs::remove_file(&snap).ok();
}

#[test]
fn binary_usage_exit_codes() {
    let out = Command::new(bin()).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = Command::new(bin())
        .args(["query", "/nonexistent.bin", "a"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn binary_unknown_subcommand_prints_usage_to_stderr() {
    let out = Command::new(bin())
        .args(["frobnicate", "x"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "unknown subcommand must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command 'frobnicate'"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("remote-query"), "usage lists all commands: {stderr}");
    assert!(out.stdout.is_empty(), "errors go to stderr, not stdout");
}

#[test]
fn binary_bad_flag_value_fails_with_message() {
    let out = Command::new(bin())
        .args(["ingest", "-", "--s1", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--s1"), "{stderr}");
}

/// Observability path through the binary: `serve --metrics-port 0`, drive a
/// workload, then read the same state three ways — remote `stats`, remote
/// `stats --metrics [--json]` over SKTP, and a raw HTTP scrape of the
/// advertised `/metrics` endpoint.
#[test]
fn binary_serve_metrics_port_and_remote_stats() {
    use std::io::{BufRead, BufReader, Read, Write};
    let xml = tmp("metrics.xml");
    let mut corpus = String::new();
    for _ in 0..80 {
        corpus.push_str("<r><a>x</a></r>\n");
    }
    std::fs::write(&xml, corpus).unwrap();

    let mut server = Command::new(bin())
        .args(["serve", "127.0.0.1:0", "--metrics-port", "0", "--streams", "13", "--s1", "30"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut lines = BufReader::new(server.stdout.as_mut().unwrap());
    let mut first_line = String::new();
    lines.read_line(&mut first_line).unwrap();
    let addr = first_line.trim().strip_prefix("listening on ").expect("address line").to_string();
    let mut second_line = String::new();
    lines.read_line(&mut second_line).unwrap();
    let metrics_url = second_line.trim().strip_prefix("metrics on ").expect("metrics line");
    let metrics_addr = metrics_url
        .strip_prefix("http://")
        .and_then(|u| u.strip_suffix("/metrics"))
        .expect("http://host:port/metrics")
        .to_string();

    let out = Command::new(bin())
        .args(["remote-ingest", &addr, xml.to_str().unwrap()])
        .output()
        .expect("remote-ingest runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = Command::new(bin())
        .args(["remote-query", &addr, "r(a)"])
        .output()
        .expect("remote-query runs");
    assert!(out.status.success());

    // Remote summary: same shape as the snapshot-file stats.
    let out = Command::new(bin()).args(["stats", &addr]).output().expect("stats runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trees processed     : 80"), "{stdout}");
    assert!(stdout.contains("virtual streams"), "{stdout}");

    // Full exposition over SKTP.
    let out = Command::new(bin())
        .args(["stats", &addr, "--metrics"])
        .output()
        .expect("stats --metrics runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sketchtree_ingest_trees_total 80"), "{text}");
    assert!(text.contains("sktp_request_seconds_count{opcode=\"ingest_xml\"}"), "{text}");

    // And as JSON.
    let out = Command::new(bin())
        .args(["stats", &addr, "--metrics", "--json"])
        .output()
        .expect("stats --metrics --json runs");
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("sketchtree_ingest_trees_total"), "{json}");

    // Raw HTTP scrape of the advertised endpoint.
    let mut s = std::net::TcpStream::connect(metrics_addr.replace("0.0.0.0", "127.0.0.1"))
        .expect("metrics endpoint reachable");
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut scrape = String::new();
    s.read_to_string(&mut scrape).unwrap();
    assert!(scrape.starts_with("HTTP/1.0 200"), "{scrape}");
    assert!(scrape.contains("sketchtree_trees_processed 80"), "{scrape}");

    let mut client = sketchtree_server::Client::connect(addr.as_str()).unwrap();
    client.shutdown().unwrap();
    assert!(server.wait().unwrap().success());
    std::fs::remove_file(&xml).ok();
}

/// Full networked path through the binary: `serve` on an ephemeral port,
/// `remote-ingest` a corpus, `remote-query` it, then shut the server
/// down over the wire and verify the checkpoint restarts.
#[test]
fn binary_serve_remote_roundtrip() {
    use std::io::{BufRead, BufReader};
    let xml = tmp("serve.xml");
    let snap = tmp("serve.snapshot");
    std::fs::remove_file(&snap).ok();
    let mut corpus = String::new();
    for _ in 0..120 {
        corpus.push_str("<r><a>x</a></r>\n");
    }
    std::fs::write(&xml, corpus).unwrap();

    let mut server = Command::new(bin())
        .args([
            "serve",
            "127.0.0.1:0",
            "--snapshot",
            snap.to_str().unwrap(),
            "--streams",
            "13",
            "--s1",
            "30",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut first_line = String::new();
    BufReader::new(server.stdout.as_mut().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .expect("address line")
        .to_string();

    let out = Command::new(bin())
        .args(["remote-ingest", &addr, xml.to_str().unwrap(), "--batch", "32"])
        .output()
        .expect("remote-ingest runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ingested 120 documents"), "{stdout}");

    let out = Command::new(bin())
        .args(["remote-query", &addr, "r(a)"])
        .output()
        .expect("remote-query runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let est: f64 = stdout.trim().split('\t').nth(1).unwrap().parse().unwrap();
    assert!((est - 120.0).abs() < 30.0, "{stdout}");

    // Shut the server down over the wire; the process exits cleanly and
    // leaves a checkpoint behind.
    let mut client = sketchtree_server::Client::connect(addr.as_str()).unwrap();
    client.shutdown().unwrap();
    let status = server.wait().expect("server exits");
    assert!(status.success());
    assert!(snap.exists(), "shutdown writes the checkpoint");

    // A restarted server resumes from the checkpoint.
    let mut server = Command::new(bin())
        .args(["serve", "127.0.0.1:0", "--snapshot", snap.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server restarts");
    let mut first_line = String::new();
    BufReader::new(server.stdout.as_mut().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    let addr = first_line.trim().strip_prefix("listening on ").unwrap().to_string();
    let mut client = sketchtree_server::Client::connect(addr.as_str()).unwrap();
    assert_eq!(client.stats().unwrap().trees_processed, 120);
    client.shutdown().unwrap();
    assert!(server.wait().unwrap().success());

    std::fs::remove_file(&xml).ok();
    std::fs::remove_file(&snap).ok();
}
