//! End-to-end tests of the compiled `sketchtree` binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sketchtree")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sketchtree-bin-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn binary_ingest_query_roundtrip() {
    let xml = tmp("c.xml");
    let snap = tmp("s.bin");
    let mut corpus = String::new();
    for _ in 0..100 {
        corpus.push_str("<r><a>x</a></r>");
    }
    std::fs::write(&xml, corpus).unwrap();

    let out = Command::new(bin())
        .args([
            "ingest",
            xml.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
            "--streams",
            "13",
            "--s1",
            "30",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ingested 100 documents"));

    let out = Command::new(bin())
        .args(["query", snap.to_str().unwrap(), "r(a)"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let est: f64 = stdout.trim().split('\t').nth(1).unwrap().parse().unwrap();
    assert!((est - 100.0).abs() < 25.0, "{stdout}");

    std::fs::remove_file(&xml).ok();
    std::fs::remove_file(&snap).ok();
}

#[test]
fn binary_stdin_ingestion() {
    use std::io::Write;
    let snap = tmp("stdin.bin");
    let mut child = Command::new(bin())
        .args(["ingest", "-", "--snapshot", snap.to_str().unwrap(), "--streams", "7"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"<a><b/></a><a><b/></a>")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ingested 2 documents"));
    std::fs::remove_file(&snap).ok();
}

#[test]
fn binary_usage_exit_codes() {
    let out = Command::new(bin()).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = Command::new(bin())
        .args(["query", "/nonexistent.bin", "a"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}
