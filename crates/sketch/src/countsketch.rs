//! Count sketch (Charikar, Chen & Farach-Colton, ICALP 2002).
//!
//! The paper cites COUNT sketches as an alternative point-estimate structure
//! (Section 2.2) and models its virtual streams after Count sketch buckets
//! (Section 5.3).  We implement it as a comparator: `d` rows of `w`
//! counters; each value hashes to one bucket per row with a ±1 sign; the
//! estimate is the median over rows of `sign · bucket`.  Hashing into
//! buckets plays the same variance-splitting role as SketchTree's virtual
//! streams, which is why the ablation benchmarks compare the two.

use sketchtree_hash::{gf2p64, KWiseSign, Sign, SplitMix64};

/// A Count sketch.
#[derive(Debug, Clone)]
pub struct CountSketch {
    width: usize,
    rows: Vec<Row>,
}

#[derive(Debug, Clone)]
struct Row {
    /// Pairwise-independent bucket hash: degree-1 polynomial over GF(2^64).
    bucket_coeffs: [u64; 2],
    sign: KWiseSign,
    counters: Vec<i64>,
}

impl Row {
    #[inline]
    fn bucket(&self, value: u64, width: usize) -> usize {
        let h = gf2p64::eval_poly(&self.bucket_coeffs, value);
        // Multiply-shift range reduction avoids the modulo bias that
        // `h % width` would introduce for non-power-of-two widths.
        // lint:allow(L2, reason = "usize -> u128 is widening, and the shifted product is < width so it fits back in usize")
        ((u128::from(h) * width as u128) >> 64) as usize
    }
}

impl CountSketch {
    /// Creates a sketch with `depth` rows of `width` buckets.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    pub fn new(seed: u64, depth: usize, width: usize) -> Self {
        assert!(depth > 0 && width > 0, "depth and width must be positive");
        let rows = (0..depth)
            .map(|r| {
                // lint:allow(L2, reason = "usize -> u64 is widening on all supported targets")
                let mut rng = SplitMix64::new(SplitMix64::derive(seed, r as u64));
                Row {
                    bucket_coeffs: [rng.next_u64(), rng.next_nonzero_u64()],
                    sign: KWiseSign::from_seed(rng.next_u64(), 4),
                    counters: vec![0; width],
                }
            })
            .collect();
        Self { width, rows }
    }

    /// Applies `count` occurrences of `value` (negative to delete).
    ///
    /// Buckets wrap on overflow, preserving insert/delete symmetry mod 2⁶⁴
    /// (same reasoning as [`crate::AmsSketch::update`]).
    pub fn update(&mut self, value: u64, count: i64) {
        let width = self.width;
        for row in &mut self.rows {
            let b = row.bucket(value, width);
            if let Some(c) = row.counters.get_mut(b) {
                *c = c.wrapping_add(row.sign.sign(value).wrapping_mul(count));
            }
        }
    }

    /// Median-over-rows point estimate of the frequency of `value`.
    pub fn estimate(&self, value: u64) -> f64 {
        let mut ests: Vec<f64> = self
            .rows
            .iter()
            .map(|row| {
                let b = row.bucket(value, self.width);
                let c = row.counters.get(b).copied().unwrap_or(0);
                (row.sign.sign(value) * c) as f64
            })
            .collect();
        crate::bank::median_in_place(&mut ests)
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * (self.width * 8 + 3 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_isolated_value() {
        let mut cs = CountSketch::new(3, 5, 256);
        cs.update(42, 17);
        let est = cs.estimate(42);
        assert_eq!(est, 17.0);
    }

    #[test]
    fn insert_delete_symmetry() {
        let mut cs = CountSketch::new(9, 5, 64);
        cs.update(1, 10);
        cs.update(2, 20);
        cs.update(1, -10);
        cs.update(2, -20);
        assert_eq!(cs.estimate(1), 0.0);
        assert_eq!(cs.estimate(2), 0.0);
    }

    #[test]
    fn skewed_stream_accuracy() {
        let mut cs = CountSketch::new(5, 7, 512);
        let freqs: Vec<(u64, i64)> = (1..=300u64).map(|v| (v, (3000 / v) as i64)).collect();
        for &(v, f) in &freqs {
            cs.update(v, f);
        }
        for &(v, f) in freqs.iter().take(20) {
            let est = cs.estimate(v);
            assert!(
                (est - f as f64).abs() / f as f64 <= 0.35,
                "value {v}: est {est} vs {f}"
            );
        }
    }

    #[test]
    fn absent_value_small() {
        let mut cs = CountSketch::new(11, 7, 512);
        for v in 0..100u64 {
            cs.update(v, 5);
        }
        assert!(cs.estimate(999_999).abs() <= 10.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = CountSketch::new(4, 3, 32);
        let mut b = CountSketch::new(4, 3, 32);
        for v in 0..50 {
            a.update(v, 2);
            b.update(v, 2);
        }
        assert_eq!(a.estimate(25), b.estimate(25));
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        CountSketch::new(0, 3, 0);
    }

    #[test]
    fn memory_accounting() {
        let cs = CountSketch::new(0, 5, 100);
        assert_eq!(cs.memory_bytes(), 5 * (100 * 8 + 24));
    }
}
