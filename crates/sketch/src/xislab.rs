//! A shared, contiguous table of ξ-family coefficients.
//!
//! Every sketch in a bank — and, because all virtual-stream banks share the
//! master seed (paper Section 5.3), every sketch in the whole synopsis —
//! evaluates a k-wise independent sign family derived from
//! `SplitMix64::derive(seed, sketch_idx)`.  Storing each family in its own
//! heap allocation puts one pointer chase between every counter update and
//! its coefficients; packing all of them into one flat `u64` slab with a
//! fixed stride turns the per-value sign sweep into a linear walk over a
//! single allocation.
//!
//! The coefficients are *copied out of* [`KWiseSign`] instances constructed
//! exactly as before, so the signs the slab produces are bit-identical to
//! the per-sketch construction — the property every snapshot- and
//! merge-parity test in the workspace leans on.

use sketchtree_hash::kwise::sign_from_coefficients;
use sketchtree_hash::{m61, KWiseSign, SplitMix64};

/// Packed ξ coefficients for `families` sign families of a common
/// independence degree `k`, family `i` occupying `coeffs[i*k .. (i+1)*k]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XiSlab {
    coeffs: Box<[u64]>,
    k: usize,
}

impl XiSlab {
    /// Generates `families` coefficient rows from `seed`, row `idx` drawn
    /// exactly like `KWiseSign::from_seed(SplitMix64::derive(seed, idx), k)`
    /// — same derivation, same rejection sampling, same coefficients.
    ///
    /// # Panics
    /// Panics if `families == 0` or `k < 2` (via [`KWiseSign::from_seed`]).
    pub fn generate(seed: u64, families: usize, k: usize) -> Self {
        assert!(families > 0, "a ξ slab needs at least one family");
        let mut coeffs = Vec::with_capacity(families.saturating_mul(k));
        for idx in 0..families {
            // lint:allow(L2, reason = "usize -> u64 family index is widening on all supported targets")
            let family = KWiseSign::from_seed(SplitMix64::derive(seed, idx as u64), k);
            coeffs.extend_from_slice(family.coefficients());
        }
        Self { coeffs: coeffs.into_boxed_slice(), k }
    }

    /// The independence degree `k` (the per-family stride).
    #[inline]
    pub fn independence(&self) -> usize {
        self.k
    }

    /// Number of families packed in the slab.
    #[inline]
    pub fn families(&self) -> usize {
        self.coeffs.len() / self.k
    }

    /// The coefficient row of family `idx`, constant term first.
    ///
    /// # Panics
    /// Panics if `idx >= families()`.
    #[inline]
    pub fn coefficients(&self, idx: usize) -> &[u64] {
        // lint:allow(L3, reason = "idx * k cannot overflow: both factors are bounded by coeffs.len(), itself a successful allocation size")
        // lint:allow(L1, reason = "documented caller contract: idx < families(), so the slice is in bounds")
        &self.coeffs[idx * self.k..(idx + 1) * self.k]
    }

    /// ξ sign of family `idx` for a key already reduced with
    /// [`m61::reduce`] — the hot-path form, so a value's reduction happens
    /// once per insert instead of once per sketch.
    #[inline]
    pub fn sign_reduced(&self, idx: usize, reduced_key: u64) -> i64 {
        sign_from_coefficients(self.coefficients(idx), reduced_key)
    }

    /// Iterates the coefficient rows in family order — the bounds-check-free
    /// form of [`XiSlab::coefficients`] for whole-slab sweeps.
    #[inline]
    pub fn rows(&self) -> std::slice::ChunksExact<'_, u64> {
        self.coeffs.chunks_exact(self.k)
    }

    /// Evaluates every family's sign for one already-reduced key into
    /// `out` (±1 as `i8`), one pass over the slab.  Bit-identical to
    /// calling [`XiSlab::sign_reduced`] per family.
    ///
    /// Degree-4 slabs (the default independence) evaluate in the power
    /// basis: `x²` and `x³` are computed once for the whole slab, and each
    /// family then needs three *independent* multiplications — unlike
    /// Horner's serial chain, they pipeline across the slab instead of
    /// stalling on multiply latency.  Every [`m61`] operation returns the
    /// canonical residue in `[0, P)`, so the power-basis value equals the
    /// Horner value bit for bit (asserted by the equivalence test below).
    ///
    /// # Panics
    /// Panics if `out.len() != families()`.
    pub fn fill_signs_reduced(&self, reduced_key: u64, out: &mut [i8]) {
        assert_eq!(out.len(), self.families(), "sign buffer must cover every family");
        if self.k == 4 {
            let x = reduced_key;
            let x2 = m61::mul(x, x);
            let x3 = m61::mul(x2, x);
            for (o, row) in out.iter_mut().zip(self.rows()) {
                // lint:allow(L1, reason = "rows() is chunks_exact(4), which yields only length-4 slices")
                let [c0, c1, c2, c3] = *row else { unreachable!("chunks_exact(4)") };
                let v = m61::add(
                    m61::add(c0, m61::mul(c1, x)),
                    m61::add(m61::mul(c2, x2), m61::mul(c3, x3)),
                );
                // lint:allow(L2, L3, reason = "1 - 2·bit is ±1, which always fits i8; operands are 0 or 1, so no overflow")
                *o = (1 - 2 * ((v & 1) as i64)) as i8;
            }
        } else {
            for (o, row) in out.iter_mut().zip(self.rows()) {
                // lint:allow(L2, reason = "sign_from_coefficients returns ±1, which always fits i8")
                *o = sign_from_coefficients(row, reduced_key) as i8;
            }
        }
    }

    /// ξ sign of family `idx` for an arbitrary key.
    #[inline]
    pub fn sign(&self, idx: usize, key: u64) -> i64 {
        self.sign_reduced(idx, m61::reduce(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_hash::Sign;

    /// The slab must reproduce the per-sketch construction bit for bit:
    /// same derivation chain, same coefficients, same signs.
    #[test]
    fn slab_matches_per_family_kwise() {
        let (seed, families, k) = (0x5EED, 12usize, 5usize);
        let slab = XiSlab::generate(seed, families, k);
        assert_eq!(slab.families(), families);
        assert_eq!(slab.independence(), k);
        for idx in 0..families {
            // lint:allow(L2, reason = "usize -> u64 is widening")
            let reference = KWiseSign::from_seed(SplitMix64::derive(seed, idx as u64), k);
            assert_eq!(slab.coefficients(idx), reference.coefficients());
            for key in [0u64, 1, 42, 1 << 61, u64::MAX] {
                assert_eq!(slab.sign(idx, key), reference.sign(key), "family {idx} key {key}");
            }
        }
    }

    #[test]
    fn reduced_and_unreduced_sign_agree() {
        let slab = XiSlab::generate(9, 3, 4);
        for key in [0u64, 7, m61::P, m61::P + 5, u64::MAX] {
            let reduced = m61::reduce(key);
            for idx in 0..3 {
                assert_eq!(slab.sign(idx, key), slab.sign_reduced(idx, reduced));
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_families_rejected() {
        XiSlab::generate(0, 0, 4);
    }

    #[test]
    fn fill_signs_matches_per_family_eval() {
        for k in [4usize, 5, 7] {
            let slab = XiSlab::generate(0xABCD, 9, k);
            let mut buf = vec![0i8; slab.families()];
            for key in [0u64, 1, 42, m61::P, u64::MAX] {
                let reduced = m61::reduce(key);
                slab.fill_signs_reduced(reduced, &mut buf);
                for (idx, &sg) in buf.iter().enumerate() {
                    assert_eq!(i64::from(sg), slab.sign_reduced(idx, reduced), "k {k} family {idx}");
                }
            }
        }
    }
}
