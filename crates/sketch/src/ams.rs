//! The AMS (tug-of-war) sketch: one randomized linear projection.
//!
//! Paper Section 3: "Compute `X = Σ f_i ξ_i` … Each time a value `i` occurs
//! in `S`, simply add `ξ_i` to `X`."  The single counter supports:
//!
//! * **insert/delete symmetry** — removing `m` instances of `t` is
//!   `X -= m·ξ_t`, the property the top-k strategy of Section 5.2 exploits;
//! * **point estimation** — `ξ_q · X` is an unbiased estimator of `f_q`
//!   with variance at most the self-join size (Equations 1–2);
//! * **second-moment estimation** — `X²` is an unbiased estimator of
//!   `F₂ = Σ f_i²` (the original AMS result), which SketchTree uses to
//!   report residual self-join sizes.

use sketchtree_hash::{KWiseSign, Sign};

/// One AMS counter with its ξ family.
///
/// ```
/// use sketchtree_sketch::AmsSketch;
/// let mut x = AmsSketch::new(7, 4);
/// x.update(42, 10);     // ten occurrences of value 42
/// x.update(42, -10);    // deletion is subtraction (Section 5.2's lever)
/// assert_eq!(x.raw(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct AmsSketch {
    xi: KWiseSign,
    x: i64,
}

impl AmsSketch {
    /// Creates an empty sketch whose ξ family is derived from `seed` with
    /// the given independence degree (4 for plain counts; `2k+1` for
    /// expressions with product terms of size `k` — see [`crate::expr`]).
    pub fn new(seed: u64, independence: usize) -> Self {
        Self {
            xi: KWiseSign::from_seed(seed, independence),
            x: 0,
        }
    }

    /// The ξ value for a key.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        self.xi.sign(key)
    }

    /// Applies `count` occurrences of `value` (negative to delete).
    ///
    /// The counter wraps on overflow: wrapping arithmetic is a group
    /// operation, so insert/delete symmetry (`X -= m·ξ_t` undoes
    /// `X += m·ξ_t`) holds mod 2⁶⁴ even across a wrap, whereas a panic
    /// or saturation would break it.
    #[inline]
    pub fn update(&mut self, value: u64, count: i64) {
        self.x = self.x.wrapping_add(self.sign(value).wrapping_mul(count));
    }

    /// The raw counter `X`.
    #[inline]
    pub fn raw(&self) -> i64 {
        self.x
    }

    /// Adds a precomputed `sign × count` contribution directly to `X`
    /// (fast path for callers that already hold the ξ value).  Wraps on
    /// overflow for the same symmetry reason as [`AmsSketch::update`].
    #[inline]
    pub fn add_raw(&mut self, delta: i64) {
        self.x = self.x.wrapping_add(delta);
    }

    /// Overwrites the raw counter (snapshot restore).
    #[inline]
    pub fn set_raw(&mut self, x: i64) {
        self.x = x;
    }

    /// Unbiased point estimate `ξ_q · X` of the frequency of `value`.
    #[inline]
    pub fn estimate(&self, value: u64) -> i64 {
        self.sign(value) * self.x
    }

    /// Unbiased second-moment estimate `X²` of `Σ f_i²`.
    #[inline]
    pub fn second_moment(&self) -> i64 {
        self.x * self.x
    }

    /// The independence degree of the ξ family.
    #[inline]
    pub fn independence(&self) -> usize {
        self.xi.independence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_symmetry() {
        let mut s = AmsSketch::new(7, 4);
        s.update(42, 5);
        s.update(99, 3);
        s.update(42, -5);
        s.update(99, -3);
        assert_eq!(s.raw(), 0);
    }

    #[test]
    fn single_value_estimate_is_exact() {
        // A stream with only one distinct value: ξ_q X = ξ_q² f_q = f_q.
        let mut s = AmsSketch::new(3, 4);
        s.update(1234, 17);
        assert_eq!(s.estimate(1234), 17);
    }

    #[test]
    fn estimate_unbiased_over_seeds() {
        // Fixed stream; average ξ_q X over many independent sketches → f_q.
        let freqs: &[(u64, i64)] = &[(1, 100), (2, 50), (3, 10), (4, 1)];
        for &(q, fq) in freqs {
            let mut sum = 0i64;
            let n = 3000;
            for seed in 0..n {
                let mut s = AmsSketch::new(seed, 4);
                for &(v, f) in freqs {
                    s.update(v, f);
                }
                sum += s.estimate(q);
            }
            let mean = sum as f64 / n as f64;
            // SJ = 100²+50²+10²+1² = 12601; std of the mean ≈ sqrt(12601/3000) ≈ 2.
            assert!(
                (mean - fq as f64).abs() < 10.0,
                "value {q}: mean {mean} vs true {fq}"
            );
        }
    }

    #[test]
    fn second_moment_unbiased_over_seeds() {
        let freqs: &[(u64, i64)] = &[(10, 30), (20, 20), (30, 10)];
        let true_f2: i64 = freqs.iter().map(|&(_, f)| f * f).sum();
        let n = 3000;
        let mut sum = 0f64;
        for seed in 0..n {
            let mut s = AmsSketch::new(seed, 4);
            for &(v, f) in freqs {
                s.update(v, f);
            }
            sum += s.second_moment() as f64;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - true_f2 as f64).abs() / (true_f2 as f64) < 0.15,
            "mean {mean} vs true {true_f2}"
        );
    }

    #[test]
    fn absent_value_estimates_near_zero_on_average() {
        let n = 3000;
        let mut sum = 0i64;
        for seed in 0..n {
            let mut s = AmsSketch::new(seed, 4);
            s.update(5, 1000);
            sum += s.estimate(777); // 777 never inserted
        }
        assert!((sum as f64 / n as f64).abs() < 60.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = AmsSketch::new(11, 4);
        let mut b = AmsSketch::new(11, 4);
        for v in 0..100 {
            a.update(v, 1);
            b.update(v, 1);
        }
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.estimate(50), b.estimate(50));
    }
}
