//! Query expressions over tree-pattern counts — paper Section 4.
//!
//! The grammar
//!
//! ```text
//! E → E + E | E − E | E × E | COUNT_ord(Q)
//! ```
//!
//! is represented by [`Expr`].  To estimate an expression, each
//! `COUNT_ord(Q_i)` is replaced by `ξ_i X`, the result is expanded into a
//! polynomial in `X`, and each term is divided by the factorial of its `X`
//! power — Appendix C proves the result `E''` is an unbiased estimator.
//! [`Expr::expand`] performs exactly that symbolic expansion, yielding a
//! list of [`Term`]s `coeff · Xᵏ/k! · ξ_{q₁}⋯ξ_{q_k}` that
//! [`crate::bank::SketchBank`] evaluates numerically.
//!
//! The paper assumes "each terminal symbol in the query expression is
//! distinct"; [`Expr::expand`] enforces this (a repeated query inside one
//! product would make `ξ_q² = 1` silently bias the estimator) and also
//! reports the ξ independence the expression needs: a product of `k`
//! distinct counts requires `(2k+1)`-wise independent ξ variables
//! (Appendix B uses 5-wise for pairs).

use std::collections::HashSet;
use std::fmt;

/// A query expression over one-dimensional query mappings.
///
/// ```
/// use sketchtree_sketch::Expr;
/// // COUNT(q1)·COUNT(q2) expands to one term needing 5-wise ξ.
/// let (terms, indep) = Expr::product_of_counts(&[1, 2]).expand().unwrap();
/// assert_eq!(terms.len(), 1);
/// assert_eq!(indep, 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// `COUNT_ord(Q)` for the pattern whose one-dimensional mapping is the
    /// given value.
    Count(u64),
    /// Sum of two sub-expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two sub-expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two sub-expressions.
    Mul(Box<Expr>, Box<Expr>),
}

/// One expanded estimator term `coeff · X^(queries.len())/k! · Πξ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// Integer coefficient (signs from subtraction; merging of like terms).
    pub coeff: i64,
    /// The distinct query mappings multiplied in this term, sorted.
    pub queries: Vec<u64>,
}

/// Errors from [`Expr::expand`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// The same query mapping occurs more than once in the expression.
    DuplicateQuery(u64),
    /// A term coefficient overflowed `i64` during expansion.  Unchecked
    /// arithmetic here would panic under `overflow-checks` and silently
    /// bias the estimator without them.
    CoefficientOverflow,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::DuplicateQuery(q) => {
                write!(f, "query mapping {q} occurs more than once in the expression")
            }
            ExprError::CoefficientOverflow => {
                write!(f, "term coefficient overflowed during expression expansion")
            }
        }
    }
}

impl std::error::Error for ExprError {}

impl Expr {
    /// Convenience constructor for a sum of counts (Theorem 2 queries).
    ///
    /// # Panics
    /// Panics if `queries` is empty — an empty sum has no `Expr` encoding.
    pub fn sum_of_counts(queries: &[u64]) -> Expr {
        let mut it = queries.iter();
        // lint:allow(L1, reason = "documented precondition: an empty sum has no Expr encoding")
        let first = Expr::Count(*it.next().expect("at least one query"));
        it.fold(first, |acc, &q| Expr::Add(Box::new(acc), Box::new(Expr::Count(q))))
    }

    /// Convenience constructor for a product of counts.
    ///
    /// # Panics
    /// Panics if `queries` is empty — an empty product has no `Expr` encoding.
    pub fn product_of_counts(queries: &[u64]) -> Expr {
        let mut it = queries.iter();
        // lint:allow(L1, reason = "documented precondition: an empty product has no Expr encoding")
        let first = Expr::Count(*it.next().expect("at least one query"));
        it.fold(first, |acc, &q| Expr::Mul(Box::new(acc), Box::new(Expr::Count(q))))
    }

    /// All query mappings appearing in the expression.
    pub fn queries(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<u64>) {
        match self {
            Expr::Count(q) => out.push(*q),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect(out);
                b.collect(out);
            }
        }
    }

    /// Expands into estimator terms, merging like terms, and returns
    /// `(terms, required_independence)`.
    pub fn expand(&self) -> Result<(Vec<Term>, usize), ExprError> {
        // Distinctness across the whole expression, per the paper.
        let all = self.queries();
        let mut seen = HashSet::new();
        for q in &all {
            if !seen.insert(*q) {
                return Err(ExprError::DuplicateQuery(*q));
            }
        }
        let mut terms = self.expand_rec()?;
        // Merge like terms (same query multiset — here: same sorted vec).
        terms.sort_by(|a, b| a.queries.cmp(&b.queries));
        let mut merged: Vec<Term> = Vec::new();
        for t in terms {
            match merged.last_mut() {
                Some(last) if last.queries == t.queries => {
                    last.coeff = last
                        .coeff
                        .checked_add(t.coeff)
                        .ok_or(ExprError::CoefficientOverflow)?;
                }
                _ => merged.push(t),
            }
        }
        merged.retain(|t| t.coeff != 0);
        let max_k = merged.iter().map(|t| t.queries.len()).max().unwrap_or(0);
        Ok((merged, 2 * max_k + 1))
    }

    fn expand_rec(&self) -> Result<Vec<Term>, ExprError> {
        match self {
            Expr::Count(q) => Ok(vec![Term {
                coeff: 1,
                queries: vec![*q],
            }]),
            Expr::Add(a, b) => {
                let mut t = a.expand_rec()?;
                t.extend(b.expand_rec()?);
                Ok(t)
            }
            Expr::Sub(a, b) => {
                let mut t = a.expand_rec()?;
                t.extend(b.expand_rec()?.into_iter().map(|mut x| {
                    x.coeff = -x.coeff;
                    x
                }));
                Ok(t)
            }
            Expr::Mul(a, b) => {
                let ta = a.expand_rec()?;
                let tb = b.expand_rec()?;
                let mut out = Vec::with_capacity(ta.len() * tb.len());
                for x in &ta {
                    for y in &tb {
                        let mut queries = x.queries.clone();
                        queries.extend_from_slice(&y.queries);
                        queries.sort_unstable();
                        out.push(Term {
                            coeff: mul_coeff(x.coeff, y.coeff)?,
                            queries,
                        });
                    }
                }
                Ok(out)
            }
        }
    }
}

/// Checked coefficient product shared by every expansion site — the raw
/// `*` would panic under the workspace's dev/test `overflow-checks` and
/// silently wrap (biasing the estimator) in release.
fn mul_coeff(a: i64, b: i64) -> Result<i64, ExprError> {
    a.checked_mul(b).ok_or(ExprError::CoefficientOverflow)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Count(q) => write!(f, "COUNT({q})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(q: u64) -> Expr {
        Expr::Count(q)
    }

    #[test]
    fn single_count() {
        let (terms, indep) = c(5).expand().unwrap();
        assert_eq!(
            terms,
            vec![Term {
                coeff: 1,
                queries: vec![5]
            }]
        );
        assert_eq!(indep, 3); // 2*1+1; banks use >= 4 anyway for variance
    }

    #[test]
    fn sum_of_counts_expansion() {
        let (terms, _) = Expr::sum_of_counts(&[1, 2, 3]).expand().unwrap();
        assert_eq!(terms.len(), 3);
        assert!(terms.iter().all(|t| t.coeff == 1 && t.queries.len() == 1));
    }

    #[test]
    fn subtraction_flips_sign() {
        let e = Expr::Sub(Box::new(c(1)), Box::new(c(2)));
        let (terms, _) = e.expand().unwrap();
        assert_eq!(terms[0], Term { coeff: 1, queries: vec![1] });
        assert_eq!(terms[1], Term { coeff: -1, queries: vec![2] });
    }

    #[test]
    fn paper_example3_expression() {
        // COUNT(Q1)×COUNT(Q2) + COUNT(Q3)×COUNT(Q4) − COUNT(Q5)×COUNT(Q6)
        let e = Expr::Sub(
            Box::new(Expr::Add(
                Box::new(Expr::Mul(Box::new(c(1)), Box::new(c(2)))),
                Box::new(Expr::Mul(Box::new(c(3)), Box::new(c(4)))),
            )),
            Box::new(Expr::Mul(Box::new(c(5)), Box::new(c(6)))),
        );
        let (terms, indep) = e.expand().unwrap();
        assert_eq!(terms.len(), 3);
        assert!(terms.contains(&Term { coeff: 1, queries: vec![1, 2] }));
        assert!(terms.contains(&Term { coeff: 1, queries: vec![3, 4] }));
        assert!(terms.contains(&Term { coeff: -1, queries: vec![5, 6] }));
        assert_eq!(indep, 5); // matches Appendix B's 5-wise requirement
    }

    #[test]
    fn distribution_over_sums() {
        // (C1 + C2) × C3 = C1·C3 + C2·C3
        let e = Expr::Mul(
            Box::new(Expr::Add(Box::new(c(1)), Box::new(c(2)))),
            Box::new(c(3)),
        );
        let (terms, _) = e.expand().unwrap();
        assert_eq!(terms.len(), 2);
        assert!(terms.contains(&Term { coeff: 1, queries: vec![1, 3] }));
        assert!(terms.contains(&Term { coeff: 1, queries: vec![2, 3] }));
    }

    #[test]
    fn triple_product_independence() {
        let (terms, indep) = Expr::product_of_counts(&[1, 2, 3]).expand().unwrap();
        assert_eq!(terms, vec![Term { coeff: 1, queries: vec![1, 2, 3] }]);
        assert_eq!(indep, 7);
    }

    #[test]
    fn duplicate_query_rejected() {
        let e = Expr::Mul(Box::new(c(9)), Box::new(c(9)));
        assert_eq!(e.expand(), Err(ExprError::DuplicateQuery(9)));
        let e2 = Expr::Add(Box::new(c(9)), Box::new(c(9)));
        assert_eq!(e2.expand(), Err(ExprError::DuplicateQuery(9)));
    }

    #[test]
    fn coefficient_overflow_is_an_error_not_a_panic() {
        // Coefficients reach the multiplication through expansion; at the
        // extremes the product no longer fits an i64.  Pre-fix this was an
        // unchecked `*` — a debug panic (workspace overflow-checks) and a
        // silent wrap in release.
        assert_eq!(mul_coeff(i64::MAX, 2), Err(ExprError::CoefficientOverflow));
        assert_eq!(mul_coeff(i64::MIN, -1), Err(ExprError::CoefficientOverflow));
        assert_eq!(mul_coeff(-3, 7), Ok(-21));
    }

    #[test]
    fn queries_lists_all() {
        let e = Expr::Sub(
            Box::new(Expr::sum_of_counts(&[1, 2])),
            Box::new(Expr::product_of_counts(&[3, 4])),
        );
        let mut q = e.queries();
        q.sort_unstable();
        assert_eq!(q, vec![1, 2, 3, 4]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::Mul(Box::new(c(1)), Box::new(c(2)));
        assert_eq!(e.to_string(), "(COUNT(1) * COUNT(2))");
    }
}
