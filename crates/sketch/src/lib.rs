//! Sketch machinery for SketchTree.
//!
//! Everything between "a stream of one-dimensional values" and "an
//! approximate count with provable error bounds" lives here, implemented
//! from scratch on top of `sketchtree-hash`:
//!
//! * [`ams`] — the single tug-of-war counter `X = Σ f_i ξ_i` of Alon,
//!   Matias & Szegedy (paper Section 3), with insert/delete symmetry;
//! * [`bank`] — [`bank::SketchBank`], the boosted `s1 × s2` array with
//!   mean-of-s1 / median-of-s2 estimation (Theorem 1), set queries
//!   (Theorem 2), self-join-size (F₂) estimation, and general
//!   query-expression estimation with the `Xᵏ/k!·Πξ` construction of
//!   Section 4 / Appendix C;
//! * [`expr`] — the `+ − ×` query-expression AST and its expansion into
//!   estimator terms;
//! * [`heap`] — an indexed min-heap supporting decrease/removal by key
//!   (the `H` of Algorithm 4);
//! * [`topk`] — [`topk::TopKTracker`], the top-k frequent-value strategy of
//!   Section 5.2 (Algorithm 4) that deletes heavy hitters from the sketches
//!   to shrink the residual self-join size;
//! * [`virtual_streams`] — [`virtual_streams::StreamSynopsis`], the complete
//!   synopsis combining virtual streams (Section 5.3), per-stream top-k
//!   tracking and shared-seed sketch banks behind one insert/estimate API;
//! * [`xislab`] — [`xislab::XiSlab`], the packed ξ-coefficient table every
//!   bank of a synopsis shares (one allocation, fixed stride — the ingest
//!   hot path's memory layout);
//! * [`countsketch`] — the Count sketch of Charikar et al. as a comparator;
//! * [`frequent`] — deterministic Misra–Gries and Space-Saving heavy-hitter
//!   baselines for the ablation benchmarks.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ams;
pub mod bank;
pub mod countsketch;
pub mod expr;
pub mod frequent;
pub mod heap;
pub mod topk;
pub mod virtual_streams;
pub mod xislab;

pub use ams::AmsSketch;
pub use bank::{SketchBank, SketchView};
pub use expr::{Expr, ExprError};
pub use topk::TopKTracker;
pub use virtual_streams::{StreamSynopsis, SynopsisConfig, SynopsisState};
pub use xislab::XiSlab;
