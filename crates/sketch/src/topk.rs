//! Top-k frequent-value tracking — paper Section 5.2, Algorithm 4.
//!
//! Theorems 1 and 2 tie the memory needed for a target accuracy to the
//! *self-join size* `SJ(S) = Σ f_i²` of the mapped stream.  Since tree
//! pattern frequencies are heavily skewed, deleting the few heaviest values
//! from the sketches (AMS deletion is just subtraction) collapses `SJ` and
//! buys accuracy for free.  The tracker maintains up to `k` values with
//! their estimated frequencies (`H` + `L` of the paper, unified in one
//! indexed heap) and preserves the paper's **delete condition**: *if value
//! `v` is tracked with frequency `f_v`, then exactly `f_v` instances of `v`
//! have been deleted from the sketched stream.*
//!
//! At query time the deleted instances of tracked values that occur in the
//! query are virtually added back (the restore lists consumed by
//! [`crate::bank::SketchBank`]).

use crate::bank::SketchBank;
use crate::heap::IndexedMinHeap;

/// Tracks the top-k most frequent values of a sketched stream.
#[derive(Debug, Clone)]
pub struct TopKTracker {
    capacity: usize,
    /// `H` and `L` of Algorithm 4 in one structure: tracked value →
    /// estimated frequency, min-heap ordered by frequency.
    tracked: IndexedMinHeap,
    /// Reusable group-mean buffer for the per-value frequency estimate —
    /// keeps the ingest hot path allocation-free after warm-up.
    est_scratch: Vec<f64>,
}

impl TopKTracker {
    /// Creates a tracker for up to `capacity` values (0 disables tracking).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tracked: IndexedMinHeap::with_capacity(capacity),
            est_scratch: Vec::new(),
        }
    }

    /// The capacity `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of values currently tracked.
    pub fn len(&self) -> usize {
        self.tracked.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.tracked.is_empty()
    }

    /// Algorithm 4: processes one stream value *after* the bank has been
    /// updated with its occurrence.
    pub fn process(&mut self, t: u64, bank: &mut SketchBank) {
        if self.capacity == 0 {
            return;
        }
        // Lines 1–7: if t is tracked, add its deleted instances back and
        // untrack it, so the subsequent estimate sees the full stream.
        if let Some(f_t) = self.tracked.remove(t) {
            bank.update(t, f_t);
        }
        // Line 8: estimate t's frequency from the (restored) sketches.
        // lint:allow(L2, reason = "float -> int `as` saturates at the i64 edges, which is the clamp we want")
        let est = bank.estimate_point(t).round() as i64;
        // Lines 9–18: track t if it is positive and beats the current
        // minimum (or there is room).
        let admit = est > 0
            && match self.tracked.min_priority() {
                _ if self.tracked.len() < self.capacity => true,
                Some(root) => est > root,
                None => false, // capacity == 0 handled above; unreachable
            };
        if admit {
            if self.tracked.len() == self.capacity {
                // Evict the least frequent tracked value: add its instances
                // back to the sketches (lines 10–13).
                if let Some((r, f_r)) = self.tracked.pop_min() {
                    bank.update(r, f_r);
                }
            }
            // Track t and delete estFreq instances from the stream
            // (lines 14–18) — the delete condition holds again.
            self.tracked.insert(t, est);
            bank.update(t, -est);
        }
    }

    /// Algorithm 4 with precomputed per-sketch signs for `t` (the ingest
    /// fast path — identical semantics to [`TopKTracker::process`], which
    /// tests assert).
    pub fn process_with_signs(&mut self, t: u64, bank: &mut SketchBank, signs: &[i8]) {
        if self.capacity == 0 {
            return;
        }
        if let Some(f_t) = self.untrack(t) {
            bank.update_with_signs(signs, f_t);
        }
        self.process_restored_with_signs(t, bank, signs);
    }

    /// Removes `t` from the tracked set, returning its deleted-instance
    /// count so the caller can fold the restore into its own counter
    /// sweep (wrapping addition is associative, so one fused sweep lands
    /// bit-identical to separate restore and insert sweeps).  The caller
    /// *must* follow up with [`TopKTracker::process_restored_with_signs`]
    /// after updating the bank, or the delete condition breaks.
    pub fn untrack(&mut self, t: u64) -> Option<i64> {
        if self.capacity == 0 {
            return None;
        }
        self.tracked.remove(t)
    }

    /// Algorithm 4 lines 8–18 for a value whose deleted instances have
    /// already been restored to `bank` (via [`TopKTracker::untrack`]):
    /// estimate, then admit/evict/delete.
    pub fn process_restored_with_signs(&mut self, t: u64, bank: &mut SketchBank, signs: &[i8]) {
        if self.capacity == 0 {
            return;
        }
        // lint:allow(L2, reason = "float -> int `as` saturates at the i64 edges, which is the clamp we want")
        let est = bank.estimate_point_with_signs_into(signs, &mut self.est_scratch).round() as i64;
        let admit = est > 0
            && match self.tracked.min_priority() {
                _ if self.tracked.len() < self.capacity => true,
                Some(root) => est > root,
                None => false,
            };
        if admit {
            if self.tracked.len() == self.capacity {
                if let Some((r, f_r)) = self.tracked.pop_min() {
                    bank.update(r, f_r);
                }
            }
            self.tracked.insert(t, est);
            bank.update_with_signs(signs, -est);
        }
    }

    /// Merges another tracker's tracked set into this one, fixing up `bank`
    /// (which must already hold the *sum* of both sides' counters) so the
    /// delete condition keeps holding.
    ///
    /// A value tracked on both sides had `f_a` instances deleted from one
    /// stream and `f_b` from the other, so the merged stream is missing
    /// `f_a + f_b` — that sum becomes its merged tracked frequency.  A
    /// value tracked on one side only carries its frequency over.  If the
    /// union exceeds `k`, the lightest entries are evicted and their
    /// deleted instances added back to the bank (the same signed-update
    /// flush Algorithm 4 performs on eviction); ties break toward keeping
    /// the smaller value, matching [`TopKTracker::tracked_values`] order.
    ///
    /// # Panics
    /// Panics if the two trackers' capacities differ.
    pub fn merge_from(&mut self, other: &TopKTracker, bank: &mut SketchBank) {
        assert_eq!(
            self.capacity, other.capacity,
            "top-k capacity mismatch in merge"
        );
        if self.capacity == 0 {
            return;
        }
        let mut union: Vec<(u64, i64)> = self.tracked.iter().collect();
        for (v, f_b) in other.tracked.iter() {
            match union.iter_mut().find(|(u, _)| *u == v) {
                Some((_, f)) => *f = f.saturating_add(f_b),
                None => union.push((v, f_b)),
            }
        }
        union.sort_by_key(|&(v, f)| (std::cmp::Reverse(f), v));
        for &(r, f_r) in union.get(self.capacity..).unwrap_or_default() {
            bank.update(r, f_r);
        }
        union.truncate(self.capacity);
        self.tracked = IndexedMinHeap::with_capacity(self.capacity);
        for &(v, f) in &union {
            self.tracked.insert(v, f);
        }
    }

    /// The tracked frequency of `value`, if tracked.
    pub fn tracked_frequency(&self, value: u64) -> Option<i64> {
        self.tracked.get(value)
    }

    /// Restore list for a query over `values`: the tracked `(value, freq)`
    /// pairs among them (Section 5.2's query-time compensation
    /// `d = Σ ξ_q f_q`).
    pub fn restore_list(&self, values: &[u64]) -> Vec<(u64, i64)> {
        values
            .iter()
            .filter_map(|&v| self.tracked.get(v).map(|f| (v, f)))
            .collect()
    }

    /// All tracked `(value, frequency)` pairs, most frequent first
    /// (ties broken by value, so the output is deterministic regardless of
    /// internal heap layout — snapshots rely on this).
    pub fn tracked_values(&self) -> Vec<(u64, i64)> {
        let mut v: Vec<(u64, i64)> = self.tracked.iter().collect();
        v.sort_by_key(|&(val, f)| (std::cmp::Reverse(f), val));
        v
    }

    /// Memory footprint in bytes (value + frequency + heap index per slot).
    pub fn memory_bytes(&self) -> usize {
        self.capacity * (8 + 8 + 8)
    }

    /// Rebuilds the tracked set from a snapshot taken with
    /// [`TopKTracker::tracked_values`].  The sketches the entries were
    /// deleted from must be restored alongside, or the delete condition
    /// breaks.
    ///
    /// # Panics
    /// Panics if more entries than capacity, or on duplicate values.
    pub fn restore_tracked(&mut self, entries: &[(u64, i64)]) {
        assert!(
            entries.len() <= self.capacity,
            "snapshot has more tracked values than capacity"
        );
        self.tracked = IndexedMinHeap::with_capacity(self.capacity);
        for &(v, f) in entries {
            self.tracked.insert(v, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds `freqs` one occurrence at a time, round-robin weighted, with
    /// top-k processing after every insertion — the Algorithm 1 + 4 loop.
    fn run_stream(bank: &mut SketchBank, topk: &mut TopKTracker, freqs: &[(u64, i64)]) {
        // Interleave to mimic a stream rather than batch insertion.
        let max_f = freqs.iter().map(|&(_, f)| f).max().unwrap();
        for round in 0..max_f {
            for &(v, f) in freqs {
                if round < f {
                    bank.update(v, 1);
                    topk.process(v, bank);
                }
            }
        }
    }

    #[test]
    fn heavy_hitters_get_tracked() {
        let freqs: Vec<(u64, i64)> = vec![(1, 500), (2, 400), (3, 10), (4, 5), (5, 2)];
        let mut bank = SketchBank::new(3, 60, 7, 4);
        let mut topk = TopKTracker::new(2);
        run_stream(&mut bank, &mut topk, &freqs);
        let tracked = topk.tracked_values();
        assert_eq!(tracked.len(), 2);
        let vals: Vec<u64> = tracked.iter().map(|&(v, _)| v).collect();
        assert!(vals.contains(&1), "tracked {tracked:?}");
        assert!(vals.contains(&2), "tracked {tracked:?}");
        // Tracked frequencies are near the truth.
        for (v, f) in tracked {
            let truth = if v == 1 { 500.0 } else { 400.0 };
            assert!(
                (f as f64 - truth).abs() / truth < 0.2,
                "value {v}: tracked {f} vs {truth}"
            );
        }
    }

    #[test]
    fn delete_condition_holds() {
        // After the run, estimating a tracked value *without* restore
        // should be near zero — its instances were deleted.
        let freqs: Vec<(u64, i64)> = vec![(1, 600), (2, 20), (3, 10)];
        let mut bank = SketchBank::new(13, 60, 7, 4);
        let mut topk = TopKTracker::new(1);
        run_stream(&mut bank, &mut topk, &freqs);
        assert_eq!(topk.len(), 1);
        let (v, f) = topk.tracked_values()[0];
        assert_eq!(v, 1);
        let raw = bank.estimate_point(v);
        assert!(raw.abs() < 60.0, "deleted value still visible: {raw}");
        // Compensated estimate recovers the truth.
        let est = bank.estimate_point_restored(v, &[(v, f)]);
        assert!((est - 600.0).abs() / 600.0 < 0.15, "est {est}");
    }

    #[test]
    fn tracking_reduces_self_join_size() {
        let freqs: Vec<(u64, i64)> = vec![(1, 500), (2, 300), (3, 8), (4, 6), (5, 4)];
        // Without top-k.
        let mut plain = SketchBank::new(77, 80, 7, 4);
        for &(v, f) in &freqs {
            plain.update(v, f);
        }
        // With top-k.
        let mut tracked_bank = SketchBank::new(77, 80, 7, 4);
        let mut topk = TopKTracker::new(2);
        run_stream(&mut tracked_bank, &mut topk, &freqs);
        let sj_plain = plain.estimate_self_join();
        let sj_tracked = tracked_bank.estimate_self_join();
        assert!(
            sj_tracked < sj_plain / 10.0,
            "SJ not reduced: plain {sj_plain}, tracked {sj_tracked}"
        );
    }

    #[test]
    fn restore_list_filters_to_query() {
        let freqs: Vec<(u64, i64)> = vec![(1, 300), (2, 200), (3, 5)];
        let mut bank = SketchBank::new(5, 60, 7, 4);
        let mut topk = TopKTracker::new(2);
        run_stream(&mut bank, &mut topk, &freqs);
        let r = topk.restore_list(&[1, 3, 99]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, 1);
        assert!(topk.restore_list(&[42]).is_empty());
    }

    #[test]
    fn capacity_zero_disables_tracking() {
        let mut bank = SketchBank::new(1, 20, 3, 4);
        let mut topk = TopKTracker::new(0);
        for _ in 0..100 {
            bank.update(9, 1);
            topk.process(9, &mut bank);
        }
        assert!(topk.is_empty());
        // Stream untouched: estimate sees all 100.
        let est = bank.estimate_point(9);
        assert!((est - 100.0).abs() < 30.0, "est {est}");
    }

    #[test]
    fn eviction_prefers_keeping_heavier() {
        // Capacity 1; a heavy value then a light value: the light one must
        // not displace the heavy one.
        let mut bank = SketchBank::new(23, 60, 7, 4);
        let mut topk = TopKTracker::new(1);
        for _ in 0..400 {
            bank.update(1, 1);
            topk.process(1, &mut bank);
        }
        for _ in 0..5 {
            bank.update(2, 1);
            topk.process(2, &mut bank);
        }
        let tracked = topk.tracked_values();
        assert_eq!(tracked.len(), 1);
        assert_eq!(tracked[0].0, 1, "light value displaced heavy one");
    }

    #[test]
    fn reappearing_tracked_value_updates_frequency() {
        let mut bank = SketchBank::new(29, 60, 7, 4);
        let mut topk = TopKTracker::new(1);
        for _ in 0..100 {
            bank.update(7, 1);
            topk.process(7, &mut bank);
        }
        let f1 = topk.tracked_frequency(7).unwrap();
        for _ in 0..100 {
            bank.update(7, 1);
            topk.process(7, &mut bank);
        }
        let f2 = topk.tracked_frequency(7).unwrap();
        assert!(f2 > f1, "frequency did not grow: {f1} -> {f2}");
        assert!((f2 - 200).abs() < 40, "f2 = {f2}");
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(TopKTracker::new(50).memory_bytes(), 50 * 24);
    }

    /// After a shard merge (bank counters summed, trackers merged with
    /// eviction flush), every value's compensated estimate must still be
    /// near its frequency in the *union* stream — i.e. the delete
    /// condition survives the merge, including for evicted entries.
    #[test]
    fn merge_preserves_delete_condition() {
        let shard_a: Vec<(u64, i64)> = vec![(1, 500), (3, 90), (5, 8)];
        let shard_b: Vec<(u64, i64)> = vec![(2, 400), (3, 120), (4, 60), (6, 3)];
        let mut bank_a = SketchBank::new(47, 80, 7, 4);
        let mut topk_a = TopKTracker::new(2);
        run_stream(&mut bank_a, &mut topk_a, &shard_a);
        let mut bank_b = SketchBank::new(47, 80, 7, 4);
        let mut topk_b = TopKTracker::new(2);
        run_stream(&mut bank_b, &mut topk_b, &shard_b);
        // The union of tracked sets ({1,3} and {2,3} here) exceeds k = 2,
        // so the merge must evict and flush.
        bank_a.merge_from(&bank_b);
        topk_a.merge_from(&topk_b, &mut bank_a);
        assert_eq!(topk_a.len(), 2);
        let truth: Vec<(u64, f64)> =
            vec![(1, 500.0), (2, 400.0), (3, 210.0), (4, 60.0), (5, 8.0), (6, 3.0)];
        for &(v, t) in &truth {
            let est = bank_a.estimate_point_restored(v, &topk_a.restore_list(&[v]));
            assert!(
                (est - t).abs() < t.mul_add(0.2, 40.0),
                "value {v}: est {est} vs truth {t}"
            );
        }
    }

    #[test]
    fn merge_sums_frequencies_of_shared_values() {
        let mut bank = SketchBank::new(3, 10, 3, 4);
        let mut a = TopKTracker::new(4);
        let mut b = TopKTracker::new(4);
        a.restore_tracked(&[(7, 100), (8, 50)]);
        b.restore_tracked(&[(7, 30), (9, 10)]);
        a.merge_from(&b, &mut bank);
        assert_eq!(a.tracked_values(), vec![(7, 130), (8, 50), (9, 10)]);
        // Nothing evicted: the bank was untouched.
        assert!(bank.counter_values().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "top-k capacity mismatch")]
    fn merge_rejects_capacity_mismatch() {
        let mut bank = SketchBank::new(3, 10, 3, 4);
        let mut a = TopKTracker::new(4);
        let b = TopKTracker::new(5);
        a.merge_from(&b, &mut bank);
    }

    /// The precomputed-signs fast path must be bit-for-bit equivalent to
    /// the plain Algorithm 4 implementation.
    #[test]
    fn process_with_signs_equivalent_to_process() {
        let freqs: Vec<(u64, i64)> = vec![(1, 120), (2, 60), (3, 30), (4, 7), (5, 2)];
        let mut bank_a = SketchBank::new(31, 20, 5, 4);
        let mut topk_a = TopKTracker::new(2);
        let mut bank_b = SketchBank::new(31, 20, 5, 4);
        let mut topk_b = TopKTracker::new(2);
        let mut buf = Vec::new();
        let max_f = freqs.iter().map(|&(_, f)| f).max().unwrap();
        for round in 0..max_f {
            for &(v, f) in &freqs {
                if round < f {
                    bank_a.update(v, 1);
                    topk_a.process(v, &mut bank_a);
                    bank_b.signs_into(v, &mut buf);
                    bank_b.update_with_signs(&buf, 1);
                    topk_b.process_with_signs(v, &mut bank_b, &buf);
                }
            }
        }
        assert_eq!(topk_a.tracked_values(), topk_b.tracked_values());
        for v in [1u64, 2, 3, 4, 5, 999] {
            assert_eq!(bank_a.estimate_point(v), bank_b.estimate_point(v), "value {v}");
        }
    }
}
