//! The boosted `s1 × s2` sketch array — Theorems 1 and 2 made executable.
//!
//! A [`SketchBank`] holds `s1 × s2` independent [`AmsSketch`] instances.
//! Estimation follows the paper's Algorithm 2: within each of the `s2`
//! groups, average the `s1` per-sketch estimates (`Y_i`); return the median
//! of the `s2` averages.  Averaging controls accuracy (`s1 = 8·SJ(S)/ε²f²`
//! for relative error ε), the median controls confidence
//! (`s2 = 2·lg(1/δ)`).
//!
//! The bank evaluates three estimator families:
//!
//! * point counts `ξ_q·X` (Theorem 1),
//! * set counts `X·Σξ` (Theorem 2), and
//! * general expression terms `coeff·Xᵏ/k!·Πξ` (Section 4),
//!
//! all with optional *restore lists* — `(value, frequency)` pairs that are
//! virtually added back to `X` at query time, which is how the top-k
//! strategy's deleted heavy hitters are compensated (Section 5.2: replace
//! `X` by `X + Σ ξ_q f_q`).

use crate::ams::AmsSketch;
use crate::expr::Term;
use sketchtree_hash::SplitMix64;

/// A boosted array of AMS sketches.
///
/// ```
/// use sketchtree_sketch::SketchBank;
/// let mut bank = SketchBank::new(1, 60, 7, 4);
/// for _ in 0..500 { bank.update(3, 1); }
/// bank.update(9, 40);
/// let est = bank.estimate_point(3);
/// assert!((est - 500.0).abs() < 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct SketchBank {
    s1: usize,
    s2: usize,
    /// Row-major: sketch (i, j) at `i * s1 + j`, `i < s2`, `j < s1`.
    sketches: Vec<AmsSketch>,
}

impl SketchBank {
    /// Creates a bank of `s1 × s2` sketches with ξ families of the given
    /// independence degree, deterministically derived from `seed`.
    ///
    /// Two banks constructed from the same `(seed, s1, s2, independence)`
    /// share identical ξ families — the property virtual streams rely on so
    /// their sketches can be added (Section 5.3).
    ///
    /// # Panics
    /// Panics if `s1 == 0` or `s2 == 0`.
    pub fn new(seed: u64, s1: usize, s2: usize, independence: usize) -> Self {
        assert!(s1 > 0 && s2 > 0, "s1 and s2 must be positive");
        let independence = independence.max(4);
        let sketches = (0..s1 * s2)
            // lint:allow(L2, reason = "usize -> u64 is widening on all supported targets")
            .map(|idx| AmsSketch::new(SplitMix64::derive(seed, idx as u64), independence))
            .collect();
        Self { s1, s2, sketches }
    }

    /// Accuracy knob: number of averaged sketches per group.
    #[inline]
    pub fn s1(&self) -> usize {
        self.s1
    }

    /// Confidence knob: number of median groups.
    #[inline]
    pub fn s2(&self) -> usize {
        self.s2
    }

    /// Applies `count` occurrences of `value` to every sketch.
    pub fn update(&mut self, value: u64, count: i64) {
        for s in &mut self.sketches {
            s.update(value, count);
        }
    }

    /// Memory footprint of the counters in bytes (the paper's "total memory
    /// allocated for the synopses" accounting: one 64-bit counter plus one
    /// seed word per sketch — the ξ families are recomputed from seeds, not
    /// stored, exactly as Section 3.1 notes).
    pub fn memory_bytes(&self) -> usize {
        self.sketches.len() * (8 + 8)
    }

    #[inline]
    fn sketch(&self, i: usize, j: usize) -> &AmsSketch {
        // lint:allow(L1, reason = "every caller iterates i < s2 and j < s1; len is s1 * s2")
        &self.sketches[i * self.s1 + j]
    }

    /// Point estimate of the frequency of `value` (Theorem 1 / Algorithm 2
    /// with a single-query list).
    pub fn estimate_point(&self, value: u64) -> f64 {
        self.estimate_point_restored(value, &[])
    }

    /// Point estimate with a restore list (top-k compensation).
    pub fn estimate_point_restored(&self, value: u64, restore: &[(u64, i64)]) -> f64 {
        self.estimate_set_restored(&[value], restore)
    }

    /// Estimate of `Σ_q f_q` for a set of *distinct* values (Theorem 2):
    /// per sketch, `Z = (Σ ξ_q) · X_eff`.
    pub fn estimate_set_restored(&self, values: &[u64], restore: &[(u64, i64)]) -> f64 {
        self.median_of_means(|s| {
            let x_eff = effective_x(s, restore);
            let xi_sum: i64 = values.iter().map(|&v| s.sign(v)).sum();
            xi_sum as f64 * x_eff as f64
        })
    }

    /// Estimate of expanded expression terms (Section 4): per sketch,
    /// `Σ_terms coeff · X_effᵏ/k! · Πξ`.
    pub fn estimate_terms_restored(&self, terms: &[Term], restore: &[(u64, i64)]) -> f64 {
        self.median_of_means(|s| {
            let x_eff = effective_x(s, restore) as f64;
            terms
                .iter()
                .map(|t| term_value(s, t, x_eff))
                .sum::<f64>()
        })
    }

    /// Estimate of the self-join size `SJ(S) = Σ f_i²` via the AMS
    /// second-moment estimator (median of means of `X²`).
    pub fn estimate_self_join(&self) -> f64 {
        self.median_of_means(|s| s.second_moment() as f64)
    }

    /// Median over the `s2` groups of the mean over `s1` sketches of
    /// `per_sketch` — the boosting of Theorem 1.
    pub fn median_of_means(&self, per_sketch: impl Fn(&AmsSketch) -> f64) -> f64 {
        let mut ys: Vec<f64> = (0..self.s2)
            .map(|i| {
                (0..self.s1)
                    .map(|j| per_sketch(self.sketch(i, j)))
                    .sum::<f64>()
                    / self.s1 as f64
            })
            .collect();
        median_in_place(&mut ys)
    }

    /// Total number of sketches (`s1 × s2`).
    #[inline]
    pub fn num_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// Direct access to sketch `idx` in `0..num_sketches()` (flat order,
    /// group-major).  Used by the multi-bank synopsis, which must combine
    /// per-sketch values *across* banks before boosting — sums of medians
    /// are not medians of sums.
    #[inline]
    pub fn sketch_at(&self, idx: usize) -> &AmsSketch {
        // lint:allow(L1, reason = "documented caller contract: idx in 0..num_sketches()")
        &self.sketches[idx]
    }

    /// Adds `per_sketch(sketch_idx)` into `acc[idx]` for every sketch.
    pub fn accumulate(&self, acc: &mut [f64], per_sketch: impl Fn(&AmsSketch) -> f64) {
        debug_assert_eq!(acc.len(), self.sketches.len());
        for (a, s) in acc.iter_mut().zip(&self.sketches) {
            // lint:allow(L3, reason = "f64 accumulation cannot wrap; it saturates to infinity")
            *a += per_sketch(s);
        }
    }

    /// Boosts a flat vector of per-sketch values laid out like this bank's
    /// sketches: mean over each group of `s1`, median over the `s2` groups.
    pub fn boost(&self, acc: &[f64]) -> f64 {
        debug_assert_eq!(acc.len(), self.sketches.len());
        let mut ys: Vec<f64> = acc
            .chunks(self.s1)
            .map(|chunk| chunk.iter().sum::<f64>() / self.s1 as f64)
            .collect();
        median_in_place(&mut ys)
    }

    /// The `s2` per-group means of a flat per-sketch value vector — the
    /// same averaging as [`SketchBank::boost`] but *without* the final
    /// median, exposing the spread the median collapses.  Monitoring uses
    /// this as a variance proxy: Theorem 1 bounds each group mean's
    /// deviation, so widely scattered group means signal an estimator
    /// operating near (or past) its error budget.
    pub fn group_means(&self, acc: &[f64]) -> Vec<f64> {
        debug_assert_eq!(acc.len(), self.sketches.len());
        acc.chunks(self.s1)
            .map(|chunk| chunk.iter().sum::<f64>() / self.s1 as f64)
            .collect()
    }

    /// Number of sketches whose counter is nonzero (occupancy diagnostic:
    /// a counter at exactly zero has either seen nothing or cancelled
    /// perfectly — both newsworthy to an operator).
    pub fn nonzero_counters(&self) -> usize {
        self.sketches.iter().filter(|s| s.raw() != 0).count()
    }

    /// Applies `per_sketch` to each sketch mutably (used by the top-k
    /// tracker to delete/restore heavy hitters across the whole bank).
    pub fn for_each_sketch_mut(&mut self, mut per_sketch: impl FnMut(&mut AmsSketch)) {
        for s in &mut self.sketches {
            per_sketch(s);
        }
    }

    /// The raw counter values in flat sketch order (for snapshots).
    pub fn counter_values(&self) -> Vec<i64> {
        self.sketches.iter().map(AmsSketch::raw).collect()
    }

    /// Restores raw counter values previously taken with
    /// [`SketchBank::counter_values`] on a bank with the same geometry and
    /// seed.
    ///
    /// # Panics
    /// Panics if the length does not match.
    pub fn set_counter_values(&mut self, values: &[i64]) {
        assert_eq!(values.len(), self.sketches.len(), "snapshot geometry mismatch");
        for (s, &v) in self.sketches.iter_mut().zip(values) {
            s.set_raw(v);
        }
    }

    /// Adds every counter of `other` into this bank elementwise.
    ///
    /// This is Section 5.3's linearity made explicit: two banks built from
    /// the same `(seed, s1, s2, independence)` share identical ξ families,
    /// so for each sketch `X_merged = X_a + X_b` is exactly the counter a
    /// single bank would hold after seeing both streams.  The ξ-family
    /// compatibility (same seed and independence) is the *caller's*
    /// contract — the bank stores neither, so it can only verify geometry.
    /// Addition wraps, matching [`AmsSketch::add_raw`]'s mod-2⁶⁴ group
    /// semantics.
    ///
    /// # Panics
    /// Panics if the two banks' geometries (`s1`, `s2`) differ.
    pub fn merge_from(&mut self, other: &SketchBank) {
        assert!(
            self.s1 == other.s1 && self.s2 == other.s2,
            "bank geometry mismatch: {}x{} vs {}x{}",
            self.s1,
            self.s2,
            other.s1,
            other.s2
        );
        for (s, o) in self.sketches.iter_mut().zip(&other.sketches) {
            s.add_raw(o.raw());
        }
    }

    /// Fills `buf` with the per-sketch ξ signs of `value` (±1 as `i8`).
    ///
    /// The ingest hot path evaluates each sketch's ξ polynomial for the
    /// same value several times (update, then the top-k frequency
    /// estimate, then possibly a deletion); computing the signs once and
    /// passing the buffer around roughly halves per-pattern cost.
    pub fn signs_into(&self, value: u64, buf: &mut Vec<i8>) {
        buf.clear();
        // lint:allow(L2, reason = "sign() returns ±1, which always fits i8")
        buf.extend(self.sketches.iter().map(|s| s.sign(value) as i8));
    }

    /// Applies `count` occurrences of `value` while filling `buf` with the
    /// per-sketch ξ signs — [`SketchBank::signs_into`] and
    /// [`SketchBank::update_with_signs`] fused into one pass over the
    /// sketches, so the ingest hot path touches each sketch's cache line
    /// once.  The resulting counters and sign buffer are exactly those the
    /// two-pass sequence produces.
    pub fn apply_with_signs(&mut self, value: u64, count: i64, buf: &mut Vec<i8>) {
        buf.clear();
        buf.reserve(self.sketches.len());
        for s in &mut self.sketches {
            let sg = s.sign(value);
            s.add_raw(sg.wrapping_mul(count));
            // lint:allow(L2, reason = "sign() returns ±1, which always fits i8")
            buf.push(sg as i8);
        }
    }

    /// Applies `count` occurrences of the value whose signs are in `signs`.
    pub fn update_with_signs(&mut self, signs: &[i8], count: i64) {
        debug_assert_eq!(signs.len(), self.sketches.len());
        for (s, &sg) in self.sketches.iter_mut().zip(signs) {
            s.add_raw(i64::from(sg).wrapping_mul(count));
        }
    }

    /// Point estimate using precomputed signs (no restore list — the
    /// ingest path calls this right after restoring, so `X` is complete).
    pub fn estimate_point_with_signs(&self, signs: &[i8]) -> f64 {
        debug_assert_eq!(signs.len(), self.sketches.len());
        let mut ys: Vec<f64> = self
            .sketches
            .chunks(self.s1)
            .zip(signs.chunks(self.s1))
            .map(|(sk, sg)| {
                sk.iter()
                    .zip(sg)
                    .map(|(s, &g)| (i64::from(g) * s.raw()) as f64)
                    .sum::<f64>()
                    / self.s1 as f64
            })
            .collect();
        median_in_place(&mut ys)
    }
}

/// `X + Σ ξ_v · f_v` over the restore list.
///
/// Saturating: frequencies near `i64::MIN/MAX` only occur in corrupted
/// or hostile snapshots, and an estimate clamped at the integer edge is
/// preferable to an overflow panic in the query path.
#[inline]
pub(crate) fn effective_x(s: &AmsSketch, restore: &[(u64, i64)]) -> i64 {
    let mut x = s.raw();
    for &(v, f) in restore {
        x = x.saturating_add(s.sign(v).saturating_mul(f));
    }
    x
}

/// `coeff · X^k/k! · Πξ` for one term.
#[inline]
pub(crate) fn term_value(s: &AmsSketch, t: &Term, x_eff: f64) -> f64 {
    let k = t.queries.len();
    let xi_prod: i64 = t.queries.iter().map(|&q| s.sign(q)).product();
    let factorial: f64 = (2..=k).map(|i| i as f64).product();
    // A term with an absurd product size degrades to ±inf rather than
    // silently truncating the exponent.
    let exp = i32::try_from(k).unwrap_or(i32::MAX);
    t.coeff as f64 * x_eff.powi(exp) / factorial * xi_prod as f64
}

/// Median of a mutable slice (average of middle two when even).
pub(crate) fn median_in_place(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        // lint:allow(L1, reason = "n >= 1 asserted above, so n / 2 < n")
        xs[n / 2]
    } else {
        // lint:allow(L1, reason = "even n is >= 2 here, so n / 2 - 1 and n / 2 are in bounds")
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    /// A small synthetic stream with known frequencies.
    fn fill(bank: &mut SketchBank, freqs: &[(u64, i64)]) {
        for &(v, f) in freqs {
            bank.update(v, f);
        }
    }

    #[test]
    fn point_estimate_accuracy() {
        let freqs: Vec<(u64, i64)> = (0..200u64).map(|i| (i, 1 + (i as i64 % 10))).collect();
        let mut bank = SketchBank::new(99, 120, 7, 4);
        fill(&mut bank, &freqs);
        // f_100 = 1 + 100 % 10 = 1; heavy value check instead: f_9 = 10.
        let est = bank.estimate_point(9);
        assert!((est - 10.0).abs() < 15.0, "est {est}");
        // Large frequency: est should be relatively accurate.
        let mut bank2 = SketchBank::new(7, 120, 7, 4);
        let mut freqs2 = freqs.clone();
        freqs2.push((777, 500));
        fill(&mut bank2, &freqs2);
        let est2 = bank2.estimate_point(777);
        assert!(
            (est2 - 500.0).abs() / 500.0 < 0.15,
            "relative error too high: {est2}"
        );
    }

    #[test]
    fn set_estimate_matches_sum() {
        let freqs: Vec<(u64, i64)> = vec![(1, 300), (2, 200), (3, 100), (4, 50), (5, 10)];
        let mut bank = SketchBank::new(5, 150, 7, 4);
        fill(&mut bank, &freqs);
        let est = bank.estimate_set_restored(&[1, 2, 3], &[]);
        let truth = 600.0;
        assert!((est - truth).abs() / truth < 0.15, "est {est}");
    }

    #[test]
    fn restore_list_compensates_deletions() {
        let mut bank = SketchBank::new(21, 80, 7, 4);
        fill(&mut bank, &[(10, 400), (11, 30), (12, 5)]);
        // Delete the heavy hitter from the sketches, as top-k would.
        bank.update(10, -400);
        // Without compensation the estimate of 10 is ~0.
        let raw = bank.estimate_point(10);
        assert!(raw.abs() < 50.0, "deleted value still visible: {raw}");
        // With the restore list the estimate is exact-ish again.
        let est = bank.estimate_point_restored(10, &[(10, 400)]);
        assert!((est - 400.0).abs() / 400.0 < 0.1, "est {est}");
    }

    #[test]
    fn product_expression_estimate() {
        // Product of two counts: needs 5-wise ξ.
        let mut bank = SketchBank::new(31, 300, 9, 5);
        fill(&mut bank, &[(1, 120), (2, 80), (3, 40), (4, 10)]);
        let (terms, indep) = Expr::product_of_counts(&[1, 2]).expand().unwrap();
        assert_eq!(indep, 5);
        let est = bank.estimate_terms_restored(&terms, &[]);
        let truth = 120.0 * 80.0;
        assert!(
            (est - truth).abs() / truth < 0.4,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn mixed_expression_estimate() {
        // C1 - C2: truth 120 - 80 = 40.
        let mut bank = SketchBank::new(41, 250, 9, 4);
        fill(&mut bank, &[(1, 120), (2, 80), (3, 40)]);
        let e = Expr::Sub(Box::new(Expr::Count(1)), Box::new(Expr::Count(2)));
        let (terms, _) = e.expand().unwrap();
        let est = bank.estimate_terms_restored(&terms, &[]);
        assert!((est - 40.0).abs() < 25.0, "est {est}");
    }

    #[test]
    fn self_join_estimate() {
        let freqs: Vec<(u64, i64)> = vec![(1, 100), (2, 50), (3, 20)];
        let truth = (100 * 100 + 50 * 50 + 20 * 20) as f64;
        let mut bank = SketchBank::new(51, 200, 9, 4);
        fill(&mut bank, &freqs);
        let est = bank.estimate_self_join();
        assert!((est - truth).abs() / truth < 0.2, "est {est} truth {truth}");
    }

    #[test]
    fn shared_seed_banks_have_identical_signs() {
        let a = SketchBank::new(8, 3, 2, 4);
        let b = SketchBank::new(8, 3, 2, 4);
        for i in 0..2 {
            for j in 0..3 {
                for v in [0u64, 5, 999] {
                    assert_eq!(a.sketch(i, j).sign(v), b.sketch(i, j).sign(v));
                }
            }
        }
    }

    #[test]
    fn sketches_within_bank_are_distinct() {
        let bank = SketchBank::new(8, 4, 2, 4);
        // Any two sketches should disagree on some key sign.
        let mut distinct = 0;
        for a in 0..8usize {
            for b in (a + 1)..8usize {
                let sa = &bank.sketches[a];
                let sb = &bank.sketches[b];
                if (0..64u64).any(|v| sa.sign(v) != sb.sign(v)) {
                    distinct += 1;
                }
            }
        }
        assert_eq!(distinct, 8 * 7 / 2);
    }

    #[test]
    fn median_in_place_basics() {
        assert_eq!(median_in_place(&mut [3.0]), 3.0);
        assert_eq!(median_in_place(&mut [1.0, 9.0]), 5.0);
        assert_eq!(median_in_place(&mut [9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 9.0, 5.0]), 4.5);
    }

    #[test]
    fn memory_accounting() {
        let bank = SketchBank::new(0, 25, 7, 4);
        assert_eq!(bank.memory_bytes(), 25 * 7 * 16);
    }

    #[test]
    #[should_panic]
    fn zero_s1_rejected() {
        SketchBank::new(0, 0, 7, 4);
    }

    #[test]
    fn apply_with_signs_matches_two_pass_update() {
        let mut fused = SketchBank::new(12, 6, 3, 4);
        let mut two_pass = SketchBank::new(12, 6, 3, 4);
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        for v in [3u64, 99, 3, 777, 42] {
            fused.apply_with_signs(v, 1, &mut buf_a);
            two_pass.signs_into(v, &mut buf_b);
            two_pass.update_with_signs(&buf_b, 1);
            assert_eq!(buf_a, buf_b, "sign buffers diverged at {v}");
        }
        assert_eq!(fused.counter_values(), two_pass.counter_values());
    }

    #[test]
    fn merge_from_equals_single_bank_over_union_stream() {
        let mut a = SketchBank::new(17, 8, 3, 4);
        let mut b = SketchBank::new(17, 8, 3, 4);
        let mut whole = SketchBank::new(17, 8, 3, 4);
        for &(v, f) in &[(1u64, 10i64), (2, -3), (99, 1)] {
            a.update(v, f);
            whole.update(v, f);
        }
        for &(v, f) in &[(2u64, 5i64), (777, 40)] {
            b.update(v, f);
            whole.update(v, f);
        }
        a.merge_from(&b);
        assert_eq!(a.counter_values(), whole.counter_values());
    }

    #[test]
    #[should_panic(expected = "bank geometry mismatch")]
    fn merge_from_rejects_geometry_mismatch() {
        let mut a = SketchBank::new(17, 8, 3, 4);
        let b = SketchBank::new(17, 8, 2, 4);
        a.merge_from(&b);
    }

    #[test]
    fn independence_floor_is_four() {
        let bank = SketchBank::new(0, 1, 1, 2);
        assert_eq!(bank.sketches[0].independence(), 4);
    }
}
