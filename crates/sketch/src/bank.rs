//! The boosted `s1 × s2` sketch array — Theorems 1 and 2 made executable.
//!
//! A [`SketchBank`] holds `s1 × s2` AMS counters in one contiguous `i64`
//! slab, with the matching ξ families packed in a shared [`XiSlab`].
//! Estimation follows the paper's Algorithm 2: within each of the `s2`
//! groups, average the `s1` per-sketch estimates (`Y_i`); return the median
//! of the `s2` averages.  Averaging controls accuracy (`s1 = 8·SJ(S)/ε²f²`
//! for relative error ε), the median controls confidence
//! (`s2 = 2·lg(1/δ)`).
//!
//! The bank evaluates three estimator families:
//!
//! * point counts `ξ_q·X` (Theorem 1),
//! * set counts `X·Σξ` (Theorem 2), and
//! * general expression terms `coeff·Xᵏ/k!·Πξ` (Section 4),
//!
//! all with optional *restore lists* — `(value, frequency)` pairs that are
//! virtually added back to `X` at query time, which is how the top-k
//! strategy's deleted heavy hitters are compensated (Section 5.2: replace
//! `X` by `X + Σ ξ_q f_q`).
//!
//! ## Memory layout (the ingest hot path)
//!
//! Counters live in a single `Vec<i64>` (row-major: sketch `(i, j)` at
//! `i * s1 + j`); coefficients live in one shared slab with stride `k`.
//! A per-value update reduces the key mod 2⁶¹−1 *once*, then walks both
//! allocations linearly — no per-sketch pointer chase, no per-sketch
//! reduction.  All banks of a [`crate::StreamSynopsis`] share one
//! [`XiSlab`] through an [`Arc`], because they are constructed from the
//! same `(seed, s1, s2, independence)` (Section 5.3's shared-seed
//! requirement).

use crate::expr::Term;
use crate::xislab::XiSlab;
use sketchtree_hash::kwise::sign_from_coefficients;
use sketchtree_hash::m61;
use std::sync::Arc;

/// A boosted array of AMS sketches over one counter slab.
///
/// ```
/// use sketchtree_sketch::SketchBank;
/// let mut bank = SketchBank::new(1, 60, 7, 4);
/// for _ in 0..500 { bank.update(3, 1); }
/// bank.update(9, 40);
/// let est = bank.estimate_point(3);
/// assert!((est - 500.0).abs() < 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct SketchBank {
    s1: usize,
    s2: usize,
    /// ξ coefficient slab, one family per counter, stride `independence`.
    xi: Arc<XiSlab>,
    /// Row-major counter slab: sketch (i, j) at `i * s1 + j`, `i < s2`,
    /// `j < s1`.
    counters: Vec<i64>,
}

/// A read-only view of one sketch: its ξ coefficient row and counter.
///
/// `Copy`-cheap — two words and an integer — so estimator closures take it
/// by value.
#[derive(Debug, Clone, Copy)]
pub struct SketchView<'a> {
    coeffs: &'a [u64],
    x: i64,
}

impl SketchView<'_> {
    /// The ξ value for a key.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        sign_from_coefficients(self.coeffs, m61::reduce(key))
    }

    /// The raw counter `X`.
    #[inline]
    pub fn raw(&self) -> i64 {
        self.x
    }

    /// Unbiased second-moment estimate `X²` of `Σ f_i²`.
    #[inline]
    pub fn second_moment(&self) -> i64 {
        self.x * self.x
    }
}

impl SketchBank {
    /// Creates a bank of `s1 × s2` sketches with ξ families of the given
    /// independence degree, deterministically derived from `seed`.
    ///
    /// Two banks constructed from the same `(seed, s1, s2, independence)`
    /// share identical ξ families — the property virtual streams rely on so
    /// their sketches can be added (Section 5.3).
    ///
    /// # Panics
    /// Panics if `s1 == 0` or `s2 == 0`.
    pub fn new(seed: u64, s1: usize, s2: usize, independence: usize) -> Self {
        assert!(s1 > 0 && s2 > 0, "s1 and s2 must be positive");
        let independence = independence.max(4);
        let xi = Arc::new(XiSlab::generate(seed, s1 * s2, independence));
        Self::with_shared_xi(xi, s1, s2)
    }

    /// Creates a bank whose ξ families come from an existing shared slab —
    /// the multi-bank synopsis builds *one* slab and hands every bank the
    /// same [`Arc`], instead of materialising `p` identical copies.
    ///
    /// The slab must have been generated from the same `(seed, s1 * s2,
    /// independence)` a fresh [`SketchBank::new`] would use; only the
    /// family count is checkable here.
    ///
    /// # Panics
    /// Panics if `s1 == 0`, `s2 == 0`, or the slab's family count is not
    /// `s1 * s2`.
    pub fn with_shared_xi(xi: Arc<XiSlab>, s1: usize, s2: usize) -> Self {
        assert!(s1 > 0 && s2 > 0, "s1 and s2 must be positive");
        assert_eq!(xi.families(), s1 * s2, "ξ slab family count must match s1 × s2");
        let counters = vec![0i64; s1 * s2];
        Self { s1, s2, xi, counters }
    }

    /// Accuracy knob: number of averaged sketches per group.
    #[inline]
    pub fn s1(&self) -> usize {
        self.s1
    }

    /// Confidence knob: number of median groups.
    #[inline]
    pub fn s2(&self) -> usize {
        self.s2
    }

    /// The independence degree of the ξ families.
    #[inline]
    pub fn independence(&self) -> usize {
        self.xi.independence()
    }

    /// Applies `count` occurrences of `value` to every sketch.
    ///
    /// Counters wrap on overflow: wrapping arithmetic is a group operation,
    /// so insert/delete symmetry (`X -= m·ξ_t` undoes `X += m·ξ_t`) holds
    /// mod 2⁶⁴ even across a wrap, whereas a panic or saturation would
    /// break it.
    pub fn update(&mut self, value: u64, count: i64) {
        let reduced = m61::reduce(value);
        for (idx, c) in self.counters.iter_mut().enumerate() {
            let sg = self.xi.sign_reduced(idx, reduced);
            *c = c.wrapping_add(sg.wrapping_mul(count));
        }
    }

    /// Memory footprint of the counters in bytes (the paper's "total memory
    /// allocated for the synopses" accounting: one 64-bit counter plus one
    /// seed word per sketch — the ξ families are recomputed from seeds, not
    /// stored, exactly as Section 3.1 notes).
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * (8 + 8)
    }

    #[inline]
    fn sketch(&self, i: usize, j: usize) -> SketchView<'_> {
        self.sketch_at(i * self.s1 + j)
    }

    /// Point estimate of the frequency of `value` (Theorem 1 / Algorithm 2
    /// with a single-query list).
    pub fn estimate_point(&self, value: u64) -> f64 {
        self.estimate_point_restored(value, &[])
    }

    /// Point estimate with a restore list (top-k compensation).
    pub fn estimate_point_restored(&self, value: u64, restore: &[(u64, i64)]) -> f64 {
        self.estimate_set_restored(&[value], restore)
    }

    /// Estimate of `Σ_q f_q` for a set of *distinct* values (Theorem 2):
    /// per sketch, `Z = (Σ ξ_q) · X_eff`.
    pub fn estimate_set_restored(&self, values: &[u64], restore: &[(u64, i64)]) -> f64 {
        self.median_of_means(|s| {
            let x_eff = effective_x(s, restore);
            let xi_sum: i64 = values.iter().map(|&v| s.sign(v)).sum();
            xi_sum as f64 * x_eff as f64
        })
    }

    /// Estimate of expanded expression terms (Section 4): per sketch,
    /// `Σ_terms coeff · X_effᵏ/k! · Πξ`.
    pub fn estimate_terms_restored(&self, terms: &[Term], restore: &[(u64, i64)]) -> f64 {
        self.median_of_means(|s| {
            let x_eff = effective_x(s, restore) as f64;
            terms
                .iter()
                .map(|t| term_value(s, t, x_eff))
                .sum::<f64>()
        })
    }

    /// Estimate of the self-join size `SJ(S) = Σ f_i²` via the AMS
    /// second-moment estimator (median of means of `X²`).
    pub fn estimate_self_join(&self) -> f64 {
        self.median_of_means(|s| s.second_moment() as f64)
    }

    /// Median over the `s2` groups of the mean over `s1` sketches of
    /// `per_sketch` — the boosting of Theorem 1.
    pub fn median_of_means(&self, per_sketch: impl Fn(SketchView<'_>) -> f64) -> f64 {
        let mut ys: Vec<f64> = (0..self.s2)
            .map(|i| {
                (0..self.s1)
                    .map(|j| per_sketch(self.sketch(i, j)))
                    .sum::<f64>()
                    / self.s1 as f64
            })
            .collect();
        median_in_place(&mut ys)
    }

    /// Total number of sketches (`s1 × s2`).
    #[inline]
    pub fn num_sketches(&self) -> usize {
        self.counters.len()
    }

    /// View of sketch `idx` in `0..num_sketches()` (flat order,
    /// group-major).  Used by the multi-bank synopsis, which must combine
    /// per-sketch values *across* banks before boosting — sums of medians
    /// are not medians of sums.
    #[inline]
    pub fn sketch_at(&self, idx: usize) -> SketchView<'_> {
        SketchView {
            coeffs: self.xi.coefficients(idx),
            // lint:allow(L1, reason = "documented caller contract: idx in 0..num_sketches()")
            x: self.counters[idx],
        }
    }

    /// Adds `per_sketch(sketch_idx)` into `acc[idx]` for every sketch.
    pub fn accumulate(&self, acc: &mut [f64], per_sketch: impl Fn(SketchView<'_>) -> f64) {
        debug_assert_eq!(acc.len(), self.counters.len());
        for (idx, a) in acc.iter_mut().enumerate() {
            // lint:allow(L3, reason = "f64 accumulation cannot wrap; it saturates to infinity")
            *a += per_sketch(self.sketch_at(idx));
        }
    }

    /// Boosts a flat vector of per-sketch values laid out like this bank's
    /// sketches: mean over each group of `s1`, median over the `s2` groups.
    pub fn boost(&self, acc: &[f64]) -> f64 {
        debug_assert_eq!(acc.len(), self.counters.len());
        let mut ys: Vec<f64> = acc
            .chunks(self.s1)
            .map(|chunk| chunk.iter().sum::<f64>() / self.s1 as f64)
            .collect();
        median_in_place(&mut ys)
    }

    /// The `s2` per-group means of a flat per-sketch value vector — the
    /// same averaging as [`SketchBank::boost`] but *without* the final
    /// median, exposing the spread the median collapses.  Monitoring uses
    /// this as a variance proxy: Theorem 1 bounds each group mean's
    /// deviation, so widely scattered group means signal an estimator
    /// operating near (or past) its error budget.
    pub fn group_means(&self, acc: &[f64]) -> Vec<f64> {
        debug_assert_eq!(acc.len(), self.counters.len());
        acc.chunks(self.s1)
            .map(|chunk| chunk.iter().sum::<f64>() / self.s1 as f64)
            .collect()
    }

    /// Number of sketches whose counter is nonzero (occupancy diagnostic:
    /// a counter at exactly zero has either seen nothing or cancelled
    /// perfectly — both newsworthy to an operator).
    pub fn nonzero_counters(&self) -> usize {
        self.counters.iter().filter(|&&x| x != 0).count()
    }

    /// The raw counter values in flat sketch order (for snapshots).
    pub fn counter_values(&self) -> Vec<i64> {
        self.counters.clone()
    }

    /// Restores raw counter values previously taken with
    /// [`SketchBank::counter_values`] on a bank with the same geometry and
    /// seed.
    ///
    /// # Panics
    /// Panics if the length does not match.
    pub fn set_counter_values(&mut self, values: &[i64]) {
        assert_eq!(values.len(), self.counters.len(), "snapshot geometry mismatch");
        self.counters.copy_from_slice(values);
    }

    /// Adds every counter of `other` into this bank elementwise.
    ///
    /// This is Section 5.3's linearity made explicit: two banks built from
    /// the same `(seed, s1, s2, independence)` share identical ξ families,
    /// so for each sketch `X_merged = X_a + X_b` is exactly the counter a
    /// single bank would hold after seeing both streams.  The ξ-family
    /// compatibility (same seed and independence) is the *caller's*
    /// contract — the bank stores neither seed nor derivation, so it can
    /// only verify geometry.  Addition wraps, matching the update path's
    /// mod-2⁶⁴ group semantics.
    ///
    /// # Panics
    /// Panics if the two banks' geometries (`s1`, `s2`) differ.
    pub fn merge_from(&mut self, other: &SketchBank) {
        assert!(
            self.s1 == other.s1 && self.s2 == other.s2,
            "bank geometry mismatch: {}x{} vs {}x{}",
            self.s1,
            self.s2,
            other.s1,
            other.s2
        );
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c = c.wrapping_add(*o);
        }
    }

    /// Fills `buf` with the per-sketch ξ signs of `value` (±1 as `i8`).
    ///
    /// The ingest hot path evaluates each sketch's ξ polynomial for the
    /// same value several times (update, then the top-k frequency
    /// estimate, then possibly a deletion); computing the signs once and
    /// passing the buffer around roughly halves per-pattern cost.
    pub fn signs_into(&self, value: u64, buf: &mut Vec<i8>) {
        buf.clear();
        buf.resize(self.counters.len(), 0);
        self.xi.fill_signs_reduced(m61::reduce(value), buf);
    }

    /// The shared ξ slab backing this bank's sign families.
    #[inline]
    pub fn xi(&self) -> &XiSlab {
        &self.xi
    }

    /// Applies `count` occurrences of `value` while filling `buf` with the
    /// per-sketch ξ signs — [`SketchBank::signs_into`] followed by
    /// [`SketchBank::update_with_signs`], producing exactly the counters
    /// and sign buffer the two calls would.  The sign fill goes through
    /// the slab's pipelined power-basis sweep, which beats fusing the
    /// evaluation into the counter walk.
    pub fn apply_with_signs(&mut self, value: u64, count: i64, buf: &mut Vec<i8>) {
        buf.clear();
        buf.resize(self.counters.len(), 0);
        self.xi.fill_signs_reduced(m61::reduce(value), buf);
        for (c, &sg) in self.counters.iter_mut().zip(buf.iter()) {
            *c = c.wrapping_add(i64::from(sg).wrapping_mul(count));
        }
    }

    /// Applies `count` occurrences of the value whose signs are in `signs`
    /// — a stride walk over the counter slab, no ξ evaluation at all.
    pub fn update_with_signs(&mut self, signs: &[i8], count: i64) {
        debug_assert_eq!(signs.len(), self.counters.len());
        for (c, &sg) in self.counters.iter_mut().zip(signs) {
            *c = c.wrapping_add(i64::from(sg).wrapping_mul(count));
        }
    }

    /// Point estimate using precomputed signs (no restore list — the
    /// ingest path calls this right after restoring, so `X` is complete).
    pub fn estimate_point_with_signs(&self, signs: &[i8]) -> f64 {
        let mut ys = Vec::new();
        self.estimate_point_with_signs_into(signs, &mut ys)
    }

    /// [`SketchBank::estimate_point_with_signs`] with a caller-owned group
    /// scratch buffer, so the per-value top-k estimate allocates nothing
    /// after warm-up.
    pub fn estimate_point_with_signs_into(&self, signs: &[i8], ys: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(signs.len(), self.counters.len());
        ys.clear();
        // counters.len() == s1·s2 exactly, so chunks_exact visits every
        // group chunks() would — minus the per-chunk bounds bookkeeping.
        ys.extend(self.counters.chunks_exact(self.s1).zip(signs.chunks_exact(self.s1)).map(
            |(cs, sg)| {
                cs.iter()
                    .zip(sg)
                    .map(|(&c, &g)| (i64::from(g) * c) as f64)
                    .sum::<f64>()
                    / self.s1 as f64
            },
        ));
        median_in_place(ys)
    }
}

/// `X + Σ ξ_v · f_v` over the restore list.
///
/// Saturating: frequencies near `i64::MIN/MAX` only occur in corrupted
/// or hostile snapshots, and an estimate clamped at the integer edge is
/// preferable to an overflow panic in the query path.
#[inline]
pub(crate) fn effective_x(s: SketchView<'_>, restore: &[(u64, i64)]) -> i64 {
    let mut x = s.raw();
    for &(v, f) in restore {
        x = x.saturating_add(s.sign(v).saturating_mul(f));
    }
    x
}

/// `coeff · X^k/k! · Πξ` for one term.
#[inline]
pub(crate) fn term_value(s: SketchView<'_>, t: &Term, x_eff: f64) -> f64 {
    let k = t.queries.len();
    let xi_prod: i64 = t.queries.iter().map(|&q| s.sign(q)).product();
    let factorial: f64 = (2..=k).map(|i| i as f64).product();
    // A term with an absurd product size degrades to ±inf rather than
    // silently truncating the exponent.
    let exp = i32::try_from(k).unwrap_or(i32::MAX);
    t.coeff as f64 * x_eff.powi(exp) / factorial * xi_prod as f64
}

/// Median of a mutable slice (average of middle two when even).
pub(crate) fn median_in_place(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        // lint:allow(L1, reason = "n >= 1 asserted above, so n / 2 < n")
        xs[n / 2]
    } else {
        // lint:allow(L1, reason = "even n is >= 2 here, so n / 2 - 1 and n / 2 are in bounds")
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    /// A small synthetic stream with known frequencies.
    fn fill(bank: &mut SketchBank, freqs: &[(u64, i64)]) {
        for &(v, f) in freqs {
            bank.update(v, f);
        }
    }

    #[test]
    fn point_estimate_accuracy() {
        let freqs: Vec<(u64, i64)> = (0..200u64).map(|i| (i, 1 + (i as i64 % 10))).collect();
        let mut bank = SketchBank::new(99, 120, 7, 4);
        fill(&mut bank, &freqs);
        // f_100 = 1 + 100 % 10 = 1; heavy value check instead: f_9 = 10.
        let est = bank.estimate_point(9);
        assert!((est - 10.0).abs() < 15.0, "est {est}");
        // Large frequency: est should be relatively accurate.
        let mut bank2 = SketchBank::new(7, 120, 7, 4);
        let mut freqs2 = freqs.clone();
        freqs2.push((777, 500));
        fill(&mut bank2, &freqs2);
        let est2 = bank2.estimate_point(777);
        assert!(
            (est2 - 500.0).abs() / 500.0 < 0.15,
            "relative error too high: {est2}"
        );
    }

    #[test]
    fn set_estimate_matches_sum() {
        let freqs: Vec<(u64, i64)> = vec![(1, 300), (2, 200), (3, 100), (4, 50), (5, 10)];
        let mut bank = SketchBank::new(5, 150, 7, 4);
        fill(&mut bank, &freqs);
        let est = bank.estimate_set_restored(&[1, 2, 3], &[]);
        let truth = 600.0;
        assert!((est - truth).abs() / truth < 0.15, "est {est}");
    }

    #[test]
    fn restore_list_compensates_deletions() {
        let mut bank = SketchBank::new(21, 80, 7, 4);
        fill(&mut bank, &[(10, 400), (11, 30), (12, 5)]);
        // Delete the heavy hitter from the sketches, as top-k would.
        bank.update(10, -400);
        // Without compensation the estimate of 10 is ~0.
        let raw = bank.estimate_point(10);
        assert!(raw.abs() < 50.0, "deleted value still visible: {raw}");
        // With the restore list the estimate is exact-ish again.
        let est = bank.estimate_point_restored(10, &[(10, 400)]);
        assert!((est - 400.0).abs() / 400.0 < 0.1, "est {est}");
    }

    #[test]
    fn product_expression_estimate() {
        // Product of two counts: needs 5-wise ξ.
        let mut bank = SketchBank::new(31, 300, 9, 5);
        fill(&mut bank, &[(1, 120), (2, 80), (3, 40), (4, 10)]);
        let (terms, indep) = Expr::product_of_counts(&[1, 2]).expand().unwrap();
        assert_eq!(indep, 5);
        let est = bank.estimate_terms_restored(&terms, &[]);
        let truth = 120.0 * 80.0;
        assert!(
            (est - truth).abs() / truth < 0.4,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn mixed_expression_estimate() {
        // C1 - C2: truth 120 - 80 = 40.
        let mut bank = SketchBank::new(41, 250, 9, 4);
        fill(&mut bank, &[(1, 120), (2, 80), (3, 40)]);
        let e = Expr::Sub(Box::new(Expr::Count(1)), Box::new(Expr::Count(2)));
        let (terms, _) = e.expand().unwrap();
        let est = bank.estimate_terms_restored(&terms, &[]);
        assert!((est - 40.0).abs() < 25.0, "est {est}");
    }

    #[test]
    fn self_join_estimate() {
        let freqs: Vec<(u64, i64)> = vec![(1, 100), (2, 50), (3, 20)];
        let truth = (100 * 100 + 50 * 50 + 20 * 20) as f64;
        let mut bank = SketchBank::new(51, 200, 9, 4);
        fill(&mut bank, &freqs);
        let est = bank.estimate_self_join();
        assert!((est - truth).abs() / truth < 0.2, "est {est} truth {truth}");
    }

    #[test]
    fn shared_seed_banks_have_identical_signs() {
        let a = SketchBank::new(8, 3, 2, 4);
        let b = SketchBank::new(8, 3, 2, 4);
        for i in 0..2 {
            for j in 0..3 {
                for v in [0u64, 5, 999] {
                    assert_eq!(a.sketch(i, j).sign(v), b.sketch(i, j).sign(v));
                }
            }
        }
    }

    #[test]
    fn shared_xi_bank_matches_owned_bank() {
        // with_shared_xi must be indistinguishable from new() given the
        // slab a fresh new() would build.
        let xi = Arc::new(XiSlab::generate(17, 4 * 3, 4));
        let mut shared = SketchBank::with_shared_xi(xi, 4, 3);
        let mut owned = SketchBank::new(17, 4, 3, 4);
        for v in [1u64, 2, 99, 1 << 40] {
            shared.update(v, 3);
            owned.update(v, 3);
        }
        assert_eq!(shared.counter_values(), owned.counter_values());
    }

    #[test]
    #[should_panic(expected = "family count")]
    fn shared_xi_rejects_wrong_family_count() {
        let xi = Arc::new(XiSlab::generate(17, 5, 4));
        SketchBank::with_shared_xi(xi, 4, 3);
    }

    #[test]
    fn sketches_within_bank_are_distinct() {
        let bank = SketchBank::new(8, 4, 2, 4);
        // Any two sketches should disagree on some key sign.
        let mut distinct = 0;
        for a in 0..8usize {
            for b in (a + 1)..8usize {
                let sa = bank.sketch_at(a);
                let sb = bank.sketch_at(b);
                if (0..64u64).any(|v| sa.sign(v) != sb.sign(v)) {
                    distinct += 1;
                }
            }
        }
        assert_eq!(distinct, 8 * 7 / 2);
    }

    #[test]
    fn median_in_place_basics() {
        assert_eq!(median_in_place(&mut [3.0]), 3.0);
        assert_eq!(median_in_place(&mut [1.0, 9.0]), 5.0);
        assert_eq!(median_in_place(&mut [9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 9.0, 5.0]), 4.5);
    }

    #[test]
    fn memory_accounting() {
        let bank = SketchBank::new(0, 25, 7, 4);
        assert_eq!(bank.memory_bytes(), 25 * 7 * 16);
    }

    #[test]
    #[should_panic]
    fn zero_s1_rejected() {
        SketchBank::new(0, 0, 7, 4);
    }

    #[test]
    fn apply_with_signs_matches_two_pass_update() {
        let mut fused = SketchBank::new(12, 6, 3, 4);
        let mut two_pass = SketchBank::new(12, 6, 3, 4);
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        for v in [3u64, 99, 3, 777, 42] {
            fused.apply_with_signs(v, 1, &mut buf_a);
            two_pass.signs_into(v, &mut buf_b);
            two_pass.update_with_signs(&buf_b, 1);
            assert_eq!(buf_a, buf_b, "sign buffers diverged at {v}");
        }
        assert_eq!(fused.counter_values(), two_pass.counter_values());
    }

    #[test]
    fn estimate_with_signs_scratch_matches_allocating_form() {
        let mut bank = SketchBank::new(77, 8, 5, 4);
        fill(&mut bank, &[(3, 40), (9, 12), (1 << 50, 7)]);
        let mut signs = Vec::new();
        let mut ys = Vec::new();
        for v in [3u64, 9, 1 << 50, 999] {
            bank.signs_into(v, &mut signs);
            let a = bank.estimate_point_with_signs(&signs);
            let b = bank.estimate_point_with_signs_into(&signs, &mut ys);
            assert_eq!(a, b, "value {v}");
        }
    }

    #[test]
    fn merge_from_equals_single_bank_over_union_stream() {
        let mut a = SketchBank::new(17, 8, 3, 4);
        let mut b = SketchBank::new(17, 8, 3, 4);
        let mut whole = SketchBank::new(17, 8, 3, 4);
        for &(v, f) in &[(1u64, 10i64), (2, -3), (99, 1)] {
            a.update(v, f);
            whole.update(v, f);
        }
        for &(v, f) in &[(2u64, 5i64), (777, 40)] {
            b.update(v, f);
            whole.update(v, f);
        }
        a.merge_from(&b);
        assert_eq!(a.counter_values(), whole.counter_values());
    }

    #[test]
    #[should_panic(expected = "bank geometry mismatch")]
    fn merge_from_rejects_geometry_mismatch() {
        let mut a = SketchBank::new(17, 8, 3, 4);
        let b = SketchBank::new(17, 8, 2, 4);
        a.merge_from(&b);
    }

    #[test]
    fn independence_floor_is_four() {
        let bank = SketchBank::new(0, 1, 1, 2);
        assert_eq!(bank.independence(), 4);
    }
}
