//! The complete stream synopsis: virtual streams × top-k × sketch banks.
//!
//! Section 5.3 of the paper splits the one-dimensional stream into `p`
//! disjoint *virtual streams* by `t mod p`, sketching each separately; each
//! virtual stream has a smaller self-join size than the whole, so every
//! estimate gets cheaper for free.  All banks share the same random seed, so
//! their ξ families are identical and sketches of different virtual streams
//! can simply be *added* when a query spans several of them.  The paper's
//! experiments fix `p = 229` and combine virtual streams with one top-k
//! tracker per stream (Section 5.2).
//!
//! [`StreamSynopsis`] packages the whole construction behind two calls:
//! [`StreamSynopsis::insert`] during stream processing, and the
//! `estimate_*` family at query time.  Cross-bank estimation combines
//! per-sketch values *before* boosting (means/medians are nonlinear), using
//! the flat sketch access of [`SketchBank`].

use crate::bank::{self, SketchBank};
use crate::expr::{Expr, ExprError};
use crate::topk::TopKTracker;
use crate::xislab::XiSlab;
use sketchtree_hash::m61;
use std::fmt;
use std::sync::Arc;

/// Configuration of a [`StreamSynopsis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynopsisConfig {
    /// Accuracy knob: sketches averaged per group (paper: 25–75).
    pub s1: usize,
    /// Confidence knob: number of median groups (paper: 7, from
    /// `s2 = 2·lg(1/δ)` at δ = 0.1).
    pub s2: usize,
    /// Number of virtual streams `p` (paper: 229). 1 disables partitioning.
    pub virtual_streams: usize,
    /// Top-k tracker capacity per virtual stream (0 disables tracking).
    pub topk: usize,
    /// ξ independence degree; 4 suffices for point/sum queries, product
    /// terms of size `k` need `2k+1` (see [`crate::expr`]).
    pub independence: usize,
    /// Probability of invoking top-k processing per inserted value, in
    /// per-2^16 units (65536 = always, the default).  Section 5.2: "top-k
    /// processing could be invoked with a probability p for each tree
    /// pattern" when per-pattern processing is too expensive.  Sketch
    /// updates always happen; only Algorithm 4 is sampled.
    pub topk_probability: u16,
    /// Master random seed.
    pub seed: u64,
}

impl Default for SynopsisConfig {
    fn default() -> Self {
        Self {
            s1: 25,
            s2: 7,
            virtual_streams: 229,
            topk: 50,
            independence: 4,
            topk_probability: u16::MAX,
            seed: 0x5EED_0F5E_ED00,
        }
    }
}

/// Errors from synopsis estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynopsisError {
    /// Invalid query expression.
    Expr(ExprError),
    /// The expression needs more ξ independence than the synopsis was
    /// configured with.
    InsufficientIndependence {
        /// Independence the expression requires (`2k+1` for max term `k`).
        required: usize,
        /// Independence the synopsis has.
        actual: usize,
    },
}

impl fmt::Display for SynopsisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynopsisError::Expr(e) => write!(f, "{e}"),
            SynopsisError::InsufficientIndependence { required, actual } => write!(
                f,
                "expression requires {required}-wise independent ξ but synopsis has {actual}-wise; \
                 raise SynopsisConfig::independence"
            ),
        }
    }
}

impl std::error::Error for SynopsisError {}

impl From<ExprError> for SynopsisError {
    fn from(e: ExprError) -> Self {
        SynopsisError::Expr(e)
    }
}

/// The mutable state of a [`StreamSynopsis`], exported for snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynopsisState {
    /// Per-bank flat counter vectors.
    pub bank_counters: Vec<Vec<i64>>,
    /// Per-bank tracked `(value, frequency)` pairs.
    pub tracked: Vec<Vec<(u64, i64)>>,
    /// Stream length at snapshot time.
    pub values_processed: u64,
}

/// The full SketchTree stream synopsis over one-dimensional values.
///
/// ```
/// use sketchtree_sketch::{StreamSynopsis, SynopsisConfig};
/// let mut syn = StreamSynopsis::new(SynopsisConfig {
///     s1: 40, s2: 5, virtual_streams: 7, topk: 2,
///     ..SynopsisConfig::default()
/// });
/// for _ in 0..300 { syn.insert(12345); }
/// let est = syn.estimate_count(12345);
/// assert!((est - 300.0).abs() < 60.0);
/// ```
#[derive(Debug, Clone)]
pub struct StreamSynopsis {
    config: SynopsisConfig,
    banks: Vec<SketchBank>,
    topks: Vec<TopKTracker>,
    values_processed: u64,
    /// Values routed to each virtual stream since construction — a
    /// monitoring aid, deliberately *not* part of [`SynopsisState`] (the
    /// snapshot format is stable), so the counts reset to zero on
    /// restore.  Saturating: a partition counter pinned at `u64::MAX` is
    /// a better signal than a wrapped one.
    partition_inserts: Vec<u64>,
    /// Reusable per-insert ξ sign buffer (hot-path allocation avoidance).
    sign_buf: Vec<i8>,
    /// Memo of recently seen values' ξ sign rows (see [`SignCache`]).
    /// Like `sign_buf`, pure acceleration scratch: cloned synopses share
    /// no cache state semantics and snapshots never persist it.
    sign_cache: SignCache,
    /// Per-partition PRNGs for probabilistic top-k invocation.  One PRNG
    /// *per virtual stream* (not one global) so a partition's state
    /// evolution depends only on the subsequence of values routed to it —
    /// the property that lets [`StreamSynopsis::shards`] apply partitions
    /// concurrently and still land bit-identical to sequential insertion.
    topk_rngs: Vec<sketchtree_hash::SplitMix64>,
}

/// Slots in a [`SignCache`]; a power of two so the uniform low bits of a
/// Rabin-fingerprint value index directly.  At the paper's default
/// geometry (`s1·s2 = 175`) the cache occupies ~1.4 MiB.
const SIGN_CACHE_SLOTS: usize = 8192;

/// A direct-mapped cache of per-value ξ sign rows.
///
/// Every bank shares one ξ slab (Section 5.3's shared-seed requirement),
/// so a value's `s1·s2` sign row is a pure function of the value alone —
/// independent of the partition it routes to, of the stream history, and
/// of thread count.  Streaming pattern values repeat heavily (that skew
/// is the very reason top-k tracking exists), so remembering recently
/// seen rows skips the polynomial evaluations for the majority of
/// inserts while leaving every bit of synopsis state unchanged.  This is
/// transient acceleration scratch, like `sign_buf`: not part of
/// [`StreamSynopsis::memory_bytes`] (the paper's Section 7.5 accounting)
/// and never snapshotted.
#[derive(Debug, Clone)]
struct SignCache {
    families: usize,
    tags: Vec<u64>,
    filled: Vec<bool>,
    signs: Vec<i8>,
}

impl SignCache {
    fn new(families: usize) -> Self {
        Self {
            families,
            tags: vec![0; SIGN_CACHE_SLOTS],
            filled: vec![false; SIGN_CACHE_SLOTS],
            signs: vec![0; SIGN_CACHE_SLOTS * families],
        }
    }

    /// The sign row of `value`: served straight from the slot on a tag
    /// hit, recomputed into it (evicting the previous tenant) otherwise.
    fn signs(&mut self, xi: &XiSlab, value: u64) -> &[i8] {
        // lint:allow(L2, L3, reason = "u64 -> usize truncation is immediately masked to the slot range; the mask constant SIGN_CACHE_SLOTS - 1 is a compile-time power of two minus one")
        let slot = (value as usize) & (SIGN_CACHE_SLOTS - 1);
        // lint:allow(L3, reason = "stride cannot overflow: slot * families < signs.len(), a successful allocation size")
        let start = slot * self.families;
        // lint:allow(L1, L3, reason = "slot < SIGN_CACHE_SLOTS and signs has SIGN_CACHE_SLOTS * families entries, so start + families is in bounds and cannot overflow")
        let row = &mut self.signs[start..start + self.families];
        // lint:allow(L1, reason = "slot < SIGN_CACHE_SLOTS, and tags/filled each have SIGN_CACHE_SLOTS entries")
        if !(self.filled[slot] && self.tags[slot] == value) {
            xi.fill_signs_reduced(m61::reduce(value), row);
            // lint:allow(L1, reason = "same slot < SIGN_CACHE_SLOTS bound as the read above")
            self.tags[slot] = value;
            // lint:allow(L1, reason = "same slot < SIGN_CACHE_SLOTS bound as the read above")
            self.filled[slot] = true;
        }
        // lint:allow(L1, L3, reason = "same in-bounds range as above, reborrowed immutably")
        &self.signs[start..start + self.families]
    }
}

/// Applies one value to its partition's state: sign/counter update, then
/// (possibly sampled) Algorithm 4 top-k processing, then the partition's
/// monitoring counter.  This is the *single* per-value insert path —
/// [`StreamSynopsis::insert`] and [`SynopsisShard::insert`] both call it,
/// which is what makes the sharded pipeline bit-identical to sequential
/// ingestion by construction.  With `cache`, the ξ row comes from the
/// sign cache (recomputed only on a miss); without, it is evaluated
/// fused with the counter update.  Both produce identical signs, so the
/// synopsis state cannot tell the difference.
#[inline]
fn insert_routed(
    bank: &mut SketchBank,
    topk: &mut TopKTracker,
    rng: &mut sketchtree_hash::SplitMix64,
    topk_probability: u16,
    sign_buf: &mut Vec<i8>,
    cache: Option<&mut SignCache>,
    inserts: &mut u64,
    value: u64,
) {
    let invoke_topk = topk_probability == u16::MAX
        || (rng.next_u64() & 0xFFFF) < u64::from(topk_probability);
    // When top-k will run and the value is already tracked, Algorithm 4
    // starts by restoring its deleted instances — fold that restore into
    // the insert's own counter sweep (wrapping addition is associative,
    // so one sweep of `1 + f_t` is bit-identical to two sweeps).
    let restored = if invoke_topk {
        topk.untrack(value).unwrap_or(0)
    } else {
        0
    };
    let delta = 1i64.wrapping_add(restored);
    let signs: &[i8] = match cache {
        Some(c) => {
            let signs = c.signs(bank.xi(), value);
            bank.update_with_signs(signs, delta);
            signs
        }
        None => {
            bank.apply_with_signs(value, delta, sign_buf);
            sign_buf
        }
    };
    if invoke_topk {
        topk.process_restored_with_signs(value, bank, signs);
    }
    *inserts = inserts.saturating_add(1);
}

/// Exclusive view of one virtual-stream partition: its sketch bank, top-k
/// tracker, sampling PRNG and monitoring counter.
///
/// Obtained from [`StreamSynopsis::shards`].  Each shard owns state no
/// other shard aliases, so a batch whose values have been split by
/// partition (`value mod p`) can be applied by several threads at once —
/// one shard per owner — and, as long as every shard receives its values
/// in stream order, the final synopsis is byte-identical to sequential
/// [`StreamSynopsis::insert`] calls: cross-partition ordering never
/// influenced any partition's state to begin with.
pub struct SynopsisShard<'a> {
    index: usize,
    partitions: u64,
    topk_probability: u16,
    bank: &'a mut SketchBank,
    topk: &'a mut TopKTracker,
    rng: &'a mut sketchtree_hash::SplitMix64,
    inserts: &'a mut u64,
    sign_buf: Vec<i8>,
    inserted: u64,
}

impl SynopsisShard<'_> {
    /// This shard's partition index in `0..partition_count()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Inserts one occurrence of `value`, which must route to this
    /// partition (`value mod p == index`).
    ///
    /// # Panics
    /// Debug-panics on a mis-routed value — release builds would
    /// silently corrupt the partition-ownership invariant instead, so
    /// the routing is the caller's contract.
    pub fn insert(&mut self, value: u64) {
        debug_assert_eq!(
            value % self.partitions,
            // lint:allow(L2, reason = "usize -> u64 is widening; the shard index is < partitions which itself fits u64")
            self.index as u64,
            "value routed to the wrong shard"
        );
        insert_routed(
            self.bank,
            self.topk,
            self.rng,
            self.topk_probability,
            &mut self.sign_buf,
            None,
            self.inserts,
            value,
        );
        self.inserted = self.inserted.saturating_add(1);
    }

    /// Values applied through this view (the caller reports the total back
    /// via [`StreamSynopsis::note_inserted`] once the views are dropped).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }
}

impl StreamSynopsis {
    /// Builds an empty synopsis.
    ///
    /// # Panics
    /// Panics if `s1`, `s2` or `virtual_streams` is zero.
    pub fn new(config: SynopsisConfig) -> Self {
        assert!(config.virtual_streams > 0, "need at least one virtual stream");
        let effective_independence = config.independence.max(4);
        // All banks share the master seed → identical ξ families (Section
        // 5.3: "the sketches can share the same random seed", making
        // cross-stream sketch addition meaningful).  Identical families
        // means one coefficient slab serves every bank: generate it once
        // and share it by Arc instead of materialising p copies.
        assert!(config.s1 > 0 && config.s2 > 0, "s1 and s2 must be positive");
        let families = config.s1 * config.s2;
        let xi = Arc::new(XiSlab::generate(config.seed, families, effective_independence));
        let banks = (0..config.virtual_streams)
            .map(|_| SketchBank::with_shared_xi(Arc::clone(&xi), config.s1, config.s2))
            .collect();
        let topks = (0..config.virtual_streams)
            .map(|_| TopKTracker::new(config.topk))
            .collect();
        // One sampling PRNG per partition, each derived from the master
        // seed and the partition index — a partition's RNG consumption is
        // then a pure function of the subsequence routed to it, which is
        // what keeps sharded ingestion bit-identical to sequential.
        let topk_rngs = (0..config.virtual_streams)
            .map(|r| {
                sketchtree_hash::SplitMix64::new(sketchtree_hash::SplitMix64::derive(
                    config.seed ^ 0x70B0_70B0,
                    // lint:allow(L2, reason = "usize -> u64 partition index is widening on every supported target")
                    r as u64,
                ))
            })
            .collect();
        let partition_inserts = vec![0u64; config.virtual_streams];
        Self {
            config,
            banks,
            topks,
            values_processed: 0,
            partition_inserts,
            sign_buf: Vec::new(),
            sign_cache: SignCache::new(families),
            topk_rngs,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SynopsisConfig {
        &self.config
    }

    /// Total values inserted so far (the stream length `|S|`, used for
    /// selectivity computations).
    pub fn values_processed(&self) -> u64 {
        self.values_processed
    }

    #[inline]
    fn route(&self, value: u64) -> usize {
        // lint:allow(L2, reason = "usize -> u64 is widening, and the remainder is < banks.len() so the way back always fits")
        (value % self.banks.len() as u64) as usize
    }

    /// The first bank, used wherever any bank's shared ξ family or
    /// geometry works.
    fn first_bank(&self) -> &SketchBank {
        // lint:allow(L1, reason = "new() asserts virtual_streams > 0, so banks is never empty")
        &self.banks[0]
    }

    /// Inserts one occurrence of `value` (Algorithm 1 inner loop followed by
    /// Algorithm 4 top-k processing).
    pub fn insert(&mut self, value: u64) {
        let r = self.route(value);
        let (Some(bank), Some(topk), Some(rng), Some(inserts)) = (
            self.banks.get_mut(r),
            self.topks.get_mut(r),
            self.topk_rngs.get_mut(r),
            self.partition_inserts.get_mut(r),
        ) else {
            return;
        };
        insert_routed(
            bank,
            topk,
            rng,
            self.config.topk_probability,
            &mut self.sign_buf,
            Some(&mut self.sign_cache),
            inserts,
            value,
        );
        self.values_processed = self.values_processed.saturating_add(1);
    }

    /// Number of virtual-stream partitions (`p`).
    pub fn partition_count(&self) -> usize {
        self.banks.len()
    }

    /// The partition index `value mod p` routes to — the routing the
    /// sharded pipeline must replicate when splitting a batch.
    pub fn partition_of(&self, value: u64) -> usize {
        self.route(value)
    }

    /// Adds `n` to the stream-length counter.  Shard views cannot touch
    /// `values_processed` (it is whole-synopsis state, not partition
    /// state), so a sharded batch reports its total here afterwards —
    /// mirroring the single saturating add per value that sequential
    /// [`StreamSynopsis::insert`] performs.
    pub fn note_inserted(&mut self, n: u64) {
        self.values_processed = self.values_processed.saturating_add(n);
    }

    /// Splits the synopsis into one exclusive [`SynopsisShard`] per
    /// partition.  The shards borrow disjoint state, are `Send`, and may
    /// be moved to worker threads; each value must be applied to the
    /// shard [`StreamSynopsis::partition_of`] names, in stream order
    /// within that shard.  Afterwards, report the total inserted via
    /// [`StreamSynopsis::note_inserted`].
    pub fn shards(&mut self) -> Vec<SynopsisShard<'_>> {
        // lint:allow(L2, reason = "usize -> u64 partition count is widening on every supported target")
        let partitions = self.banks.len() as u64;
        let topk_probability = self.config.topk_probability;
        self.banks
            .iter_mut()
            .zip(self.topks.iter_mut())
            .zip(self.topk_rngs.iter_mut())
            .zip(self.partition_inserts.iter_mut())
            .enumerate()
            .map(|(index, (((bank, topk), rng), inserts))| SynopsisShard {
                index,
                partitions,
                topk_probability,
                bank,
                topk,
                rng,
                inserts,
                sign_buf: Vec::new(),
                inserted: 0,
            })
            .collect()
    }

    /// Merges another synopsis built over a *disjoint* slice of the same
    /// logical stream into this one (scale-out ingest: shard the stream
    /// across processes, merge the synopses afterwards).
    ///
    /// Requires the two configs to be identical — same seed, geometry,
    /// partitioning, top-k capacity and sampling probability — because
    /// only then do the per-partition banks share ξ families and routing,
    /// making counter addition meaningful (Section 5.3's linearity).
    /// Per partition, the banks are added elementwise and the top-k
    /// tracked sets merged with eviction flush (see
    /// [`TopKTracker::merge_from`]); `values_processed` and the
    /// per-partition monitoring counters add saturating.
    ///
    /// With top-k disabled the result is *byte-identical* to a single
    /// synopsis that saw both streams in any interleaving.  With top-k
    /// enabled the tracked sets are order-dependent to begin with, so the
    /// merge preserves the estimate invariant (delete condition) rather
    /// than bit-equality.  The receiver keeps its own top-k sampling RNG
    /// states: those govern only *future* inserts and are not part of the
    /// snapshot format.
    pub fn merge_from(&mut self, other: &StreamSynopsis) -> Result<(), &'static str> {
        if self.config != other.config {
            return Err("synopsis config mismatch: only identically configured synopses merge");
        }
        for (bank, obank) in self.banks.iter_mut().zip(&other.banks) {
            bank.merge_from(obank);
        }
        for ((topk, otopk), bank) in
            self.topks.iter_mut().zip(&other.topks).zip(self.banks.iter_mut())
        {
            topk.merge_from(otopk, bank);
        }
        for (p, &o) in self.partition_inserts.iter_mut().zip(&other.partition_inserts) {
            *p = p.saturating_add(o);
        }
        self.values_processed = self.values_processed.saturating_add(other.values_processed);
        Ok(())
    }

    /// Deletes one previously-inserted occurrence of `value` (AMS deletion:
    /// `X −= ξ_v`).  Used by windowed synopses to expire old stream
    /// elements.
    ///
    /// Only sound when top-k tracking is disabled: a tracker may itself
    /// have deleted instances of `value`, and expiry would double-delete.
    ///
    /// # Panics
    /// Debug-panics if a top-k tracker is active.
    pub fn delete(&mut self, value: u64) {
        debug_assert_eq!(
            self.config.topk, 0,
            "delete() requires top-k tracking to be disabled"
        );
        let r = self.route(value);
        if let Some(bank) = self.banks.get_mut(r) {
            bank.update(value, -1);
        }
        self.values_processed = self.values_processed.saturating_sub(1);
    }

    /// The restore list for a set of query values within one bank.
    fn bank_restores(&self, bank: usize, queries: &[u64]) -> Vec<(u64, i64)> {
        let in_bank: Vec<u64> = queries
            .iter()
            .copied()
            .filter(|&q| self.route(q) == bank)
            .collect();
        self.topks
            .get(bank)
            .map(|t| t.restore_list(&in_bank))
            .unwrap_or_default()
    }

    /// Estimates `COUNT` of a single value (Theorem 1).
    pub fn estimate_count(&self, value: u64) -> f64 {
        let r = self.route(value);
        let restore = self.bank_restores(r, &[value]);
        self.banks
            .get(r)
            .map_or(0.0, |b| b.estimate_point_restored(value, &restore))
    }

    /// Estimates the total frequency of a set of *distinct* values
    /// (Theorem 2).  Values may span several virtual streams; per-sketch
    /// contributions are combined across banks before boosting.
    pub fn estimate_total(&self, values: &[u64]) -> f64 {
        let n = self.first_bank().num_sketches();
        let mut acc = vec![0.0f64; n];
        for (b, (bank, topk)) in self.banks.iter().zip(&self.topks).enumerate() {
            let in_bank: Vec<u64> = values
                .iter()
                .copied()
                .filter(|&v| self.route(v) == b)
                .collect();
            if in_bank.is_empty() {
                continue;
            }
            let restore = topk.restore_list(&in_bank);
            bank.accumulate(&mut acc, |s| {
                let x_eff = bank::effective_x(s, &restore);
                let xi_sum: i64 = in_bank.iter().map(|&v| s.sign(v)).sum();
                xi_sum as f64 * x_eff as f64
            });
        }
        self.first_bank().boost(&acc)
    }

    /// Estimates a general query expression (Section 4).
    ///
    /// Per sketch index, each term's `X` is the sum of the effective
    /// counters of the virtual streams containing that term's queries
    /// (Section 5.3's sketch addition), then `coeff·Xᵏ/k!·Πξ` is evaluated
    /// and boosted.
    pub fn estimate_expr(&self, expr: &Expr) -> Result<f64, SynopsisError> {
        let (terms, _) = expr.expand()?;
        self.estimate_terms(&terms)
    }

    /// Estimates pre-expanded estimator terms (`coeff·Xᵏ/k!·Πξ`).  Exposed
    /// for callers that build terms directly — e.g. expressions over
    /// *unordered* patterns, whose leaves are already sums of atoms.
    ///
    /// Every term's queries must be distinct within the term and the
    /// synopsis must have `2k+1`-wise ξ independence for the largest term.
    pub fn estimate_terms(&self, terms: &[crate::expr::Term]) -> Result<f64, SynopsisError> {
        let max_k = terms.iter().map(|t| t.queries.len()).max().unwrap_or(0);
        let required = 2 * max_k + 1;
        let actual = self.config.independence.max(4);
        if max_k > 1 && required > actual {
            return Err(SynopsisError::InsufficientIndependence { required, actual });
        }
        // Within one term, a repeated query would make ξ_q² = 1 and bias
        // the estimator — the distinctness the paper assumes.
        for t in terms {
            for w in t.queries.windows(2) {
                // Term queries are kept sorted by construction.
                if let [a, b] = w {
                    if a == b {
                        return Err(SynopsisError::Expr(ExprError::DuplicateQuery(*a)));
                    }
                }
            }
        }
        let mut queries: Vec<u64> = terms.iter().flat_map(|t| t.queries.iter().copied()).collect();
        queries.sort_unstable();
        queries.dedup();
        // Effective X per (bank, sketch idx), with per-bank restores for all
        // queries of the expression.
        let n = self.first_bank().num_sketches();
        let mut x_eff: Vec<Vec<i64>> = Vec::with_capacity(self.banks.len());
        for (b, bank) in self.banks.iter().enumerate() {
            let restore = self.bank_restores(b, &queries);
            let mut xs = Vec::with_capacity(n);
            for idx in 0..n {
                xs.push(bank::effective_x(bank.sketch_at(idx), &restore));
            }
            x_eff.push(xs);
        }
        // Which banks each term touches.
        let term_banks: Vec<Vec<usize>> = terms
            .iter()
            .map(|t| {
                let mut b: Vec<usize> = t.queries.iter().map(|&q| self.route(q)).collect();
                b.sort_unstable();
                b.dedup();
                b
            })
            .collect();
        let acc: Vec<f64> = (0..n)
            .map(|idx| {
                let sketch = self.first_bank().sketch_at(idx);
                terms
                    .iter()
                    .zip(&term_banks)
                    .map(|(t, banks)| {
                        let x: i64 = banks
                            .iter()
                            .map(|&b| {
                                x_eff.get(b).and_then(|xs| xs.get(idx)).copied().unwrap_or(0)
                            })
                            .sum();
                        // ξ families are shared across banks, so any bank's
                        // sketch at this index gives the right signs.
                        bank::term_value(sketch, t, x as f64)
                    })
                    .sum()
            })
            .collect();
        Ok(self.first_bank().boost(&acc))
    }

    /// Estimates the *residual* self-join size — `Σ f_i²` of what is still
    /// in the sketches after top-k deletions, summed over virtual streams.
    /// This is the quantity that controls estimation variance (Theorems
    /// 1–2) and the one the top-k strategy drives down.
    pub fn estimate_residual_self_join(&self) -> f64 {
        let n = self.first_bank().num_sketches();
        let mut acc = vec![0.0f64; n];
        for bank in &self.banks {
            // Streams are disjoint, so SJ(S) = Σ_b SJ(S_b); accumulate each
            // bank's X² per sketch and boost once.
            bank.accumulate(&mut acc, |s| s.second_moment() as f64);
        }
        self.first_bank().boost(&acc)
    }

    /// The `s2` per-group means of the residual self-join estimator,
    /// *before* the final median — the spread among them is the
    /// operator-visible variance proxy of the `s1 × s2` boosting
    /// construction.  Theorem 1 says each group mean concentrates around
    /// the true `SJ(S)` with variance shrinking as `1/s1`; if the means
    /// disagree wildly, every estimate this synopsis produces is riding
    /// the median's confidence amplification harder than usual.
    pub fn residual_self_join_group_means(&self) -> Vec<f64> {
        let n = self.first_bank().num_sketches();
        let mut acc = vec![0.0f64; n];
        for bank in &self.banks {
            bank.accumulate(&mut acc, |s| s.second_moment() as f64);
        }
        self.first_bank().group_means(&acc)
    }

    /// `(nonzero, total)` sketch-counter occupancy across every bank.
    /// Fill near zero on a long stream means the stream never reached
    /// those partitions; fill near one is the steady state.
    pub fn counter_occupancy(&self) -> (u64, u64) {
        let nonzero = self
            .banks
            .iter()
            .map(|b| u64::try_from(b.nonzero_counters()).unwrap_or(u64::MAX))
            .fold(0u64, u64::saturating_add);
        let total = self
            .banks
            .iter()
            .map(|b| u64::try_from(b.num_sketches()).unwrap_or(u64::MAX))
            .fold(0u64, u64::saturating_add);
        (nonzero, total)
    }

    /// `(tracked, capacity)` top-k heap occupancy summed over virtual
    /// streams.  A heap far below capacity on a skewed stream means the
    /// delete condition is rejecting candidates (or top-k sampling is
    /// throttled); a full heap is the expected steady state.
    pub fn topk_occupancy(&self) -> (u64, u64) {
        let tracked = self
            .topks
            .iter()
            .map(|t| u64::try_from(t.len()).unwrap_or(u64::MAX))
            .fold(0u64, u64::saturating_add);
        let capacity = self
            .topks
            .iter()
            .map(|t| u64::try_from(t.capacity()).unwrap_or(u64::MAX))
            .fold(0u64, u64::saturating_add);
        (tracked, capacity)
    }

    /// Values routed to each virtual stream since this synopsis was
    /// constructed (monitoring only — resets on snapshot restore; see the
    /// field note).  Routing is `value mod p`, so on a healthy stream
    /// these counts are near-uniform; a hot partition means many distinct
    /// patterns collided into one stream and its local self-join size —
    /// hence its error bound — is worse than the others'.
    pub fn partition_insert_counts(&self) -> &[u64] {
        &self.partition_inserts
    }

    /// All tracked heavy hitters across virtual streams, most frequent
    /// first.
    pub fn tracked_heavy_hitters(&self) -> Vec<(u64, i64)> {
        let mut out: Vec<(u64, i64)> = self
            .topks
            .iter()
            .flat_map(|t| t.tracked_values())
            .collect();
        out.sort_by_key(|&(_, f)| std::cmp::Reverse(f));
        out
    }

    /// Captures the mutable state of the synopsis for a snapshot: per-bank
    /// counters, per-bank tracked heavy hitters, and the stream length.
    /// The immutable parts (ξ families) reconstruct from the config.
    pub fn export_state(&self) -> SynopsisState {
        SynopsisState {
            bank_counters: self.banks.iter().map(SketchBank::counter_values).collect(),
            tracked: self.topks.iter().map(TopKTracker::tracked_values).collect(),
            values_processed: self.values_processed,
        }
    }

    /// Rebuilds a synopsis from a config and exported state.
    ///
    /// # Panics
    /// Panics if the state geometry does not match the config.
    pub fn from_state(config: SynopsisConfig, state: SynopsisState) -> Self {
        let mut syn = Self::new(config);
        assert_eq!(
            state.bank_counters.len(),
            syn.banks.len(),
            "snapshot virtual-stream count mismatch"
        );
        assert_eq!(state.tracked.len(), syn.topks.len());
        for (bank, counters) in syn.banks.iter_mut().zip(&state.bank_counters) {
            bank.set_counter_values(counters);
        }
        for (topk, entries) in syn.topks.iter_mut().zip(&state.tracked) {
            topk.restore_tracked(entries);
        }
        syn.values_processed = state.values_processed;
        syn
    }

    /// Total synopsis memory in bytes: counters, seeds, and top-k slots
    /// (the paper's accounting in Section 7.5).
    pub fn memory_bytes(&self) -> usize {
        let banks: usize = self.banks.iter().map(SketchBank::memory_bytes).sum();
        let topk: usize = self.topks.iter().map(TopKTracker::memory_bytes).sum();
        banks + topk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(topk: usize) -> SynopsisConfig {
        SynopsisConfig {
            s1: 60,
            s2: 7,
            virtual_streams: 13,
            topk,
            independence: 5,
            topk_probability: u16::MAX,
            seed: 17,
        }
    }

    fn skewed_stream() -> Vec<(u64, i64)> {
        // Zipf-ish frequencies over 60 values.
        (1..=60u64).map(|v| (v * 101, (600 / v) as i64)).collect()
    }

    fn fill(s: &mut StreamSynopsis, freqs: &[(u64, i64)]) {
        let max_f = freqs.iter().map(|&(_, f)| f).max().unwrap();
        for round in 0..max_f {
            for &(v, f) in freqs {
                if round < f {
                    s.insert(v);
                }
            }
        }
    }

    #[test]
    fn point_estimates_with_topk() {
        let mut syn = StreamSynopsis::new(small_config(5));
        let freqs = skewed_stream();
        fill(&mut syn, &freqs);
        assert_eq!(
            syn.values_processed(),
            freqs.iter().map(|&(_, f)| f as u64).sum::<u64>()
        );
        // Heavy and medium values should estimate well.
        for &(v, f) in freqs.iter().take(12) {
            let est = syn.estimate_count(v);
            assert!(
                (est - f as f64).abs() / (f as f64) < 0.35,
                "value {v}: est {est} vs {f}"
            );
        }
    }

    #[test]
    fn set_estimate_across_banks() {
        let mut syn = StreamSynopsis::new(small_config(5));
        let freqs = skewed_stream();
        fill(&mut syn, &freqs);
        // Three values guaranteed to hit different banks (101, 202, 303 mod 13 differ).
        let q = [101u64, 202, 303];
        let truth: i64 = freqs
            .iter()
            .filter(|(v, _)| q.contains(v))
            .map(|&(_, f)| f)
            .sum();
        let est = syn.estimate_total(&q);
        assert!(
            (est - truth as f64).abs() / (truth as f64) < 0.25,
            "est {est} vs {truth}"
        );
    }

    #[test]
    fn expr_sum_matches_estimate_total_semantics() {
        let mut syn = StreamSynopsis::new(small_config(0));
        fill(&mut syn, &[(5, 200), (18, 100), (33, 50)]);
        let e = Expr::sum_of_counts(&[5, 18]);
        let est = syn.estimate_expr(&e).unwrap();
        assert!((est - 300.0).abs() / 300.0 < 0.25, "est {est}");
    }

    #[test]
    fn expr_product_across_banks() {
        let mut syn = StreamSynopsis::new(small_config(0));
        fill(&mut syn, &[(5, 150), (18, 100), (33, 40)]);
        let e = Expr::product_of_counts(&[5, 18]);
        let est = syn.estimate_expr(&e).unwrap();
        let truth = 150.0 * 100.0;
        assert!(
            (est - truth).abs() / truth < 0.5,
            "est {est} vs {truth}"
        );
    }

    #[test]
    fn expr_independence_guard() {
        let syn = StreamSynopsis::new(SynopsisConfig {
            independence: 4,
            ..small_config(0)
        });
        // Triple product needs 7-wise.
        let e = Expr::product_of_counts(&[1, 2, 3]);
        match syn.estimate_expr(&e) {
            Err(SynopsisError::InsufficientIndependence { required: 7, actual: 4 }) => {}
            other => panic!("expected independence error, got {other:?}"),
        }
    }

    #[test]
    fn expr_duplicate_guard() {
        let syn = StreamSynopsis::new(small_config(0));
        let e = Expr::Mul(Box::new(Expr::Count(9)), Box::new(Expr::Count(9)));
        assert!(matches!(
            syn.estimate_expr(&e),
            Err(SynopsisError::Expr(ExprError::DuplicateQuery(9)))
        ));
    }

    #[test]
    fn topk_reduces_residual_self_join() {
        let freqs = skewed_stream();
        let mut no_topk = StreamSynopsis::new(small_config(0));
        fill(&mut no_topk, &freqs);
        let mut with_topk = StreamSynopsis::new(small_config(8));
        fill(&mut with_topk, &freqs);
        let sj0 = no_topk.estimate_residual_self_join();
        let sj1 = with_topk.estimate_residual_self_join();
        assert!(
            sj1 < sj0 * 0.5,
            "top-k did not reduce SJ: {sj0} -> {sj1}"
        );
        assert!(!with_topk.tracked_heavy_hitters().is_empty());
        // The heaviest value should be among the tracked ones.
        let hh: Vec<u64> = with_topk
            .tracked_heavy_hitters()
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert!(hh.contains(&101), "heavy hitters: {hh:?}");
    }

    #[test]
    fn topk_improves_light_value_accuracy() {
        // With heavy values deleted, light values estimate better.
        let freqs = skewed_stream();
        let light: Vec<(u64, i64)> = freqs.iter().copied().filter(|&(_, f)| f <= 30).collect();
        let err = |syn: &StreamSynopsis| -> f64 {
            light
                .iter()
                .map(|&(v, f)| (syn.estimate_count(v) - f as f64).abs() / f as f64)
                .sum::<f64>()
                / light.len() as f64
        };
        let mut no_topk = StreamSynopsis::new(small_config(0));
        fill(&mut no_topk, &freqs);
        let mut with_topk = StreamSynopsis::new(small_config(10));
        fill(&mut with_topk, &freqs);
        let (e0, e1) = (err(&no_topk), err(&with_topk));
        assert!(
            e1 < e0,
            "top-k did not improve light-value error: {e0:.3} -> {e1:.3}"
        );
    }

    #[test]
    fn memory_accounting_scales() {
        let a = StreamSynopsis::new(SynopsisConfig {
            s1: 25,
            ..small_config(10)
        });
        let b = StreamSynopsis::new(SynopsisConfig {
            s1: 50,
            ..small_config(10)
        });
        assert!(b.memory_bytes() > a.memory_bytes());
        let expected = 13 * (50 * 7 * 16) + 13 * (10 * 24);
        assert_eq!(b.memory_bytes(), expected);
    }

    #[test]
    fn single_virtual_stream_works() {
        let mut syn = StreamSynopsis::new(SynopsisConfig {
            virtual_streams: 1,
            ..small_config(0)
        });
        fill(&mut syn, &[(7, 100)]);
        let est = syn.estimate_count(7);
        assert!((est - 100.0).abs() < 30.0, "est {est}");
    }

    #[test]
    fn export_import_state_roundtrip() {
        let mut syn = StreamSynopsis::new(small_config(3));
        fill(&mut syn, &[(5, 80), (18, 40), (33, 7)]);
        let state = syn.export_state();
        let restored = StreamSynopsis::from_state(small_config(3), state.clone());
        for v in [5u64, 18, 33, 999] {
            assert_eq!(syn.estimate_count(v), restored.estimate_count(v), "value {v}");
        }
        assert_eq!(syn.values_processed(), restored.values_processed());
        assert_eq!(syn.tracked_heavy_hitters(), restored.tracked_heavy_hitters());
        // State equality is structural.
        assert_eq!(restored.export_state(), state);
    }

    #[test]
    #[should_panic]
    fn from_state_geometry_mismatch_panics() {
        let syn = StreamSynopsis::new(small_config(0));
        let state = syn.export_state();
        let other = SynopsisConfig {
            virtual_streams: 5,
            ..small_config(0)
        };
        StreamSynopsis::from_state(other, state);
    }

    #[test]
    fn delete_expires_values_exactly() {
        let mut syn = StreamSynopsis::new(SynopsisConfig {
            topk: 0,
            ..small_config(0)
        });
        for _ in 0..50 {
            syn.insert(7);
        }
        for _ in 0..20 {
            syn.insert(11);
        }
        for _ in 0..50 {
            syn.delete(7);
        }
        assert_eq!(syn.estimate_count(7), 0.0);
        let est11 = syn.estimate_count(11);
        assert!((est11 - 20.0).abs() < 6.0, "est {est11}");
        assert_eq!(syn.values_processed(), 20);
    }

    #[test]
    fn probabilistic_topk_tracks_fewer_but_still_heavy() {
        // With topk invoked on ~1/4 of inserts, heavy hitters still get
        // found (they recur), at a fraction of the processing cost.
        let freqs = skewed_stream();
        let mut sampled = StreamSynopsis::new(SynopsisConfig {
            topk_probability: u16::MAX / 4,
            ..small_config(8)
        });
        fill(&mut sampled, &freqs);
        let hh: Vec<u64> = sampled
            .tracked_heavy_hitters()
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert!(!hh.is_empty(), "sampling must not disable tracking");
        assert!(hh.contains(&101), "heaviest value missed: {hh:?}");
        // Counts remain consistent: the heavy value estimates well.
        let est = sampled.estimate_count(101);
        assert!((est - 600.0).abs() / 600.0 < 0.3, "est {est}");
    }

    #[test]
    fn topk_probability_zero_equivalent_to_disabled() {
        let freqs = skewed_stream();
        let mut never = StreamSynopsis::new(SynopsisConfig {
            topk_probability: 0,
            ..small_config(8)
        });
        fill(&mut never, &freqs);
        assert!(never.tracked_heavy_hitters().is_empty());
    }

    #[test]
    fn health_accessors_track_stream_state() {
        let mut syn = StreamSynopsis::new(small_config(5));
        let (nz0, total) = syn.counter_occupancy();
        assert_eq!(nz0, 0, "fresh synopsis has all-zero counters");
        assert_eq!(total, 13 * 60 * 7);
        assert_eq!(syn.topk_occupancy(), (0, 13 * 5));
        assert!(syn.partition_insert_counts().iter().all(|&c| c == 0));

        let freqs = skewed_stream();
        fill(&mut syn, &freqs);

        // With topk_probability = MAX and 60 distinct values under a 13×5
        // top-k capacity, *every* value is tracked exactly and deleted from
        // the sketch — all-zero counters are the correct steady state.
        // Counter fill is therefore asserted on a tracker-free synopsis.
        let mut untracked = StreamSynopsis::new(small_config(0));
        fill(&mut untracked, &freqs);
        let (nz, _) = untracked.counter_occupancy();
        assert!(nz > 0, "stream left no mark on the counters");
        let (tracked, cap) = syn.topk_occupancy();
        assert!(tracked > 0 && tracked <= cap, "tracked {tracked} cap {cap}");
        let inserts: u64 = syn.partition_insert_counts().iter().sum();
        assert_eq!(inserts, syn.values_processed());
        // Group means average to something near the boosted estimate.
        let means = syn.residual_self_join_group_means();
        assert_eq!(means.len(), 7);
        let boosted = syn.estimate_residual_self_join();
        let mut sorted = means.clone();
        sorted.sort_by(f64::total_cmp);
        // The boosted value IS the median of these means.
        assert_eq!(sorted[sorted.len() / 2], boosted);
    }

    #[test]
    fn partition_counts_reset_on_restore_but_state_roundtrips() {
        let mut syn = StreamSynopsis::new(small_config(3));
        fill(&mut syn, &[(5, 80), (18, 40)]);
        assert!(syn.partition_insert_counts().iter().sum::<u64>() > 0);
        let restored = StreamSynopsis::from_state(small_config(3), syn.export_state());
        // Monitoring counts are not part of the snapshot format.
        assert!(restored.partition_insert_counts().iter().all(|&c| c == 0));
        // But the sketch state itself is intact.
        assert_eq!(syn.estimate_count(5), restored.estimate_count(5));
    }

    /// Replays `values` through shard views the way the parallel pipeline
    /// does: split by partition preserving stream order, then apply each
    /// partition's queue through its own [`SynopsisShard`].
    fn insert_via_shards(syn: &mut StreamSynopsis, values: &[u64]) {
        let p = syn.partition_count();
        let mut queues: Vec<Vec<u64>> = vec![Vec::new(); p];
        for &v in values {
            queues[syn.partition_of(v)].push(v);
        }
        let mut shards = syn.shards();
        // Deliberately iterate the shards in *reverse* partition order:
        // cross-partition application order must not matter.
        for shard in shards.iter_mut().rev() {
            for &v in &queues[shard.index()] {
                shard.insert(v);
            }
        }
        let inserted: u64 = shards.iter().map(SynopsisShard::inserted).sum();
        drop(shards);
        syn.note_inserted(inserted);
    }

    fn zipf_values() -> Vec<u64> {
        let mut vals = Vec::new();
        for &(v, f) in &skewed_stream() {
            for _ in 0..f {
                vals.push(v);
            }
        }
        // Deterministic Fisher–Yates so partitions see mixed stream order.
        let mut rng = sketchtree_hash::SplitMix64::new(99);
        for i in (1..vals.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            vals.swap(i, j);
        }
        vals
    }

    #[test]
    fn sharded_insert_is_bit_identical_to_sequential() {
        for prob in [u16::MAX, u16::MAX / 3, 0] {
            let cfg = SynopsisConfig {
                topk_probability: prob,
                ..small_config(6)
            };
            let values = zipf_values();
            let mut seq = StreamSynopsis::new(cfg.clone());
            for &v in &values {
                seq.insert(v);
            }
            let mut sharded = StreamSynopsis::new(cfg);
            insert_via_shards(&mut sharded, &values);
            assert_eq!(
                seq.export_state(),
                sharded.export_state(),
                "topk_probability {prob}: sharded state diverged from sequential"
            );
            assert_eq!(seq.values_processed(), sharded.values_processed());
            assert_eq!(
                seq.partition_insert_counts(),
                sharded.partition_insert_counts()
            );
            assert_eq!(
                seq.tracked_heavy_hitters(),
                sharded.tracked_heavy_hitters()
            );
        }
    }

    #[test]
    fn merge_without_topk_is_byte_identical_to_sequential() {
        let cfg = SynopsisConfig { topk: 0, ..small_config(0) };
        let values = zipf_values();
        let (first, second) = values.split_at(values.len() / 3);
        let mut whole = StreamSynopsis::new(cfg.clone());
        for &v in &values {
            whole.insert(v);
        }
        let mut a = StreamSynopsis::new(cfg.clone());
        for &v in first {
            a.insert(v);
        }
        let mut b = StreamSynopsis::new(cfg);
        for &v in second {
            b.insert(v);
        }
        a.merge_from(&b).expect("configs match");
        assert_eq!(a.export_state(), whole.export_state());
        assert_eq!(a.partition_insert_counts(), whole.partition_insert_counts());
    }

    #[test]
    fn merge_with_topk_preserves_estimates() {
        let cfg = small_config(3);
        let freqs = skewed_stream();
        let (sa, sb) = freqs.split_at(freqs.len() / 2);
        let mut a = StreamSynopsis::new(cfg.clone());
        fill(&mut a, sa);
        let mut b = StreamSynopsis::new(cfg);
        fill(&mut b, sb);
        let total: u64 = freqs.iter().map(|&(_, f)| f as u64).sum();
        a.merge_from(&b).expect("configs match");
        assert_eq!(a.values_processed(), total);
        for &(v, f) in freqs.iter().take(12) {
            let est = a.estimate_count(v);
            assert!(
                (est - f as f64).abs() < (f as f64).mul_add(0.35, 10.0),
                "value {v}: est {est} vs {f}"
            );
        }
    }

    #[test]
    fn merge_rejects_config_mismatch() {
        let mut a = StreamSynopsis::new(small_config(3));
        let b = StreamSynopsis::new(SynopsisConfig { seed: 18, ..small_config(3) });
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn shards_cover_every_partition_exactly_once() {
        let mut syn = StreamSynopsis::new(small_config(2));
        let shards = syn.shards();
        let indices: Vec<usize> = shards.iter().map(SynopsisShard::index).collect();
        assert_eq!(indices, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn shards_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SynopsisShard<'_>>();
    }

    #[test]
    #[should_panic]
    fn zero_virtual_streams_rejected() {
        StreamSynopsis::new(SynopsisConfig {
            virtual_streams: 0,
            ..SynopsisConfig::default()
        });
    }
}
