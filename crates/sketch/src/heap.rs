//! An indexed binary min-heap.
//!
//! Algorithm 4 of the paper maintains a min-heap `H` of estimated
//! frequencies alongside a list `L` of the tracked values, and needs three
//! operations a plain `BinaryHeap` cannot provide: peek/pop the minimum,
//! *remove an arbitrary tracked value* (when a tracked pattern reappears in
//! the stream it is pulled out, restored, and re-estimated), and membership
//! lookup with the stored frequency.  This indexed heap keys entries by a
//! `u64` value and keeps a position map for O(log n) removal by key.

use std::collections::HashMap;

/// A min-heap of `(value, priority)` entries indexed by value.
#[derive(Debug, Clone, Default)]
pub struct IndexedMinHeap {
    /// Heap array of (value, priority).
    heap: Vec<(u64, i64)>,
    /// value → index in `heap`.
    pos: HashMap<u64, usize>,
}

impl IndexedMinHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty heap pre-sized for `n` entries at a load factor low
    /// enough that churning (remove + reinsert, Algorithm 4's per-value
    /// discipline) never forces the position map to reallocate: hash
    /// tables near their load limit grow when deletions leave tombstone
    /// pressure, and the ingest hot path must stay allocation-free after
    /// construction.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: Vec::with_capacity(n),
            pos: HashMap::with_capacity(n.saturating_mul(2)),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The minimum priority, if any (the paper's `Root(H)`).
    pub fn min_priority(&self) -> Option<i64> {
        self.heap.first().map(|&(_, p)| p)
    }

    /// The entry with minimum priority.
    pub fn peek_min(&self) -> Option<(u64, i64)> {
        self.heap.first().copied()
    }

    /// The priority stored for `value`, if tracked.
    pub fn get(&self, value: u64) -> Option<i64> {
        let &i = self.pos.get(&value)?;
        self.heap.get(i).map(|&(_, p)| p)
    }

    /// True if `value` is tracked.
    pub fn contains(&self, value: u64) -> bool {
        self.pos.contains_key(&value)
    }

    /// Inserts a new entry.
    ///
    /// # Panics
    /// Panics if `value` is already tracked (callers must remove first —
    /// Algorithm 4's delete-then-reinsert discipline makes this a logic
    /// error, not a situation to paper over).
    pub fn insert(&mut self, value: u64, priority: i64) {
        assert!(
            !self.pos.contains_key(&value),
            "value {value} already tracked"
        );
        let i = self.heap.len();
        self.heap.push((value, priority));
        self.pos.insert(value, i);
        self.sift_up(i);
    }

    /// Removes and returns the minimum entry.
    pub fn pop_min(&mut self) -> Option<(u64, i64)> {
        if self.heap.is_empty() {
            return None;
        }
        Some(self.remove_at(0))
    }

    /// Removes an arbitrary tracked value, returning its priority.
    pub fn remove(&mut self, value: u64) -> Option<i64> {
        let i = *self.pos.get(&value)?;
        Some(self.remove_at(i).1)
    }

    /// Iterates `(value, priority)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, i64)> + '_ {
        self.heap.iter().copied()
    }

    fn remove_at(&mut self, i: usize) -> (u64, i64) {
        let last = self.heap.len() - 1;
        self.swap(i, last);
        // lint:allow(L1, reason = "both callers pass i < len, so the heap is non-empty")
        let removed = self.heap.pop().expect("non-empty");
        self.pos.remove(&removed.0);
        if i < self.heap.len() {
            // The element moved into position i may need to go either way.
            self.sift_down(i);
            self.sift_up(i);
        }
        removed
    }

    fn swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.heap.swap(a, b);
        // lint:allow(L1, reason = "Vec::swap on the line above already bounds-checked a and b")
        self.pos.insert(self.heap[a].0, a);
        // lint:allow(L1, reason = "Vec::swap above already bounds-checked a and b")
        self.pos.insert(self.heap[b].0, b);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            // lint:allow(L1, reason = "i < len at every call site and parent < i")
            if self.heap[i].1 < self.heap[parent].1 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            // lint:allow(L1, reason = "guarded by the l < len test on the same line; smallest <= i < len")
            if l < self.heap.len() && self.heap[l].1 < self.heap[smallest].1 {
                smallest = l;
            }
            // lint:allow(L1, reason = "guarded by the r < len test on the same line; smallest < len")
            if r < self.heap.len() && self.heap[r].1 < self.heap[smallest].1 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    /// Debug invariant check: heap order and position-map consistency.
    #[cfg(test)]
    fn check_invariants(&self) {
        for i in 1..self.heap.len() {
            assert!(self.heap[(i - 1) / 2].1 <= self.heap[i].1, "heap order");
        }
        assert_eq!(self.pos.len(), self.heap.len());
        for (i, &(v, _)) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[&v], i, "position map");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_min() {
        let mut h = IndexedMinHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.min_priority(), None);
        h.insert(10, 5);
        h.insert(20, 3);
        h.insert(30, 8);
        h.check_invariants();
        assert_eq!(h.peek_min(), Some((20, 3)));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn pop_in_priority_order() {
        let mut h = IndexedMinHeap::new();
        for (v, p) in [(1, 50), (2, 10), (3, 30), (4, 20), (5, 40)] {
            h.insert(v, p);
            h.check_invariants();
        }
        let mut priorities = Vec::new();
        while let Some((_, p)) = h.pop_min() {
            h.check_invariants();
            priorities.push(p);
        }
        assert_eq!(priorities, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn remove_arbitrary() {
        let mut h = IndexedMinHeap::new();
        for (v, p) in [(1, 50), (2, 10), (3, 30), (4, 20), (5, 40)] {
            h.insert(v, p);
        }
        assert_eq!(h.remove(3), Some(30));
        h.check_invariants();
        assert_eq!(h.remove(3), None);
        assert!(!h.contains(3));
        assert_eq!(h.len(), 4);
        assert_eq!(h.get(5), Some(40));
        // Heap order preserved after removal.
        assert_eq!(h.pop_min(), Some((2, 10)));
        assert_eq!(h.pop_min(), Some((4, 20)));
    }

    #[test]
    fn remove_min_via_remove() {
        let mut h = IndexedMinHeap::new();
        h.insert(1, 1);
        h.insert(2, 2);
        assert_eq!(h.remove(1), Some(1));
        assert_eq!(h.peek_min(), Some((2, 2)));
    }

    #[test]
    #[should_panic]
    fn duplicate_insert_panics() {
        let mut h = IndexedMinHeap::new();
        h.insert(7, 1);
        h.insert(7, 2);
    }

    #[test]
    fn stress_against_reference() {
        use sketchtree_hash::SplitMix64;
        let mut h = IndexedMinHeap::new();
        let mut reference: std::collections::HashMap<u64, i64> = Default::default();
        let mut rng = SplitMix64::new(2024);
        for step in 0..2000 {
            match rng.next_below(3) {
                0 => {
                    let v = rng.next_below(64);
                    reference.entry(v).or_insert_with(|| {
                        let p = rng.next_below(1000) as i64;
                        h.insert(v, p);
                        p
                    });
                }
                1 => {
                    let v = rng.next_below(64);
                    assert_eq!(h.remove(v), reference.remove(&v), "step {step}");
                }
                _ => {
                    let expect = reference.values().min().copied();
                    assert_eq!(h.min_priority(), expect, "step {step}");
                    if let Some((v, p)) = h.pop_min() {
                        assert_eq!(reference.remove(&v), Some(p));
                        assert_eq!(Some(p), expect);
                    }
                }
            }
            h.check_invariants();
            assert_eq!(h.len(), reference.len());
        }
    }

    #[test]
    fn iter_visits_all() {
        let mut h = IndexedMinHeap::new();
        for v in 0..10 {
            h.insert(v, (10 - v) as i64);
        }
        let mut vals: Vec<u64> = h.iter().map(|(v, _)| v).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }
}
