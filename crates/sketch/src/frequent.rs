//! Deterministic heavy-hitter baselines: Misra–Gries and Space-Saving.
//!
//! The paper's related work (Manku & Motwani; Cormode & Muthukrishnan) is
//! the deterministic school of frequent-element tracking.  SketchTree's
//! top-k strategy (Section 5.2) instead *estimates* frequencies from the
//! sketches themselves, which lets it also *delete* the heavy hitters from
//! the synopsis.  These two classic counters give the ablation benchmarks a
//! baseline: how well would a deterministic tracker identify the same heavy
//! patterns, at what memory?
//!
//! Guarantees (for a stream of length `N`):
//!
//! * **Misra–Gries** with `k` counters: every value with true frequency
//!   `> N/(k+1)` is present, and each reported count under-estimates by at
//!   most `N/(k+1)`.
//! * **Space-Saving** with `k` counters: each reported count over-estimates
//!   by at most the minimum counter, and any value with true frequency
//!   above that minimum is present.

use std::collections::HashMap;

/// The Misra–Gries frequent-elements summary.
#[derive(Debug, Clone)]
pub struct MisraGries {
    k: usize,
    counters: HashMap<u64, u64>,
    processed: u64,
}

impl MisraGries {
    /// Creates a summary with `k` counters.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one counter");
        Self {
            k,
            counters: HashMap::with_capacity(k + 1),
            processed: 0,
        }
    }

    /// Processes one occurrence of `value`.
    pub fn insert(&mut self, value: u64) {
        self.processed = self.processed.saturating_add(1);
        if let Some(c) = self.counters.get_mut(&value) {
            *c = c.saturating_add(1);
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(value, 1);
            return;
        }
        // Decrement-all step; drop zeros.
        self.counters.retain(|_, c| {
            *c = c.saturating_sub(1);
            *c > 0
        });
    }

    /// Lower-bound estimate of the count of `value` (0 if untracked).
    pub fn estimate(&self, value: u64) -> u64 {
        self.counters.get(&value).copied().unwrap_or(0)
    }

    /// Stream length processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Tracked `(value, lower-bound count)` pairs, heaviest first.
    pub fn heavy_hitters(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counters.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

/// The Space-Saving summary (Metwally, Agrawal & El Abbadi).
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    /// value → (count, overestimation error at admission).
    counters: HashMap<u64, (u64, u64)>,
    processed: u64,
}

impl SpaceSaving {
    /// Creates a summary with `k` counters.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one counter");
        Self {
            k,
            counters: HashMap::with_capacity(k + 1),
            processed: 0,
        }
    }

    /// Processes one occurrence of `value`.
    pub fn insert(&mut self, value: u64) {
        self.processed = self.processed.saturating_add(1);
        if let Some((c, _)) = self.counters.get_mut(&value) {
            *c = c.saturating_add(1);
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(value, (1, 0));
            return;
        }
        // Replace the minimum counter; inherit its count as error bound.
        let Some((&victim, &(min_count, _))) = self.counters.iter().min_by_key(|(_, &(c, _))| c)
        else {
            // len() >= k >= 1 makes this unreachable; admit the value anyway.
            self.counters.insert(value, (1, 0));
            return;
        };
        self.counters.remove(&victim);
        self.counters.insert(value, (min_count.saturating_add(1), min_count));
    }

    /// Upper-bound estimate of the count of `value` (0 if untracked).
    pub fn estimate(&self, value: u64) -> u64 {
        self.counters.get(&value).map_or(0, |&(c, _)| c)
    }

    /// Guaranteed lower bound on the count of `value`.
    pub fn lower_bound(&self, value: u64) -> u64 {
        self.counters.get(&value).map_or(0, |&(c, e)| c - e)
    }

    /// Stream length processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Tracked `(value, upper-bound count)` pairs, heaviest first.
    pub fn heavy_hitters(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counters.iter().map(|(&k, &(c, _))| (k, c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_hash::SplitMix64;

    /// Zipf-ish stream: value v appears ~N/v times, shuffled.
    fn zipf_stream(n_values: u64, scale: u64, seed: u64) -> (Vec<u64>, HashMap<u64, u64>) {
        let mut stream = Vec::new();
        let mut truth = HashMap::new();
        for v in 1..=n_values {
            let f = scale / v;
            for _ in 0..f {
                stream.push(v);
            }
            if f > 0 {
                truth.insert(v, f);
            }
        }
        // Deterministic shuffle.
        let mut rng = SplitMix64::new(seed);
        for i in (1..stream.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            stream.swap(i, j);
        }
        (stream, truth)
    }

    #[test]
    fn misra_gries_finds_heavy_hitters() {
        let (stream, truth) = zipf_stream(200, 2000, 1);
        let n = stream.len() as u64;
        let k = 20;
        let mut mg = MisraGries::new(k);
        for &v in &stream {
            mg.insert(v);
        }
        assert_eq!(mg.processed(), n);
        let threshold = n / (k as u64 + 1);
        for (&v, &f) in &truth {
            if f > threshold {
                assert!(mg.estimate(v) > 0, "missed heavy hitter {v} (f={f})");
            }
            // Under-estimation bound.
            assert!(mg.estimate(v) <= f, "over-estimated {v}");
            assert!(
                f - mg.estimate(v) <= threshold,
                "error bound violated for {v}: est {} true {f}",
                mg.estimate(v)
            );
        }
    }

    #[test]
    fn space_saving_bounds() {
        let (stream, truth) = zipf_stream(200, 2000, 2);
        let mut ss = SpaceSaving::new(30);
        for &v in &stream {
            ss.insert(v);
        }
        for (&v, &f) in &truth {
            let est = ss.estimate(v);
            if est > 0 {
                assert!(est >= f, "space-saving must over-estimate: {v} est {est} true {f}");
                assert!(ss.lower_bound(v) <= f, "lower bound violated for {v}");
            }
        }
        // Top values must be present.
        let hh: Vec<u64> = ss.heavy_hitters().iter().map(|&(v, _)| v).collect();
        for v in 1..=3u64 {
            assert!(hh.contains(&v), "missing top value {v}");
        }
    }

    #[test]
    fn misra_gries_exact_when_few_values() {
        let mut mg = MisraGries::new(10);
        for _ in 0..7 {
            mg.insert(1);
        }
        for _ in 0..3 {
            mg.insert(2);
        }
        assert_eq!(mg.estimate(1), 7);
        assert_eq!(mg.estimate(2), 3);
        assert_eq!(mg.estimate(99), 0);
        assert_eq!(mg.heavy_hitters()[0], (1, 7));
    }

    #[test]
    fn space_saving_exact_when_few_values() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..7 {
            ss.insert(1);
        }
        for _ in 0..3 {
            ss.insert(2);
        }
        assert_eq!(ss.estimate(1), 7);
        assert_eq!(ss.lower_bound(1), 7);
    }

    #[test]
    #[should_panic]
    fn zero_counters_rejected_mg() {
        MisraGries::new(0);
    }

    #[test]
    #[should_panic]
    fn zero_counters_rejected_ss() {
        SpaceSaving::new(0);
    }
}
