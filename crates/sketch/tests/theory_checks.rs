//! Empirical checks of the paper's estimator theory: the expectation and
//! variance formulas of Sections 3–4 hold for the implemented ξ families.
//!
//! Each test Monte-Carlos over independent sketch seeds on a *fixed* small
//! stream where the exact moments are computable by hand, and asserts the
//! sample moments land within a few standard errors of the theory.  These
//! are the tests that would catch a subtly-broken ξ family (e.g. only
//! 2-wise independence) that every algebraic test would miss.

use sketchtree_hash::{Bch4Sign, KWiseSign, Sign};
use sketchtree_sketch::AmsSketch;

/// The fixed stream: values with frequencies. SJ = Σf² = 14² + 9² + 4² + 1² = 374.
const FREQS: &[(u64, i64)] = &[(11, 14), (22, 9), (33, 4), (44, 1)];

fn self_join() -> f64 {
    FREQS.iter().map(|&(_, f)| (f * f) as f64).sum()
}

fn build(seed: u64, independence: usize) -> AmsSketch {
    let mut s = AmsSketch::new(seed, independence);
    for &(v, f) in FREQS {
        s.update(v, f);
    }
    s
}

/// Equation 1: E[ξ_q·X] = f_q.
#[test]
fn eq1_point_estimator_unbiased() {
    let n = 20_000u64;
    for &(q, fq) in FREQS {
        let mean: f64 = (0..n)
            .map(|seed| build(seed, 4).estimate(q) as f64)
            .sum::<f64>()
            / n as f64;
        // Var = SJ − f_q² ≤ 374; std of the mean ≈ sqrt(374/20000) ≈ 0.14.
        assert!(
            (mean - fq as f64).abs() < 0.8,
            "value {q}: mean {mean} vs f {fq}"
        );
    }
}

/// Equation 2: Var[ξ_q·X] = Σ_{i≠q} f_i² exactly (not just ≤ SJ), which
/// 4-wise independence implies.
#[test]
fn eq2_point_estimator_variance() {
    let n = 20_000u64;
    for &(q, fq) in FREQS.iter().take(2) {
        let expect_var = self_join() - (fq * fq) as f64;
        let samples: Vec<f64> = (0..n).map(|seed| build(seed, 4).estimate(q) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Fourth-moment-driven std of sample variance; 15% tolerance is
        // ~4 standard errors here.
        assert!(
            (var - expect_var).abs() / expect_var < 0.15,
            "value {q}: sample var {var} vs theory {expect_var}"
        );
    }
}

/// Equation 6: E[X·(ξ_a + ξ_b)] = f_a + f_b (set estimator unbiased).
#[test]
fn eq6_set_estimator_unbiased() {
    let n = 20_000u64;
    let (a, fa) = FREQS[0];
    let (b, fb) = FREQS[1];
    let mean: f64 = (0..n)
        .map(|seed| {
            let s = build(seed, 4);
            ((s.sign(a) + s.sign(b)) * s.raw()) as f64
        })
        .sum::<f64>()
        / n as f64;
    assert!(
        (mean - (fa + fb) as f64).abs() < 1.0,
        "mean {mean} vs {}",
        fa + fb
    );
}

/// Equation 7: Var[X·Σξ] ≤ 2(t−1)·SJ for t=2 distinct queries.
#[test]
fn eq7_set_estimator_variance_bound() {
    let n = 20_000u64;
    let (a, _) = FREQS[0];
    let (b, _) = FREQS[1];
    let samples: Vec<f64> = (0..n)
        .map(|seed| {
            let s = build(seed, 4);
            ((s.sign(a) + s.sign(b)) * s.raw()) as f64
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let bound = 2.0 * self_join();
    assert!(var <= bound * 1.1, "var {var} exceeds 2(t-1)SJ = {bound}");
}

/// Example 3 / Appendix C: E[X²·ξ_a ξ_b / 2!] = f_a·f_b, requiring 5-wise ξ.
#[test]
fn product_estimator_unbiased() {
    let n = 40_000u64;
    let (a, fa) = FREQS[0];
    let (b, fb) = FREQS[1];
    let mean: f64 = (0..n)
        .map(|seed| {
            let s = build(seed, 5);
            let x = s.raw() as f64;
            (s.sign(a) * s.sign(b)) as f64 * x * x / 2.0
        })
        .sum::<f64>()
        / n as f64;
    let truth = (fa * fb) as f64;
    // Appendix B: Var ≤ (1+2n)/4·SJ² — large; n=40k gives std-of-mean ≈ 2.8.
    assert!(
        (mean - truth).abs() < 15.0,
        "mean {mean} vs f_a·f_b = {truth}"
    );
}

/// The BCH-code family (the paper's literal construction) matches the
/// Mersenne-polynomial family on the moments Equation 2 needs: both give
/// an unbiased point estimator with variance ≈ Σ_{i≠q} f_i².
#[test]
fn bch_family_has_same_moments() {
    let n = 20_000u64;
    let (q, fq) = FREQS[0];
    let expect_var = self_join() - (fq * fq) as f64;
    let samples: Vec<f64> = (0..n)
        .map(|seed| {
            let xi = Bch4Sign::from_seed(seed);
            let x: i64 = FREQS.iter().map(|&(v, f)| xi.sign(v) * f).sum();
            (xi.sign(q) * x) as f64
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    assert!((mean - fq as f64).abs() < 0.8, "BCH mean {mean}");
    assert!(
        (var - expect_var).abs() / expect_var < 0.15,
        "BCH var {var} vs {expect_var}"
    );
}

/// Cross-construction agreement on higher joint moments:
/// E[ξ_a ξ_b ξ_c ξ_d] ≈ 0 for both families over distinct keys.
#[test]
fn fourwise_joint_moment_zero_both_families() {
    let n = 20_000i64;
    let keys = [3u64, 17, 1 << 40, u64::MAX / 3];
    let m61_sum: i64 = (0..n)
        .map(|seed| {
            let xi = KWiseSign::from_seed(seed as u64, 4);
            keys.iter().map(|&k| xi.sign(k)).product::<i64>()
        })
        .sum();
    let bch_sum: i64 = (0..n)
        .map(|seed| {
            let xi = Bch4Sign::from_seed(seed as u64);
            keys.iter().map(|&k| xi.sign(k)).product::<i64>()
        })
        .sum();
    // Each product is ±1; under 4-wise independence the sum is a random
    // walk with std sqrt(n) ≈ 141.
    assert!(m61_sum.abs() < 600, "m61 joint moment biased: {m61_sum}");
    assert!(bch_sum.abs() < 600, "bch joint moment biased: {bch_sum}");
}
