//! Property-based tests for the sketch machinery: algebraic invariants that
//! must hold for *every* input, independent of randomness.

use proptest::prelude::*;
use sketchtree_sketch::expr::{Expr, Term};
use sketchtree_sketch::heap::IndexedMinHeap;
use sketchtree_sketch::{SketchBank, StreamSynopsis, SynopsisConfig, TopKTracker};
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Inserting then deleting any multiset of values returns every counter
    /// to zero — the linearity that top-k tracking and restore lists rely
    /// on.
    #[test]
    fn bank_insert_delete_cancels(ops in prop::collection::vec((any::<u64>(), 1i64..50), 1..40)) {
        let mut bank = SketchBank::new(7, 5, 3, 4);
        for &(v, c) in &ops {
            bank.update(v, c);
        }
        for &(v, c) in &ops {
            bank.update(v, -c);
        }
        for i in 0..bank.num_sketches() {
            prop_assert_eq!(bank.sketch_at(i).raw(), 0);
        }
    }

    /// A stream holding a single distinct value estimates that value
    /// *exactly* (ξ² = 1), for any frequency and any seed.
    #[test]
    fn single_value_exact(seed in any::<u64>(), v in any::<u64>(), f in 1i64..10_000) {
        let mut bank = SketchBank::new(seed, 5, 3, 4);
        bank.update(v, f);
        prop_assert_eq!(bank.estimate_point(v), f as f64);
    }

    /// Restore lists invert deletions algebraically: estimate after
    /// deleting and restoring equals estimate before deleting.
    #[test]
    fn restore_inverts_delete(
        seed in any::<u64>(),
        freqs in prop::collection::btree_map(any::<u64>(), 1i64..100, 2..10),
    ) {
        let freqs: Vec<(u64, i64)> = freqs.into_iter().collect();
        let mut bank = SketchBank::new(seed, 4, 3, 4);
        for &(v, f) in &freqs {
            bank.update(v, f);
        }
        let (dv, df) = freqs[0];
        let before = bank.estimate_point_restored(dv, &[]);
        bank.update(dv, -df);
        let after = bank.estimate_point_restored(dv, &[(dv, df)]);
        prop_assert_eq!(before, after);
    }

    /// The sign-buffer fast path equals the slow path for any value.
    #[test]
    fn signs_fast_path_equals_slow(seed in any::<u64>(), v in any::<u64>(), f in 1i64..100) {
        let mut a = SketchBank::new(seed, 6, 3, 4);
        let mut b = SketchBank::new(seed, 6, 3, 4);
        a.update(v, f);
        let mut buf = Vec::new();
        b.signs_into(v, &mut buf);
        b.update_with_signs(&buf, f);
        for i in 0..a.num_sketches() {
            prop_assert_eq!(a.sketch_at(i).raw(), b.sketch_at(i).raw());
        }
        prop_assert_eq!(a.estimate_point(v), b.estimate_point_with_signs(&buf));
    }

    /// Expression expansion is linear: expand(a + b) = expand(a) ∪ expand(b)
    /// and expand(a − a′) cancels when a and a′ are the same pattern set...
    /// (verified through the merged-coefficient form).
    #[test]
    fn expr_expansion_linearity(qs in prop::collection::btree_set(any::<u64>(), 2..6)) {
        let qs: Vec<u64> = qs.into_iter().collect();
        let sum = Expr::sum_of_counts(&qs);
        let (terms, _) = sum.expand().expect("distinct");
        prop_assert_eq!(terms.len(), qs.len());
        for t in &terms {
            prop_assert_eq!(t.coeff, 1);
            prop_assert_eq!(t.queries.len(), 1);
        }
    }

    /// Product expansion multiplies coefficients and concatenates query
    /// sets; required independence is 2k+1.
    #[test]
    fn expr_product_independence(qs in prop::collection::btree_set(any::<u64>(), 2..5)) {
        let qs: Vec<u64> = qs.into_iter().collect();
        let prod = Expr::product_of_counts(&qs);
        let (terms, indep) = prod.expand().expect("distinct");
        prop_assert_eq!(terms.len(), 1);
        prop_assert_eq!(terms[0].queries.len(), qs.len());
        prop_assert_eq!(indep, 2 * qs.len() + 1);
    }

    /// The indexed heap behaves exactly like a BTreeMap used as a priority
    /// structure, under arbitrary operation sequences.
    #[test]
    fn heap_matches_model(ops in prop::collection::vec((0u8..3, 0u64..32, 0i64..100), 1..200)) {
        let mut heap = IndexedMinHeap::new();
        let mut model: BTreeMap<u64, i64> = BTreeMap::new();
        for (op, v, p) in ops {
            match op {
                0 => {
                    model.entry(v).or_insert_with(|| {
                        heap.insert(v, p);
                        p
                    });
                }
                1 => {
                    prop_assert_eq!(heap.remove(v), model.remove(&v));
                }
                _ => {
                    let min_model = model.values().min().copied();
                    prop_assert_eq!(heap.min_priority(), min_model);
                    if let Some((hv, hp)) = heap.pop_min() {
                        prop_assert_eq!(Some(hp), min_model);
                        prop_assert_eq!(model.remove(&hv), Some(hp));
                    }
                }
            }
            prop_assert_eq!(heap.len(), model.len());
        }
    }

    /// Top-k delete condition: at any moment, adding tracked frequencies
    /// back restores the exact single-value stream (checked on a stream of
    /// one distinct value where everything is analytic).
    #[test]
    fn topk_delete_condition_single_value(seed in any::<u64>(), n in 1i64..200) {
        let mut bank = SketchBank::new(seed, 4, 3, 4);
        let mut topk = TopKTracker::new(1);
        for _ in 0..n {
            bank.update(42, 1);
            topk.process(42, &mut bank);
        }
        // Either tracked (then raw estimate + tracked freq == n) or not
        // (then raw estimate == n).
        let raw = bank.estimate_point(42);
        let tracked = topk.tracked_frequency(42).unwrap_or(0);
        prop_assert_eq!(raw + tracked as f64, n as f64);
    }

    /// The synopsis point estimate of an isolated heavy value is within
    /// noise of the truth for any seed (a weak but fully general bound:
    /// the value is 100× heavier than everything else combined).
    #[test]
    fn synopsis_heavy_value_sane(seed in any::<u64>()) {
        let mut syn = StreamSynopsis::new(SynopsisConfig {
            s1: 40,
            s2: 5,
            virtual_streams: 7,
            topk: 2,
            independence: 4,
            topk_probability: u16::MAX,
            seed,
        });
        for _ in 0..500 {
            syn.insert(1000);
        }
        for v in 0..5u64 {
            syn.insert(v);
        }
        let est = syn.estimate_count(1000);
        prop_assert!((est - 500.0).abs() < 50.0, "est {}", est);
    }

    /// estimate_terms rejects within-term duplicates for any query value.
    #[test]
    fn duplicate_queries_always_rejected(q in any::<u64>()) {
        let syn = StreamSynopsis::new(SynopsisConfig {
            s1: 2,
            s2: 2,
            virtual_streams: 3,
            topk: 0,
            independence: 5,
            topk_probability: u16::MAX,
            seed: 1,
        });
        let t = Term { coeff: 1, queries: vec![q, q] };
        prop_assert!(syn.estimate_terms(&[t]).is_err());
    }
}
