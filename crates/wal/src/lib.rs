//! Write-ahead log of ingest batches for the SketchTree server.
//!
//! The synopsis is cheap to snapshot but the stream itself is
//! unreplayable: once an ingest batch is acked and then lost, every
//! future estimate is silently biased and the paper's error guarantees
//! no longer hold.  This crate provides the durability half of the fix —
//! an append-only, fsync'd log the server writes *before* acking a
//! batch, so a restart can replay everything past the last checkpoint.
//!
//! # On-disk format
//!
//! ```text
//! file   := header frame*
//! header := magic("SKWL") version(u32 LE)
//! frame  := len(u32 LE) crc(u32 LE) payload
//! payload:= seq(u64 LE) batch
//! ```
//!
//! `len` counts the payload bytes (seq included), `crc` is the CRC-32
//! (IEEE) of the payload, and `seq` is a strictly increasing batch
//! sequence number — the replay cursor that snapshots record so
//! recovery knows which frames are already folded in.  `batch` is the
//! [`encode_batch`] serialization of the batch-local label names plus
//! the trees, mirroring the wire protocol's `IngestTrees` shape.
//!
//! # Torn tails are normal
//!
//! A power cut mid-append leaves a torn final frame: a short header, a
//! short payload, or a payload whose CRC does not match.  That is the
//! *expected* crash signature, not corruption — [`scan`] stops at the
//! last intact frame and [`Wal::open`] physically truncates the file
//! there so the log is clean for new appends.  Only structural
//! impossibilities (wrong magic, unsupported version) are errors.
//!
//! # Group commit
//!
//! `fsync_every = n` issues one `fdatasync` per `n` appends.  With
//! `n = 1` every acked batch is durable before the ack leaves the
//! server; with `n > 1` a power cut may lose up to `n - 1` *acked*
//! batches (never a torn prefix of one) in exchange for amortizing the
//! sync latency — the classic group-commit trade-off.  `n = 0` never
//! syncs from the append path at all and is only suitable for
//! benchmarking the upper bound.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sketchtree_tree::label::Label;
use sketchtree_tree::tree::{Tree, TreeBuilder};

/// File magic: identifies a SketchTree write-ahead log.
pub const MAGIC: &[u8; 4] = b"SKWL";
/// Current file format version.
pub const VERSION: u32 = 1;
/// Bytes of file header (magic + version).
pub const HEADER_LEN: u64 = 8;
/// Bytes of per-frame header (len + crc).
pub const FRAME_HEADER_LEN: u64 = 8;
/// Upper bound on a single frame's payload length.  A `len` beyond
/// this is treated as a torn tail (garbage header), not an allocation
/// request.
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// Node-count bound per tree in [`decode_batch`], matching the wire
/// protocol's guard against hostile length fields.
const MAX_NODES: usize = 1 << 24;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven.  The offline build has no crc
// crate; the polynomial is 8 lines of const fn.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, as used in frame headers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        let idx = ((c ^ b as u32) & 0xFF) as usize;
        // lint:allow(L1, reason = "idx is masked to 0..256 and the table has 256 entries")
        c = CRC_TABLE[idx] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Errors

/// Failure opening, scanning, or decoding a write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file is structurally not a WAL (wrong magic / version), or a
    /// batch payload that passed its CRC still failed to decode — both
    /// indicate a bug or foreign file, never a torn write.
    Corrupt(&'static str),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Corrupt(why) => write!(f, "wal corrupt: {why}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<WalError> for io::Error {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Io(e) => e,
            WalError::Corrupt(why) => io::Error::new(io::ErrorKind::InvalidData, why),
        }
    }
}

// ---------------------------------------------------------------------------
// Scanning

/// One intact frame recovered by [`scan`].
#[derive(Debug, Clone)]
pub struct Frame {
    /// Batch sequence number (strictly increasing within a file).
    pub seq: u64,
    /// Batch payload bytes (seq stripped) — feed to [`decode_batch`].
    pub batch: Vec<u8>,
    /// Byte offset of this frame's header in the file.
    pub offset: u64,
    /// Byte offset one past this frame (= next frame's `offset`).
    pub end: u64,
}

/// A torn tail detected by [`scan`]: everything from `offset` on is an
/// incomplete or damaged write and must be truncated before appending.
#[derive(Debug, Clone, Copy)]
pub struct TornTail {
    /// Offset of the first bad byte (the last intact frame's `end`).
    pub offset: u64,
    /// Human-readable crash signature, e.g. `"crc mismatch"`.
    pub reason: &'static str,
}

/// Result of scanning a WAL file: the intact frame prefix plus whether
/// (and where) a torn tail was found.
#[derive(Debug)]
pub struct Scan {
    /// All intact frames, in file order.
    pub frames: Vec<Frame>,
    /// Length of the valid prefix; the file should be truncated here
    /// before new appends.  Always `>= HEADER_LEN` for a non-empty file.
    pub valid_len: u64,
    /// Set when bytes past `valid_len` had to be discarded.
    pub torn: Option<TornTail>,
    /// Total file length at scan time.
    pub file_len: u64,
}

impl Scan {
    /// Highest sequence number seen, or 0 for an empty log.
    pub fn last_seq(&self) -> u64 {
        self.frames.last().map_or(0, |f| f.seq)
    }
}

fn le_u32(b: &[u8], at: usize) -> Option<u32> {
    let s = b.get(at..at.checked_add(4)?)?;
    let mut a = [0u8; 4];
    a.copy_from_slice(s);
    Some(u32::from_le_bytes(a))
}

fn le_u64(b: &[u8], at: usize) -> Option<u64> {
    let s = b.get(at..at.checked_add(8)?)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Some(u64::from_le_bytes(a))
}

/// Scans a WAL file, validating the header and every frame's CRC and
/// sequence ordering.  Torn tails (short reads, bad CRCs, implausible
/// lengths, sequence regressions) end the scan at the last intact frame
/// and are reported in [`Scan::torn`]; only a wrong magic or an
/// unsupported version is an error.
pub fn scan(path: &Path) -> Result<Scan, WalError> {
    let bytes = std::fs::read(path)?;
    scan_bytes(&bytes)
}

fn scan_bytes(bytes: &[u8]) -> Result<Scan, WalError> {
    let file_len = bytes.len() as u64;
    // A zero-length file is a log created but not yet headered (crash
    // between create and the header write) — valid and empty.
    if bytes.is_empty() {
        return Ok(Scan { frames: Vec::new(), valid_len: 0, torn: None, file_len });
    }
    if file_len < HEADER_LEN {
        // Not enough bytes to even hold the magic: if what's there is a
        // prefix of the magic it is a torn header write, else foreign.
        if MAGIC.starts_with(&bytes[..bytes.len().min(4)]) {
            return Ok(Scan {
                frames: Vec::new(),
                valid_len: 0,
                torn: Some(TornTail { offset: 0, reason: "short file header" }),
                file_len,
            });
        }
        return Err(WalError::Corrupt("not a wal file (bad magic)"));
    }
    if &bytes[..4] != MAGIC {
        return Err(WalError::Corrupt("not a wal file (bad magic)"));
    }
    match le_u32(bytes, 4) {
        Some(VERSION) => {}
        _ => return Err(WalError::Corrupt("unsupported wal version")),
    }

    let mut frames = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut prev_seq = 0u64;
    let mut torn = None;
    while pos < bytes.len() {
        let Some(len) = le_u32(bytes, pos) else {
            torn = Some(TornTail { offset: pos as u64, reason: "short frame header" });
            break;
        };
        if len > MAX_PAYLOAD || len < 8 {
            torn = Some(TornTail { offset: pos as u64, reason: "implausible frame length" });
            break;
        }
        let Some(crc) = le_u32(bytes, pos + 4) else {
            torn = Some(TornTail { offset: pos as u64, reason: "short frame header" });
            break;
        };
        let payload_at = pos + FRAME_HEADER_LEN as usize;
        let Some(payload) = bytes.get(payload_at..payload_at + len as usize) else {
            torn = Some(TornTail { offset: pos as u64, reason: "short payload" });
            break;
        };
        if crc32(payload) != crc {
            torn = Some(TornTail { offset: pos as u64, reason: "crc mismatch" });
            break;
        }
        let Some(seq) = le_u64(payload, 0) else {
            torn = Some(TornTail { offset: pos as u64, reason: "short payload" });
            break;
        };
        if seq <= prev_seq {
            torn = Some(TornTail { offset: pos as u64, reason: "sequence regression" });
            break;
        }
        prev_seq = seq;
        let end = payload_at as u64 + len as u64;
        frames.push(Frame { seq, batch: payload[8..].to_vec(), offset: pos as u64, end });
        pos = end as usize;
    }
    let valid_len = frames.last().map_or(HEADER_LEN, |f| f.end);
    Ok(Scan { frames, valid_len, torn, file_len })
}

// ---------------------------------------------------------------------------
// Writer

/// Result of one [`Wal::append`].
#[derive(Debug, Clone, Copy)]
pub struct Append {
    /// Sequence number assigned to the batch.
    pub seq: u64,
    /// Whether this append flushed to stable storage (group-commit
    /// boundary hit).  With `fsync_every = 1` this is always true.
    pub synced: bool,
    /// Bytes written including the frame header.
    pub bytes: u64,
}

/// An open write-ahead log.  Appends go to the end of the intact
/// prefix; any torn tail found at open time is physically truncated
/// first.  Not internally synchronized — the server serializes access
/// through its commit mutex.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync_every: u32,
    unsynced: u32,
    next_seq: u64,
    len: u64,
    fsyncs: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scans it, repairs
    /// any torn tail by truncation, and positions for appending.  The
    /// returned [`Scan`] holds the intact frames for replay.
    ///
    /// `fsync_every` is the group-commit knob: 1 = sync every append
    /// (full durability), `n` = one sync per `n` appends, 0 = never
    /// sync from the append path.
    pub fn open(path: &Path, fsync_every: u32) -> Result<(Wal, Scan), WalError> {
        let preexisting = path.exists();
        let scan = if preexisting {
            scan(path)?
        } else {
            Scan { frames: Vec::new(), valid_len: 0, torn: None, file_len: 0 }
        };
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut len = scan.valid_len;
        if scan.file_len > scan.valid_len {
            // Drop the torn tail (or trailing garbage) on the floor so
            // the next append starts at a frame boundary.
            file.set_len(scan.valid_len)?;
        }
        if len < HEADER_LEN {
            // Fresh (or torn-header) file: write the header and make
            // both it and the directory entry durable before any frame
            // can refer to them.
            file.set_len(0)?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_all()?;
            fsync_parent_dir(path)?;
            len = HEADER_LEN;
        }
        file.seek(SeekFrom::Start(len))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            fsync_every,
            unsynced: 0,
            next_seq: scan.last_seq() + 1,
            len,
            fsyncs: 0,
        };
        Ok((wal, scan))
    }

    /// Appends one batch payload as a frame, assigning the next
    /// sequence number.  Honors the group-commit setting; call
    /// [`Wal::sync`] to force durability regardless.
    pub fn append(&mut self, batch: &[u8]) -> io::Result<Append> {
        let payload_len = batch
            .len()
            .checked_add(8)
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n <= MAX_PAYLOAD)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "batch too large for wal frame"))?;
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload_len as usize);
        frame.extend_from_slice(&payload_len.to_le_bytes());
        frame.extend_from_slice(&[0u8; 4]); // crc placeholder
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(batch);
        let crc = crc32(&frame[8..]);
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.next_seq += 1;
        let mut synced = false;
        if self.fsync_every > 0 {
            self.unsynced += 1;
            if self.unsynced >= self.fsync_every {
                self.file.sync_data()?;
                self.fsyncs += 1;
                self.unsynced = 0;
                synced = true;
            }
        }
        Ok(Append { seq, synced, bytes: frame.len() as u64 })
    }

    /// Forces all appended frames to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Discards every frame (keeps the header), called after a
    /// checkpoint has durably captured their effects.  Sequence numbers
    /// keep counting up so snapshots' replay cursors stay unambiguous
    /// across rotations.
    pub fn truncate_all(&mut self) -> io::Result<()> {
        self.truncate_to(HEADER_LEN)
    }

    /// Truncates the file to `offset` bytes (must be a frame boundary
    /// at or past the header), discarding later frames.  Used when a
    /// CRC-valid frame fails batch decoding — everything from it on is
    /// unusable.
    pub fn truncate_to(&mut self, offset: u64) -> io::Result<()> {
        let offset = offset.max(HEADER_LEN);
        self.file.set_len(offset)?;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced = 0;
        self.len = offset;
        Ok(())
    }

    /// Raises the next sequence number to at least `seq + 1`; used at
    /// recovery so replay cursors from a snapshot stay ahead of any
    /// frames the checkpoint already rotated away.
    pub fn bump_seq_past(&mut self, seq: u64) {
        if seq >= self.next_seq {
            self.next_seq = seq + 1;
        }
    }

    /// The sequence number the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current file size in bytes (header included).
    pub fn size_bytes(&self) -> u64 {
        self.len
    }

    /// fsyncs issued so far (append-path group commits plus explicit
    /// [`Wal::sync`] and truncation syncs).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// fsyncs the directory containing `path`, making a just-created or
/// just-renamed directory entry durable.  A rename without this can
/// survive in the page cache only — the classic "atomic rename that
/// wasn't" crash bug.
pub fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

// ---------------------------------------------------------------------------
// Batch codec: batch-local label names + trees, the same shape as the
// wire protocol's IngestTrees so both ingest opcodes log losslessly.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes one ingest batch (batch-local label names plus trees
/// whose labels index into `labels`) into a WAL frame payload.
///
/// Returns an error instead of truncating if any count exceeds `u32`
/// (the codec's field width).  Generic over the label representation so
/// the server's zero-copy ingest path can log borrowed `&str` names
/// without first materializing owned `String`s.
pub fn encode_batch<S: AsRef<str>>(labels: &[S], trees: &[Tree]) -> Result<Vec<u8>, WalError> {
    let mut out = Vec::new();
    let nlabels =
        u32::try_from(labels.len()).map_err(|_| WalError::Corrupt("too many labels"))?;
    put_u32(&mut out, nlabels);
    for l in labels {
        let l = l.as_ref();
        let len = u32::try_from(l.len()).map_err(|_| WalError::Corrupt("label too long"))?;
        put_u32(&mut out, len);
        out.extend_from_slice(l.as_bytes());
    }
    let ntrees = u32::try_from(trees.len()).map_err(|_| WalError::Corrupt("too many trees"))?;
    put_u32(&mut out, ntrees);
    for tree in trees {
        let n = u32::try_from(tree.len()).map_err(|_| WalError::Corrupt("tree too large"))?;
        put_u32(&mut out, n);
        for id in tree.preorder() {
            put_u32(&mut out, tree.label(id).0);
            let fanout = u32::try_from(tree.children(id).len())
                .map_err(|_| WalError::Corrupt("fanout too large"))?;
            put_u32(&mut out, fanout);
        }
    }
    Ok(out)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Result<u32, WalError> {
        let v = le_u32(self.bytes, self.pos).ok_or(WalError::Corrupt("truncated batch"))?;
        self.pos += 4;
        Ok(v)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let end = self.pos.checked_add(n).ok_or(WalError::Corrupt("truncated batch"))?;
        let s = self.bytes.get(self.pos..end).ok_or(WalError::Corrupt("truncated batch"))?;
        self.pos = end;
        Ok(s)
    }
}

/// Decodes a frame payload produced by [`encode_batch`] back into
/// batch-local label names and trees.  Validates label indices, tree
/// shape, and length plausibility — a CRC-valid frame that fails here
/// is a codec bug or foreign data, and recovery treats it like a torn
/// tail (truncate and continue) rather than refusing to start.
pub fn decode_batch(bytes: &[u8]) -> Result<(Vec<String>, Vec<Tree>), WalError> {
    let mut c = Cursor { bytes, pos: 0 };
    let nlabels = c.u32()? as usize;
    // Each label needs at least its 4-byte length field.
    if nlabels > bytes.len() / 4 {
        return Err(WalError::Corrupt("implausible label count"));
    }
    let mut labels = Vec::with_capacity(nlabels);
    for _ in 0..nlabels {
        let len = c.u32()? as usize;
        let raw = c.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|_| WalError::Corrupt("label not utf-8"))?;
        labels.push(s.to_string());
    }
    let label_count = u32::try_from(labels.len()).map_err(|_| WalError::Corrupt("too many labels"))?;
    let ntrees = c.u32()? as usize;
    if ntrees > bytes.len() / 4 {
        return Err(WalError::Corrupt("implausible tree count"));
    }
    let mut trees = Vec::with_capacity(ntrees);
    for _ in 0..ntrees {
        trees.push(decode_tree(&mut c, label_count)?);
    }
    if c.pos != bytes.len() {
        return Err(WalError::Corrupt("trailing bytes after batch"));
    }
    Ok((labels, trees))
}

fn decode_tree(c: &mut Cursor<'_>, label_count: u32) -> Result<Tree, WalError> {
    let n = c.u32()? as usize;
    if n == 0 {
        return Err(WalError::Corrupt("empty tree"));
    }
    if n > MAX_NODES || n > c.bytes.len() / 8 {
        return Err(WalError::Corrupt("implausible node count"));
    }
    let mut builder = TreeBuilder::new();
    // Stack of open nodes' remaining child slots, exactly as in the
    // wire protocol's preorder decoder.
    let mut remaining: Vec<u32> = Vec::new();
    for i in 0..n {
        if i > 0 {
            while remaining.last() == Some(&0) {
                builder.close().map_err(|_| WalError::Corrupt("tree shape"))?;
                remaining.pop();
            }
            match remaining.last_mut() {
                Some(slots) => *slots -= 1,
                None => return Err(WalError::Corrupt("tree has extra root")),
            }
        }
        let label = c.u32()?;
        if label >= label_count {
            return Err(WalError::Corrupt("label index out of range"));
        }
        let fanout = c.u32()?;
        builder.open(Label(label)).map_err(|_| WalError::Corrupt("tree shape"))?;
        remaining.push(fanout);
    }
    while let Some(slots) = remaining.pop() {
        if slots != 0 {
            return Err(WalError::Corrupt("tree fanout exceeds node count"));
        }
        builder.close().map_err(|_| WalError::Corrupt("tree shape"))?;
    }
    builder.finish().map_err(|_| WalError::Corrupt("tree shape"))
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sktw-{}-{name}", std::process::id()));
        p
    }

    fn leaf(l: u32) -> Tree {
        Tree::leaf(Label(l))
    }

    fn batch(n: u32) -> Vec<u8> {
        let labels: Vec<String> = (0..=n).map(|i| format!("l{i}")).collect();
        let trees = vec![Tree::node(Label(0), vec![leaf(n)]), leaf(n % 2)];
        encode_batch(&labels, &trees).expect("encode")
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_append_scan() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, scan0) = Wal::open(&path, 1).expect("open");
        assert!(scan0.frames.is_empty());
        for i in 0..5u32 {
            let a = wal.append(&batch(i)).expect("append");
            assert_eq!(a.seq, u64::from(i) + 1);
            assert!(a.synced);
        }
        drop(wal);
        let s = scan(&path).expect("scan");
        assert_eq!(s.frames.len(), 5);
        assert!(s.torn.is_none());
        assert_eq!(s.last_seq(), 5);
        for (i, f) in s.frames.iter().enumerate() {
            assert_eq!(f.batch, batch(i as u32));
            let (labels, trees) = decode_batch(&f.batch).expect("decode");
            assert_eq!(labels.len(), i + 1);
            assert_eq!(trees.len(), 2);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_syncs_every_nth_append() {
        let path = tmp("group");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 3).expect("open");
        let synced: Vec<bool> =
            (0..7).map(|i| wal.append(&batch(i)).expect("append").synced).collect();
        assert_eq!(synced, vec![false, false, true, false, false, true, false]);
        // Two group commits (the header sync predates the counter).
        assert_eq!(wal.fsyncs(), 2);
        wal.sync().expect("sync");
        assert_eq!(wal.fsyncs(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1).expect("open");
        for i in 0..3 {
            wal.append(&batch(i)).expect("append");
        }
        let good_len = wal.size_bytes();
        drop(wal);
        // Simulate a power cut mid-append: half a frame of garbage.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&[0x55; 5]);
        std::fs::write(&path, &bytes).expect("write");
        let (mut wal, s) = Wal::open(&path, 1).expect("reopen");
        assert_eq!(s.frames.len(), 3);
        assert!(s.torn.is_some());
        assert_eq!(s.valid_len, good_len);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), good_len);
        // Sequence numbering continues where the intact prefix left off.
        let a = wal.append(&batch(9)).expect("append");
        assert_eq!(a.seq, 4);
        drop(wal);
        let s = scan(&path).expect("scan");
        assert_eq!(s.frames.len(), 4);
        assert!(s.torn.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_point_recovers_the_intact_prefix() {
        let path = tmp("sweep");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1).expect("open");
        let mut ends = vec![HEADER_LEN];
        for i in 0..4 {
            wal.append(&batch(i)).expect("append");
            ends.push(wal.size_bytes());
        }
        drop(wal);
        let full = std::fs::read(&path).expect("read");
        for cut in 0..=full.len() {
            let case = tmp("sweep-case");
            std::fs::write(&case, &full[..cut]).expect("write");
            let s = scan(&case).expect("scan never errors on truncation");
            // The intact frames are exactly those fully inside the cut.
            let cut64 = cut as u64;
            let expect = ends.iter().filter(|&&e| e > HEADER_LEN && e <= cut64).count();
            assert_eq!(s.frames.len(), expect, "cut at {cut}");
            // A cut exactly on a frame boundary (or a 0-byte file) is
            // indistinguishable from a clean shutdown; anywhere else is
            // a torn tail.
            assert_eq!(s.torn.is_some(), cut != 0 && !ends.contains(&cut64), "cut at {cut}");
            // Reopening repairs the file to the intact prefix.
            let (w, s2) = Wal::open(&case, 1).expect("reopen");
            assert_eq!(s2.frames.len(), expect);
            assert_eq!(w.size_bytes(), ends[expect].max(HEADER_LEN));
            drop(w);
            std::fs::remove_file(&case).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_byte_anywhere_drops_that_frame_and_its_suffix() {
        let path = tmp("flip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1).expect("open");
        let mut ends = vec![HEADER_LEN];
        for i in 0..3 {
            wal.append(&batch(i)).expect("append");
            ends.push(wal.size_bytes());
        }
        drop(wal);
        let full = std::fs::read(&path).expect("read");
        for at in (HEADER_LEN as usize)..full.len() {
            let mut bytes = full.clone();
            bytes[at] ^= 0xFF;
            let case = tmp("flip-case");
            std::fs::write(&case, &bytes).expect("write");
            if let Ok(s) = scan(&case) {
                // Frames before the damaged one must survive intact.
                let damaged = ends.iter().position(|&e| (at as u64) < e).expect("in range") - 1;
                assert!(s.frames.len() <= damaged + 1, "flip at {at}");
                for (i, f) in s.frames.iter().enumerate().take(damaged) {
                    assert_eq!(f.seq, i as u64 + 1);
                }
            }
            // else: the flip hit the magic/version — rejecting the whole
            // file is the correct answer for a foreign header.
            std::fs::remove_file(&case).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_all_keeps_sequence_monotone() {
        let path = tmp("rotate");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1).expect("open");
        for i in 0..3 {
            wal.append(&batch(i)).expect("append");
        }
        wal.truncate_all().expect("truncate");
        assert_eq!(wal.size_bytes(), HEADER_LEN);
        let a = wal.append(&batch(7)).expect("append");
        assert_eq!(a.seq, 4, "rotation must not reuse sequence numbers");
        drop(wal);
        let s = scan(&path).expect("scan");
        assert_eq!(s.frames.len(), 1);
        assert_eq!(s.frames[0].seq, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bump_seq_past_respects_snapshot_cursor() {
        let path = tmp("bump");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, 1).expect("open");
        wal.bump_seq_past(41);
        assert_eq!(wal.append(&batch(0)).expect("append").seq, 42);
        wal.bump_seq_past(10); // never moves backwards
        assert_eq!(wal.append(&batch(1)).expect("append").seq, 43);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_rejected_not_truncated() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a wal").expect("write");
        assert!(matches!(scan(&path), Err(WalError::Corrupt(_))));
        assert!(matches!(Wal::open(&path, 1), Err(WalError::Corrupt(_))));
        // The foreign file is left untouched for the operator.
        assert_eq!(std::fs::read(&path).expect("read"), b"definitely not a wal");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_codec_rejects_malformed_input() {
        let good = batch(3);
        assert!(decode_batch(&good).is_ok());
        for cut in 0..good.len() {
            assert!(decode_batch(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Label index out of range.
        let labels = vec!["a".to_string()];
        let t = Tree::leaf(Label(5));
        let bad = encode_batch(&labels, &[t]).expect("encode");
        assert!(decode_batch(&bad).is_err());
        // Hostile counts must not allocate.
        let mut hostile = Vec::new();
        put_u32(&mut hostile, u32::MAX);
        assert!(decode_batch(&hostile).is_err());
    }

    #[test]
    fn batch_codec_roundtrips_shapes() {
        let labels: Vec<String> = ["article", "title", "author", ""].iter().map(|s| s.to_string()).collect();
        let trees = vec![
            Tree::node(
                Label(0),
                vec![leaf(1), Tree::node(Label(2), vec![leaf(3), leaf(1)]), leaf(2)],
            ),
            leaf(3),
        ];
        let bytes = encode_batch(&labels, &trees).expect("encode");
        let (l2, t2) = decode_batch(&bytes).expect("decode");
        assert_eq!(l2, labels);
        assert_eq!(t2.len(), trees.len());
        for (a, b) in trees.iter().zip(&t2) {
            assert_eq!(a.to_sexpr(), b.to_sexpr());
        }
    }

    #[test]
    fn empty_and_headerless_files_open_cleanly() {
        let path = tmp("empty");
        std::fs::write(&path, b"").expect("write");
        let (wal, s) = Wal::open(&path, 1).expect("open");
        assert!(s.frames.is_empty());
        assert_eq!(wal.size_bytes(), HEADER_LEN);
        drop(wal);
        // Torn header (prefix of the magic only).
        std::fs::write(&path, &MAGIC[..2]).expect("write");
        let (wal, s) = Wal::open(&path, 1).expect("open");
        assert!(s.frames.is_empty());
        assert!(s.torn.is_some());
        assert_eq!(wal.size_bytes(), HEADER_LEN);
        std::fs::remove_file(&path).ok();
    }
}
