//! Counters and gauges — the two scalar metric kinds.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing `u64` counter.
///
/// Increments are relaxed atomic adds: counters tolerate any thread
/// interleaving and cost one uncontended atomic RMW per event.  Counters
/// saturate at `u64::MAX` in the practical sense that wrapping would
/// require 2⁶⁴ events; no special handling is attempted.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge.
///
/// The value lives in an `AtomicU64` as its IEEE-754 bit pattern;
/// [`Gauge::set`] is a plain store, [`Gauge::inc`]/[`Gauge::dec`] are
/// CAS loops (contention on a gauge is rare — typically one writer).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Adds `delta` (atomically, via CAS).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_counter_increments_are_exact() {
        // The ISSUE's loom-free concurrency check: N threads, exact total.
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_get() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn concurrent_gauge_adds_are_exact() {
        // Deltas of 1.0 stay exactly representable far beyond this total,
        // so the CAS loop must account for every one.
        let g = Arc::new(Gauge::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        g.inc();
                    }
                    for _ in 0..2_500 {
                        g.dec();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 8.0 * 2_500.0);
    }
}
