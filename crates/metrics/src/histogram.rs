//! Fixed-bucket cumulative histograms, Prometheus-style.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default latency buckets in seconds: 1 µs … 10 s, roughly 1–2.5–5 per
/// decade.  Covers everything from a single sketch insert to a full
/// checkpoint of a large synopsis.
pub const LATENCY_BUCKETS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Default size buckets in bytes: 64 B … 256 MiB in ×4 steps.
pub const SIZE_BUCKETS: &[f64] = &[
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
    67108864.0, 268435456.0,
];

/// A fixed-bucket histogram with lock-free observation.
///
/// Buckets follow the Prometheus convention: each bound is an *inclusive*
/// upper edge (`le`), an implicit `+Inf` bucket catches the tail, and the
/// exposition renders cumulative counts.  The sum of observed values is
/// kept as an `f64` bit-pattern updated by CAS, so any unit works (the
/// workspace uses seconds for latencies and bytes for sizes).
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing; the `+Inf` bucket is
    /// implicit.
    bounds: Vec<f64>,
    /// One count per bound plus the `+Inf` bucket: `counts[i]` is the
    /// number of observations `v` with `bounds[i-1] < v <= bounds[i]`.
    counts: Vec<AtomicU64>,
    /// Σ of observed values, as `f64` bits.
    sum_bits: AtomicU64,
}

/// A point-in-time copy of a histogram's state (taken at render time).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The inclusive upper bounds (without `+Inf`).
    pub bounds: Vec<f64>,
    /// *Cumulative* counts per bound, ending with the `+Inf` total.
    pub cumulative: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, non-finite, or not strictly
    /// increasing — bucket layouts are compile-time decisions, so a bad
    /// one is a programming error worth failing fast on.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        for w in bounds.windows(2) {
            if let [a, b] = w {
                assert!(a < b, "histogram bounds must be strictly increasing");
            }
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (the +Inf bucket is implicit)"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        // First bucket whose inclusive upper bound admits v; NaN falls
        // through every comparison into +Inf rather than corrupting a
        // bucket.
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get(idx) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Takes a consistent-enough snapshot for rendering.  Individual
    /// bucket loads are relaxed, so a snapshot taken concurrently with
    /// observations may be mid-update by a few counts — fine for
    /// monitoring, which is the only consumer.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.counts.len());
        let mut running = 0u64;
        for c in &self.counts {
            running = running.saturating_add(c.load(Ordering::Relaxed));
            cumulative.push(running);
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            count: running,
            cumulative,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }

    /// Sum of observed values so far.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_edges() {
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        // Exactly on a bound lands in that bound's bucket (le semantics).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(5.0);
        // Just above a bound lands in the next bucket.
        h.observe(1.0000001);
        // Below everything lands in the first bucket.
        h.observe(0.0);
        h.observe(-3.0);
        // Above the last bound lands in +Inf.
        h.observe(5.1);
        let s = h.snapshot();
        // Raw (non-cumulative) occupancy: [1.0] <- {1.0, 0.0, -3.0},
        // (1,2] <- {2.0, 1.0000001}, (2,5] <- {5.0}, +Inf <- {5.1}.
        assert_eq!(s.cumulative, vec![3, 5, 6, 7]);
        assert_eq!(s.count, 7);
        let expected_sum = 1.0 + 2.0 + 5.0 + 1.0000001 + 0.0 - 3.0 + 5.1;
        assert!((s.sum - expected_sum).abs() < 1e-9);
    }

    #[test]
    fn nan_goes_to_inf_bucket() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.cumulative, vec![0, 1]);
    }

    #[test]
    fn latency_buckets_are_valid() {
        // The constructor validates ordering/finiteness; constructing the
        // defaults is the test.
        Histogram::new(LATENCY_BUCKETS);
        Histogram::new(SIZE_BUCKETS);
    }

    #[test]
    fn concurrent_observations_are_exact() {
        let h = Arc::new(Histogram::new(&[0.5]));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let h = h.clone();
                std::thread::spawn(move || {
                    // Half the threads hit the first bucket, half +Inf.
                    let v = if i % 2 == 0 { 0.25 } else { 0.75 };
                    for _ in 0..10_000 {
                        h.observe(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.cumulative, vec![40_000, 80_000]);
        let expected = 40_000.0 * 0.25 + 40_000.0 * 0.75;
        assert!((s.sum - expected).abs() < 1e-6, "sum {}", s.sum);
    }

    #[test]
    fn observe_duration_is_seconds() {
        let h = Histogram::new(&[1e-3, 1.0]);
        h.observe_duration(std::time::Duration::from_micros(500));
        h.observe_duration(std::time::Duration::from_millis(500));
        let s = h.snapshot();
        assert_eq!(s.cumulative, vec![1, 2, 2]);
    }

    #[test]
    #[should_panic]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn empty_bounds_rejected() {
        Histogram::new(&[]);
    }

    #[test]
    #[should_panic]
    fn infinite_bound_rejected() {
        Histogram::new(&[1.0, f64::INFINITY]);
    }
}
