//! The metric registry and its two exposition formats.

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// One labeled series inside a family.
#[derive(Debug)]
struct Series {
    /// Fixed `(key, value)` label pairs, rendered in registration order.
    labels: Vec<(String, String)>,
    handle: Handle,
}

#[derive(Debug)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// A family: one metric name, one type, one help string, many series.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A named collection of metrics.
///
/// Registration returns `Arc` handles that stay valid independently of
/// the registry.  Registering the same name again with the same metric
/// type adds another labeled series to the existing family (this is how
/// per-opcode histograms share one name); re-registering with a
/// *different* type panics, since the exposition would be ill-formed.
///
/// The internal mutex guards the family list only — it is taken at
/// registration and render time, never on the measurement path.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers a counter series with fixed labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push(name, help, labels, Handle::Counter(c.clone()));
        c
    }

    /// Registers an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers a gauge series with fixed labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push(name, help, labels, Handle::Gauge(g.clone()));
        g
    }

    /// Registers an unlabeled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers a histogram series with fixed labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new(bounds));
        self.push(name, help, labels, Handle::Histogram(h.clone()));
        h
    }

    fn push(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Handle) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = families.iter_mut().find(|f| f.name == name) {
            let existing = f.series.first().map(|s| s.handle.kind());
            assert_eq!(
                existing,
                Some(handle.kind()),
                "metric `{name}` re-registered with a different type"
            );
            f.series.push(Series { labels, handle });
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                series: vec![Series { labels, handle }],
            });
        }
    }

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// `# HELP` / `# TYPE` headers, one sample line per series, and for
    /// histograms the cumulative `_bucket{le=…}` / `_sum` / `_count`
    /// triple.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        for f in families.iter() {
            let kind = f.series.first().map_or("untyped", |s| s.handle.kind());
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, kind);
            for s in &f.series {
                match &s.handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            label_block(&s.labels, None),
                            c.get()
                        );
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            label_block(&s.labels, None),
                            fmt_f64(g.get())
                        );
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        for (bound, cum) in snap.bounds.iter().zip(&snap.cumulative) {
                            let le = fmt_f64(*bound);
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                f.name,
                                label_block(&s.labels, Some(&le)),
                                cum
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            f.name,
                            label_block(&s.labels, Some("+Inf")),
                            snap.count
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            f.name,
                            label_block(&s.labels, None),
                            fmt_f64(snap.sum)
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            f.name,
                            label_block(&s.labels, None),
                            snap.count
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders a JSON object: metric name → `{type, help, series: […]}`,
    /// each series carrying its labels and either a scalar `value` or a
    /// histogram's `{buckets, sum, count}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        for (i, f) in families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kind = f.series.first().map_or("untyped", |s| s.handle.kind());
            let _ = write!(
                out,
                "{}:{{\"type\":{},\"help\":{},\"series\":[",
                json_str(&f.name),
                json_str(kind),
                json_str(&f.help)
            );
            for (j, s) in f.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (k, (key, value)) in s.labels.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_str(key), json_str(value));
                }
                out.push_str("},");
                match &s.handle {
                    Handle::Counter(c) => {
                        let _ = write!(out, "\"value\":{}", c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = write!(out, "\"value\":{}", json_f64(g.get()));
                    }
                    Handle::Histogram(h) => {
                        let snap = h.snapshot();
                        out.push_str("\"buckets\":[");
                        write_json_buckets(&mut out, &snap);
                        let _ = write!(
                            out,
                            "],\"sum\":{},\"count\":{}",
                            json_f64(snap.sum),
                            snap.count
                        );
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

fn write_json_buckets(out: &mut String, snap: &HistogramSnapshot) {
    for (i, (bound, cum)) in snap.bounds.iter().zip(&snap.cumulative).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"le\":{},\"count\":{cum}}}", json_f64(*bound));
    }
    if !snap.bounds.is_empty() {
        out.push(',');
    }
    let _ = write!(out, "{{\"le\":\"+Inf\",\"count\":{}}}", snap.count);
}

/// `{k="v",…}` with an optional extra `le` label, or the empty string.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Prometheus label-value escaping: backslash, quote, newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus help-text escaping: backslash and newline.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Shortest clean decimal for exposition values.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// JSON number rendering; non-finite values become strings, since JSON
/// has no literal for them.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{}\"", fmt_f64(v))
    }
}

/// A JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_exposition_shapes() {
        let r = Registry::new();
        let c = r.counter("requests_total", "Requests served");
        c.add(3);
        let g = r.gauge("active", "Active connections");
        g.set(2.0);
        let h = r.histogram("latency_seconds", "Latency", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render_text();
        assert!(text.contains("# HELP requests_total Requests served"), "{text}");
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total 3"), "{text}");
        assert!(text.contains("# TYPE active gauge"), "{text}");
        assert!(text.contains("active 2"), "{text}");
        assert!(text.contains("# TYPE latency_seconds histogram"), "{text}");
        assert!(text.contains("latency_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("latency_seconds_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("latency_seconds_count 3"), "{text}");
        assert!(text.contains("latency_seconds_sum 5.55"), "{text}");
    }

    #[test]
    fn labeled_series_share_a_family() {
        let r = Registry::new();
        let a = r.counter_with("ops_total", "Ops", &[("op", "read")]);
        let b = r.counter_with("ops_total", "Ops", &[("op", "write")]);
        a.inc();
        b.add(2);
        let text = r.render_text();
        // One header, two series.
        assert_eq!(text.matches("# TYPE ops_total counter").count(), 1, "{text}");
        assert!(text.contains("ops_total{op=\"read\"} 1"), "{text}");
        assert!(text.contains("ops_total{op=\"write\"} 2"), "{text}");
    }

    #[test]
    #[should_panic]
    fn type_conflict_panics() {
        let r = Registry::new();
        r.counter("x", "first");
        r.gauge("x", "second");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("c", "help", &[("k", "a\"b\\c\nd")]);
        let text = r.render_text();
        assert!(text.contains(r#"c{k="a\"b\\c\nd"} 0"#), "{text}");
    }

    #[test]
    fn json_exposition_is_well_formed_enough() {
        let r = Registry::new();
        r.counter("requests_total", "Requests \"served\"").add(7);
        r.gauge("fill", "Fill ratio").set(0.25);
        let h = r.histogram_with("lat", "Latency", &[0.5], &[("op", "q")]);
        h.observe(0.1);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"requests_total\""), "{json}");
        assert!(json.contains("\"value\":7"), "{json}");
        assert!(json.contains("\"Requests \\\"served\\\"\""), "{json}");
        assert!(json.contains("\"value\":0.25"), "{json}");
        assert!(json.contains("\"le\":0.5,\"count\":1"), "{json}");
        assert!(json.contains("\"le\":\"+Inf\",\"count\":1"), "{json}");
        // Balanced braces/brackets (cheap well-formedness proxy, since
        // no quoted string here contains braces).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn handles_outlive_registry() {
        let c = {
            let r = Registry::new();
            r.counter("c", "h")
        };
        c.inc(); // must not panic or dangle
        assert_eq!(c.get(), 1);
    }
}
