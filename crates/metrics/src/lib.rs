//! Instrumentation primitives for the SketchTree stack.
//!
//! A production synopsis is only trustworthy when its behaviour is
//! observable online: Theorems 1 and 2 tie every estimate's error to
//! quantities (residual self-join size, sketch occupancy, top-k fill)
//! that drift as the stream flows, and an operator needs to watch them
//! without attaching a debugger.  This crate provides the measurement
//! substrate the rest of the workspace threads through its hot paths:
//!
//! * [`Counter`] — a monotone `u64` (relaxed atomic increments);
//! * [`Gauge`] — a settable `f64` (atomic bit-store, CAS add/sub);
//! * [`Histogram`] — a fixed-bucket cumulative histogram in the
//!   Prometheus style (`le`-bounded buckets, sum, count), lock-free on
//!   the observation path;
//! * [`Registry`] — a named collection of the above, with optional
//!   fixed label sets per series, rendered as Prometheus text
//!   exposition ([`Registry::render_text`]) or JSON
//!   ([`Registry::render_json`]).
//!
//! Design constraints, in priority order:
//!
//! 1. **Std-only.**  The workspace builds offline; no external crates.
//! 2. **Lock-light.**  Recording a measurement (`inc`, `observe`,
//!    `set`) never takes a lock — only relaxed/CAS atomics — so
//!    instrumentation is safe inside the sketch-update and
//!    connection-serving hot paths.  The registry's mutex guards only
//!    registration (startup) and rendering (scrape time).
//! 3. **No global state.**  A [`Registry`] is an ordinary value; tests
//!    build as many as they like and nothing leaks between them.
//!
//! Handles are `Arc`-shared: registering a metric returns an
//! `Arc<Counter>` (etc.) that the instrumented code stores, while the
//! registry keeps a clone for rendering.  Dropping the registry does not
//! invalidate handles, and recording to a handle after the registry is
//! gone is harmless.
//!
//! ```
//! use sketchtree_metrics::Registry;
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let trees = registry.counter("ingest_trees_total", "Trees ingested");
//! let latency = registry.histogram(
//!     "ingest_seconds",
//!     "Per-tree ingest latency",
//!     sketchtree_metrics::LATENCY_BUCKETS,
//! );
//!
//! trees.inc();
//! latency.observe_duration(Duration::from_micros(250));
//!
//! let text = registry.render_text();
//! assert!(text.contains("ingest_trees_total 1"));
//! assert!(text.contains("ingest_seconds_count 1"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod counter;
mod histogram;
mod registry;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, LATENCY_BUCKETS, SIZE_BUCKETS};
pub use registry::Registry;
