//! Adversarial snapshot-decoder tests: a snapshot file is an untrusted
//! input (it may come off a crashed disk or a hostile peer), so
//! `read_snapshot` must map every malformed byte string to the *right*
//! `SnapshotError` variant and never panic or over-allocate.

use sketchtree_core::sketchtree::{SketchTree, SketchTreeConfig};
use sketchtree_core::snapshot::{read_snapshot, write_snapshot, SnapshotError};
use sketchtree_sketch::SynopsisConfig;
use sketchtree_tree::Tree;

fn build() -> SketchTree {
    let mut st = SketchTree::new(SketchTreeConfig {
        max_pattern_edges: 3,
        synopsis: SynopsisConfig {
            s1: 20,
            s2: 5,
            virtual_streams: 7,
            topk: 4,
            ..SynopsisConfig::default()
        },
        ..SketchTreeConfig::default()
    });
    let (a, b, c) = {
        let l = st.labels_mut();
        (l.intern("A"), l.intern("B"), l.intern("C"))
    };
    for _ in 0..30 {
        st.ingest(&Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]));
    }
    st.ingest(&Tree::node(b, vec![Tree::node(a, vec![Tree::leaf(c)])]));
    st
}

#[test]
fn truncation_at_every_single_byte_boundary() {
    let bytes = write_snapshot(&build());
    // Every strict prefix must fail cleanly — not just a sample of cut
    // points, all of them: section boundaries, mid-integer, mid-string.
    for cut in 0..bytes.len() {
        match read_snapshot(&bytes[..cut]) {
            Err(SnapshotError::Truncated) | Err(SnapshotError::BadMagic) => {}
            Err(other) => panic!("prefix of {cut} bytes: unexpected error {other:?}"),
            Ok(_) => panic!("prefix of {cut} bytes parsed as a full snapshot"),
        }
    }
    // Cuts inside the magic are BadMagic only when the magic itself is
    // incomplete; from the version field on, everything is Truncated.
    assert_eq!(read_snapshot(&bytes[..2]).err(), Some(SnapshotError::Truncated));
    assert_eq!(read_snapshot(&bytes[..6]).err(), Some(SnapshotError::Truncated));
}

#[test]
fn bad_magic_and_version_are_distinguished() {
    let good = write_snapshot(&build());
    let mut wrong_magic = good.clone();
    wrong_magic[..4].copy_from_slice(b"SKTP"); // the *wire* magic is not the snapshot magic
    assert_eq!(read_snapshot(&wrong_magic).err(), Some(SnapshotError::BadMagic));

    let mut wrong_version = good.clone();
    wrong_version[4..8].copy_from_slice(&7u32.to_le_bytes());
    assert_eq!(
        read_snapshot(&wrong_version).err(),
        Some(SnapshotError::UnsupportedVersion(7))
    );
}

/// Oversized length/count fields must be rejected by the plausibility
/// caps *before* any allocation is attempted.
#[test]
fn oversized_length_fields_rejected_without_allocation() {
    let good = write_snapshot(&build());
    // Field offsets in the v1 config section (all u64 LE after the 8-byte
    // magic+version header): max_pattern_edges is first.
    let mut huge_k = good.clone();
    huge_k[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(
        read_snapshot(&huge_k).err(),
        Some(SnapshotError::Corrupt("max_pattern_edges"))
    );

    // The label-count field sits right after the fixed-size config block:
    // find it dynamically by corrupting where the writer put it.  Config:
    // u64, u8, u32, u64 + 5*u64 + u16 + u64 + u8 + 3*u64.
    let label_count_at = 8 + 8 + 1 + 4 + 8 + 5 * 8 + 2 + 8 + 1 + 3 * 8;
    let mut huge_labels = good.clone();
    huge_labels[label_count_at..label_count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(
        read_snapshot(&huge_labels).err(),
        Some(SnapshotError::Corrupt("label count"))
    );

    // A string length beyond its cap (label names follow the count).
    let mut huge_str = good.clone();
    huge_str[label_count_at + 8..label_count_at + 16]
        .copy_from_slice(&(1u64 << 40).to_le_bytes());
    assert_eq!(
        read_snapshot(&huge_str).err(),
        Some(SnapshotError::Corrupt("string length"))
    );
}

#[test]
fn geometry_mismatches_are_corrupt_not_panics() {
    let st = build();
    let good = write_snapshot(&st);
    // Shrink virtual_streams in the config without touching the bank
    // sections: the bank count check must fire.
    let streams_at = 8 + 8 + 1 + 4 + 8 + 2 * 8; // after s1, s2
    let mut mismatched = good.clone();
    mismatched[streams_at..streams_at + 8].copy_from_slice(&3u64.to_le_bytes());
    assert_eq!(
        read_snapshot(&mismatched).err(),
        Some(SnapshotError::Corrupt("bank count != virtual_streams"))
    );

    // Zero sketch geometry must be rejected before constructors assert.
    let s1_at = 8 + 8 + 1 + 4 + 8;
    let mut zeroed = good.clone();
    zeroed[s1_at..s1_at + 8].copy_from_slice(&0u64.to_le_bytes());
    let err = read_snapshot(&zeroed).err().expect("zero s1 rejected");
    assert!(
        matches!(err, SnapshotError::Corrupt(_)),
        "expected Corrupt, got {err:?}"
    );
}

#[test]
fn trailing_garbage_rejected() {
    let mut bytes = write_snapshot(&build());
    bytes.extend_from_slice(b"extra");
    assert_eq!(
        read_snapshot(&bytes).err(),
        Some(SnapshotError::Corrupt("trailing bytes"))
    );
}

/// Exhaustive single-byte corruption sweep: every position, three flip
/// patterns.  The decoder must always return — success (the byte was a
/// counter value) or a clean error — and a successful parse must yield a
/// queryable synopsis, not a time bomb.
#[test]
fn single_byte_corruption_never_panics_and_survivors_are_usable() {
    let bytes = write_snapshot(&build());
    let mut survivors = 0u32;
    // Stride 11 is coprime to every field width in the format, so over
    // the file the sweep hits every byte offset class of every field
    // while keeping the debug-build runtime in seconds.
    for pos in (0..bytes.len()).step_by(11) {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= flip;
            if let Ok(st) = read_snapshot(&mutated) {
                survivors += 1;
                // A snapshot that decodes must also answer queries.
                let _ = st.count_ordered("A(B)");
                let _ = st.trees_processed();
            }
        }
    }
    // Most flips land in counter values and survive; the point is that
    // *none* panicked above.
    assert!(survivors > 0, "corruption sweep had no parseable mutants");
}

#[test]
fn duplicate_tracked_values_rejected() {
    // Build a snapshot, then locate the first tracked section and force a
    // duplicate by copying one entry over its neighbour.  Rather than
    // hand-compute offsets through the variable-length label section, do
    // it semantically: serialize, parse, verify the guard exists by
    // corrupting the whole tracked region bytewise and checking we only
    // ever see clean errors (the dedicated duplicate guard is exercised
    // by the snapshot module's own unit tests for crafted states).
    let bytes = write_snapshot(&build());
    let tail = bytes.len().saturating_sub(200);
    for pos in tail..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] = 0xAA;
        let _ = read_snapshot(&mutated); // must not panic
    }
}
