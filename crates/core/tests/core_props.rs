//! Property-based tests for EnumTree, arrangements and the query parser.

use proptest::prelude::*;
use sketchtree_core::enumtree::{count_patterns, enumerate_patterns};
use sketchtree_core::query::parse_pattern;
use sketchtree_core::unordered::arrangements;
use sketchtree_core::Mapper;
use sketchtree_tree::{Label, NodeId, PruferSeq, Tree};
use std::collections::HashSet;

fn arb_tree(max_children: usize, depth: u32) -> impl Strategy<Value = Tree> {
    let leaf = (0u32..4).prop_map(|l| Tree::leaf(Label(l)));
    leaf.prop_recursive(depth, 12, max_children as u32, move |inner| {
        (0u32..4, prop::collection::vec(inner, 1..=max_children))
            .prop_map(|(l, children)| Tree::node(Label(l), children))
    })
}

/// Brute force: all edge subsets forming a rooted tree (tiny trees only).
fn brute_force(tree: &Tree, k: usize) -> HashSet<(NodeId, Vec<(NodeId, NodeId)>)> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for id in tree.preorder() {
        for &c in tree.children(id) {
            edges.push((id, c));
        }
    }
    let m = edges.len();
    let mut out = HashSet::new();
    for mask in 1u32..(1u32 << m) {
        let subset: Vec<(NodeId, NodeId)> = (0..m)
            .filter(|&e| mask >> e & 1 == 1)
            .map(|e| edges[e])
            .collect();
        if subset.len() > k {
            continue;
        }
        let children: HashSet<NodeId> = subset.iter().map(|&(_, c)| c).collect();
        let parents: HashSet<NodeId> = subset.iter().map(|&(p, _)| p).collect();
        let roots: Vec<NodeId> = parents.difference(&children).copied().collect();
        if roots.len() != 1 {
            continue;
        }
        let nodes: HashSet<NodeId> = children.iter().copied().chain([roots[0]]).collect();
        if nodes.len() == subset.len() + 1 && subset.iter().all(|&(p, _)| nodes.contains(&p)) {
            let mut sorted = subset;
            sorted.sort();
            out.insert((roots[0], sorted));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// EnumTree emits exactly the connected rooted edge subsets, no
    /// duplicates, no omissions — against brute force on random trees.
    #[test]
    fn enumtree_matches_brute_force(t in arb_tree(3, 3), k in 1usize..5) {
        prop_assume!(t.edge_count() <= 10);
        let mut fast = HashSet::new();
        enumerate_patterns(&t, k, |root, edges| {
            let mut e = edges.to_vec();
            e.sort();
            assert!(fast.insert((root, e)), "duplicate pattern");
        });
        prop_assert_eq!(fast, brute_force(&t, k));
    }

    /// Pattern counts are monotone in k and bounded by 2^edges per root
    /// choice.
    #[test]
    fn counts_monotone_in_k(t in arb_tree(3, 3)) {
        let mut prev = 0;
        for k in 1..=6 {
            let n = count_patterns(&t, k);
            prop_assert!(n >= prev);
            prev = n;
        }
    }

    /// Every enumerated pattern projects to a tree whose Prüfer sequence
    /// decodes back to it (the full canonicalisation chain is lossless).
    #[test]
    fn patterns_canonicalise_losslessly(t in arb_tree(3, 3)) {
        enumerate_patterns(&t, 3, |root, edges| {
            let p = t.project(root, edges);
            let seq = PruferSeq::encode(&p);
            assert_eq!(seq.decode().expect("valid"), p);
        });
    }

    /// Distinct patterns of one tree map to distinct values (fingerprint
    /// collisions at degree 61 are ~2^-61 per pair — treat one as a bug).
    #[test]
    fn pattern_mapping_injective_within_tree(t in arb_tree(3, 3)) {
        let mapper = Mapper::new(61, 99);
        let mut by_value: std::collections::HashMap<u64, Tree> = Default::default();
        enumerate_patterns(&t, 4, |root, edges| {
            let p = t.project(root, edges);
            let v = mapper.map_tree(&p);
            if let Some(existing) = by_value.get(&v) {
                assert_eq!(existing, &p, "fingerprint collision");
            } else {
                by_value.insert(v, p);
            }
        });
    }

    /// Arrangements: all results are distinct, include the original, have
    /// the same node multiset, and agree with the multinomial count for
    /// depth-1 patterns.
    #[test]
    fn arrangements_invariants(t in arb_tree(3, 2)) {
        prop_assume!(t.len() <= 8);
        let arr = match arrangements(&t, 5000) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        prop_assert!(arr.contains(&t));
        let mut seen = HashSet::new();
        for a in &arr {
            prop_assert!(seen.insert(a.to_sexpr()), "duplicate arrangement");
            prop_assert_eq!(a.len(), t.len());
            // Same multiset of labels.
            let mut la: Vec<u32> = a.preorder().iter().map(|&i| a.label(i).0).collect();
            let mut lt: Vec<u32> = t.preorder().iter().map(|&i| t.label(i).0).collect();
            la.sort_unstable();
            lt.sort_unstable();
            prop_assert_eq!(la, lt);
        }
    }

    /// Depth-1 star: arrangement count is the multinomial
    /// n! / (m1! m2! ...) over label multiplicities.
    #[test]
    fn star_arrangement_count(labels in prop::collection::vec(0u32..3, 1..6)) {
        let t = Tree::node(
            Label(9),
            labels.iter().map(|&l| Tree::leaf(Label(l))).collect(),
        );
        let arr = arrangements(&t, 10_000).expect("within cap");
        let mut counts = [0u64; 3];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let fact = |n: u64| (1..=n).product::<u64>().max(1);
        let expect = fact(labels.len() as u64)
            / counts.iter().map(|&c| fact(c)).product::<u64>();
        prop_assert_eq!(arr.len() as u64, expect);
    }

    /// Snapshot round-trips preserve every estimate, for random streams
    /// and random (small) configurations.
    #[test]
    fn snapshot_roundtrip_property(
        trees in prop::collection::vec(arb_tree(3, 3), 1..12),
        s1 in 2usize..12,
        vs in 1usize..9,
        topk in 0usize..4,
        seed in any::<u64>(),
    ) {
        use sketchtree_core::snapshot::{read_snapshot, write_snapshot};
        use sketchtree_core::{SketchTree, SketchTreeConfig};
        use sketchtree_sketch::SynopsisConfig;
        let mut st = SketchTree::new(SketchTreeConfig {
            max_pattern_edges: 3,
            synopsis: SynopsisConfig {
                s1,
                s2: 3,
                virtual_streams: vs,
                topk,
                seed,
                ..SynopsisConfig::default()
            },
            ..SketchTreeConfig::default()
        });
        // Intern the strategy's labels by their ids so queries can resolve.
        for i in 0..6u32 {
            st.labels_mut().intern(&format!("L{i}"));
        }
        // Rebuild the strategy trees against the synopsis label table — the
        // strategy used raw Label(ids) 0..6 which now exist.
        for t in &trees {
            st.ingest(t);
        }
        let restored = read_snapshot(&write_snapshot(&st)).expect("roundtrip");
        prop_assert_eq!(restored.trees_processed(), st.trees_processed());
        prop_assert_eq!(restored.patterns_processed(), st.patterns_processed());
        // Estimates agree for every pattern of the first tree.
        enumerate_patterns(&trees[0], 3, |root, edges| {
            let p = trees[0].project(root, edges);
            let a = st.count_ordered_tree(&p);
            let b = restored.count_ordered_tree(&p);
            assert_eq!(a, b, "estimate changed across snapshot");
        });
        prop_assert_eq!(
            restored.tracked_heavy_hitters(),
            st.tracked_heavy_hitters()
        );
    }

    /// Merging shard synopses equals sequential ingest: for a random
    /// stream split at a random point, merge(left, right) matches the
    /// single synopsis that saw the whole stream — *byte*-identical
    /// (snapshot equality) with top-k off, and with totals preserved at
    /// any top-k size.
    #[test]
    fn merge_parity_property(
        trees in prop::collection::vec(arb_tree(3, 3), 2..12),
        split in 0usize..64,
        s1 in 2usize..12,
        vs in 1usize..9,
        topk in 0usize..4,
        seed in any::<u64>(),
    ) {
        use sketchtree_core::snapshot::write_snapshot;
        use sketchtree_core::{SketchTree, SketchTreeConfig};
        use sketchtree_sketch::SynopsisConfig;
        let config = SketchTreeConfig {
            max_pattern_edges: 3,
            synopsis: SynopsisConfig {
                s1,
                s2: 3,
                virtual_streams: vs,
                topk,
                seed,
                ..SynopsisConfig::default()
            },
            ..SketchTreeConfig::default()
        };
        let mk = || {
            let mut st = SketchTree::new(config.clone());
            for i in 0..6u32 {
                st.labels_mut().intern(&format!("L{i}"));
            }
            st
        };
        let cut = split % trees.len();
        let mut whole = mk();
        let mut left = mk();
        let mut right = mk();
        for t in &trees {
            whole.ingest(t);
        }
        for t in &trees[..cut] {
            left.ingest(t);
        }
        for t in &trees[cut..] {
            right.ingest(t);
        }
        left.merge(&right).expect("identical configs merge");
        prop_assert_eq!(left.trees_processed(), whole.trees_processed());
        prop_assert_eq!(left.patterns_processed(), whole.patterns_processed());
        if topk == 0 {
            prop_assert!(
                write_snapshot(&left) == write_snapshot(&whole),
                "merge must be byte-identical to sequential ingest with top-k off"
            );
        }
        enumerate_patterns(&trees[0], 3, |root, edges| {
            let p = trees[0].project(root, edges);
            let a = whole.count_ordered_tree(&p);
            let b = left.count_ordered_tree(&p);
            if topk == 0 {
                assert_eq!(a.to_bits(), b.to_bits(), "estimate diverged after merge");
            } else {
                // With top-k on, merge is invariant-preserving rather than
                // bit-equal; the compensated estimate must still be usable.
                assert!(b.is_finite(), "merged estimate not finite");
            }
        });
    }

    /// Large-pattern decomposition conserves edges, respects k in every
    /// part, and keeps piece roots labeled like their cut nodes — for
    /// random trees and every feasible k.
    #[test]
    fn decompose_invariants(t in arb_tree(3, 4), k in 1usize..5) {
        use sketchtree_core::large::decompose;
        prop_assume!(t.edge_count() >= 1);
        let d = decompose(&t, k);
        prop_assert!(d.remainder.edge_count() <= k);
        let mut total = d.remainder.edge_count();
        for piece in &d.pieces {
            prop_assert!((1..=k).contains(&piece.edge_count()));
            total += piece.edge_count();
        }
        prop_assert_eq!(total, t.edge_count(), "edges not conserved");
        // The remainder's root label matches the original root.
        prop_assert_eq!(d.remainder.label(d.remainder.root()), t.label(t.root()));
        // Patterns within k decompose trivially.
        if t.edge_count() <= k {
            prop_assert!(d.pieces.is_empty());
            prop_assert_eq!(&d.remainder, &t);
        }
    }

    /// The query pattern Display form re-parses to the same pattern.
    #[test]
    fn query_display_roundtrip(s in "[A-Z]{1,3}(\\([A-Z]{1,3}(,[A-Z]{1,3}){0,2}\\))?") {
        if let Ok(p) = parse_pattern(&s) {
            let again = parse_pattern(&p.to_string()).expect("display is parseable");
            prop_assert_eq!(p, again);
        }
    }
}
