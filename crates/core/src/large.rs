//! Counting patterns larger than k — the paper's future-work item.
//!
//! Section 6.2 ends: "As part of future work, we would like to address
//! issues such as choosing the right value for k, and counting tree
//! patterns of size larger than k."  This module implements the natural
//! first attack, lifting the Markov-table chain rule (see
//! [`crate::markov`]) from paths to twigs:
//!
//! 1. **Decompose** the query greedily bottom-up: repeatedly find a
//!    deepest node `v` whose subtree has at most `k` edges, cut that
//!    subtree out as a *piece*, and leave `v` behind as a leaf of the
//!    remainder. Terminate when the remainder fits in `k` edges.
//! 2. **Combine** under a conditional-independence assumption — given a
//!    `v`-labeled node, what hangs below it is independent of the context
//!    above:
//!
//!    ```text
//!    count(Q) ≈ count(remainder) · Π_pieces count(piece) / count(label(cut))
//!    ```
//!
//! Every factor is a pattern of ≤ k edges (the denominators are
//! single-node patterns), so every factor comes from the synopsis.
//! Single-node patterns must therefore be sketched — enable
//! `SketchTreeConfig::include_single_nodes`.
//!
//! Like every independence-based estimator, this is **heuristic**: exact
//! when the stream really is Markovian at the cut labels (tested), biased
//! when context correlates across a cut (tested too, with the bias
//! direction documented in the test). Theorem 1's guarantees apply to
//! each *factor*, not to the product.

use crate::sketchtree::{SketchTree, SketchTreeError};
use sketchtree_tree::{NodeId, Tree};
use std::fmt;

/// Errors from [`SketchTree::count_large_ordered`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LargePatternError {
    /// Decomposition denominators need single-node pattern counts; set
    /// `SketchTreeConfig::include_single_nodes`.
    SingleNodeCountsRequired,
    /// Propagated query error.
    Inner(Box<SketchTreeError>),
}

impl fmt::Display for LargePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LargePatternError::SingleNodeCountsRequired => write!(
                f,
                "large-pattern estimation needs single-node counts; \
                 set SketchTreeConfig::include_single_nodes"
            ),
            LargePatternError::Inner(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LargePatternError {}

/// The decomposition of an oversized pattern: a remainder that fits in k
/// edges plus the cut-out pieces (each contributing a
/// `count(piece)/count(cut label)` factor).
#[derive(Debug)]
pub struct Decomposition {
    /// The final remainder (≤ k edges), containing each cut node as a leaf.
    pub remainder: Tree,
    /// The cut-out pieces, each ≤ k edges, rooted at a cut node.
    pub pieces: Vec<Tree>,
}

/// Splits `pattern` into a remainder and pieces of at most `k` edges each.
///
/// Greedy bottom-up: while the pattern exceeds `k` edges, find the deepest
/// node whose subtree has 1..=k edges and the largest such subtree among
/// the deepest candidates, cut it, and keep its root label as a leaf of
/// the remainder.
///
/// # Panics
/// Panics if `k == 0`.
pub fn decompose(pattern: &Tree, k: usize) -> Decomposition {
    assert!(k >= 1, "pattern pieces need at least one edge");
    let mut current = pattern.clone();
    let mut pieces = Vec::new();
    while current.edge_count() > k {
        // Subtree edge counts, bottom-up.
        let post = current.postorder();
        let mut sub = vec![0usize; current.len()];
        for &id in &post {
            sub[id.index()] = current
                .children(id)
                .iter()
                .map(|c| sub[c.index()] + 1)
                .sum();
        }
        // Preferred cut: a non-root node with 1..=k subtree edges; prefer
        // the largest such subtree (fewest rounds).
        let cut = post
            .iter()
            .copied()
            .filter(|&id| id != current.root())
            .filter(|&id| (1..=k).contains(&sub[id.index()]))
            .max_by_key(|&id| sub[id.index()]);
        match cut {
            Some(cut) => {
                // Piece: the whole subtree at `cut` (project keeps order).
                let mut piece_edges = Vec::new();
                collect_subtree_edges(&current, cut, &mut piece_edges);
                pieces.push(current.project(cut, &piece_edges));
                // Remainder: the tree with cut's descendants removed (cut
                // itself stays as a leaf — the chain-rule junction).
                let mut rest_edges = Vec::new();
                for id in current.preorder() {
                    if id == cut || is_descendant(&current, id, cut) {
                        continue;
                    }
                    for &c in current.children(id) {
                        if c == cut || !is_descendant(&current, c, cut) {
                            rest_edges.push((id, c));
                        }
                    }
                }
                current = current.project(current.root(), &rest_edges);
            }
            None => {
                // No whole subtree fits: every non-root subtree is either a
                // bare leaf or larger than k. Then some node's children are
                // all leaves with fanout > k (a star) — split its sibling
                // set instead: piece = the node with its first k children,
                // remainder keeps the rest (independence now assumed
                // between sibling groups given the parent label).
                let star = post
                    .iter()
                    .copied()
                    .filter(|&id| {
                        current.fanout(id) > 0
                            && current.children(id).iter().all(|&c| current.is_leaf(c))
                            && sub[id.index()] > k
                    })
                    .min_by_key(|&id| sub[id.index()])
                    .expect("a leaf-star wider than k exists when no subtree fits");
                let kids = current.children(star).to_vec();
                let piece_edges: Vec<(NodeId, NodeId)> =
                    kids.iter().take(k).map(|&c| (star, c)).collect();
                pieces.push(current.project(star, &piece_edges));
                let removed: std::collections::HashSet<NodeId> =
                    kids.iter().take(k).copied().collect();
                let mut rest_edges = Vec::new();
                for id in current.preorder() {
                    if removed.contains(&id) {
                        continue;
                    }
                    for &c in current.children(id) {
                        if !(id == star && removed.contains(&c)) {
                            rest_edges.push((id, c));
                        }
                    }
                }
                current = current.project(current.root(), &rest_edges);
            }
        }
    }
    Decomposition {
        remainder: current,
        pieces,
    }
}

fn collect_subtree_edges(t: &Tree, root: NodeId, out: &mut Vec<(NodeId, NodeId)>) {
    for &c in t.children(root) {
        out.push((root, c));
        collect_subtree_edges(t, c, out);
    }
}

fn is_descendant(t: &Tree, node: NodeId, ancestor: NodeId) -> bool {
    let mut cur = t.parent(node);
    while let Some(p) = cur {
        if p == ancestor {
            return true;
        }
        cur = t.parent(p);
    }
    false
}

impl SketchTree {
    /// Estimates `COUNT_ord` of a pattern that may exceed
    /// `max_pattern_edges`, by chain-rule decomposition (heuristic; see
    /// module docs).  Patterns within `k` take the exact Theorem 1 path.
    pub fn count_large_ordered(&self, pattern: &Tree) -> Result<f64, LargePatternError> {
        let k = self.config().max_pattern_edges;
        if pattern.edge_count() <= k {
            return Ok(self.count_ordered_tree(pattern));
        }
        if !self.config().include_single_nodes {
            return Err(LargePatternError::SingleNodeCountsRequired);
        }
        let d = decompose(pattern, k);
        let mut estimate = self.count_ordered_tree(&d.remainder).max(0.0);
        for piece in &d.pieces {
            let numer = self.count_ordered_tree(piece).max(0.0);
            let denom = self
                .count_ordered_tree(&Tree::leaf(piece.label(piece.root())))
                .max(0.0);
            if denom < 1.0 {
                return Ok(0.0);
            }
            estimate *= numer / denom;
        }
        Ok(estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketchtree::SketchTreeConfig;
    use sketchtree_sketch::SynopsisConfig;
    use sketchtree_tree::{Label, LabelTable};

    fn chain(labels: &[Label]) -> Tree {
        let mut it = labels.iter().rev();
        let mut t = Tree::leaf(*it.next().expect("non-empty"));
        for &l in it {
            t = Tree::node(l, vec![t]);
        }
        t
    }

    fn config(k: usize) -> SketchTreeConfig {
        SketchTreeConfig {
            max_pattern_edges: k,
            include_single_nodes: true,
            synopsis: SynopsisConfig {
                s1: 80,
                s2: 7,
                virtual_streams: 13,
                topk: 0,
                ..SynopsisConfig::default()
            },
            track_exact: true,
            ..SketchTreeConfig::default()
        }
    }

    #[test]
    fn decompose_respects_k() {
        let mut lt = LabelTable::new();
        let ls: Vec<Label> = (0..7).map(|i| lt.intern(&format!("L{i}"))).collect();
        let q = chain(&ls); // 6 edges
        for k in 1..=5 {
            let d = decompose(&q, k);
            assert!(d.remainder.edge_count() <= k, "k={k}");
            for p in &d.pieces {
                assert!(p.edge_count() <= k && p.edge_count() >= 1, "k={k}");
            }
            // Edge conservation: remainder + pieces = original edges.
            let total: usize =
                d.remainder.edge_count() + d.pieces.iter().map(Tree::edge_count).sum::<usize>();
            assert_eq!(total, q.edge_count(), "k={k}");
        }
    }

    #[test]
    fn decompose_wide_star() {
        // A star with fanout 5 at k = 2 has no cuttable subtree; the
        // sibling-split fallback must handle it.
        let mut lt = LabelTable::new();
        let a = lt.intern("A");
        let b = lt.intern("B");
        let q = Tree::node(a, (0..5).map(|_| Tree::leaf(b)).collect());
        let d = decompose(&q, 2);
        assert!(d.remainder.edge_count() <= 2);
        for p in &d.pieces {
            assert!((1..=2).contains(&p.edge_count()));
            assert_eq!(p.label(p.root()), a);
        }
        assert_eq!(
            d.remainder.edge_count() + d.pieces.iter().map(Tree::edge_count).sum::<usize>(),
            5
        );
    }

    #[test]
    fn decompose_star_below_root() {
        // The star fallback where the wide node is an internal node.
        let mut lt = LabelTable::new();
        let a = lt.intern("A");
        let b = lt.intern("B");
        let star = Tree::node(b, (0..4).map(|_| Tree::leaf(b)).collect());
        let q = Tree::node(a, vec![star]);
        let d = decompose(&q, 3);
        assert!(d.remainder.edge_count() <= 3);
        assert_eq!(
            d.remainder.edge_count() + d.pieces.iter().map(Tree::edge_count).sum::<usize>(),
            5
        );
    }

    #[test]
    fn decompose_branching_pattern() {
        let mut lt = LabelTable::new();
        let a = lt.intern("A");
        let b = lt.intern("B");
        // A(B(B(B)), B(B(B))): 6 edges.
        let arm = || Tree::node(b, vec![Tree::node(b, vec![Tree::leaf(b)])]);
        let q = Tree::node(a, vec![arm(), arm()]);
        let d = decompose(&q, 2);
        assert!(d.remainder.edge_count() <= 2);
        assert_eq!(
            d.remainder.edge_count() + d.pieces.iter().map(Tree::edge_count).sum::<usize>(),
            6
        );
    }

    /// On a Markovian stream (chains assembled independently at the cut
    /// label) the chain-rule estimate is near-exact.
    #[test]
    fn exact_on_markovian_stream() {
        let mut st = crate::sketchtree::SketchTree::new(config(2));
        let ls: Vec<Label> = {
            let t = st.labels_mut();
            (0..5).map(|i| t.intern(&format!("L{i}"))).collect()
        };
        // Stream of full 4-edge chains L0-L1-L2-L3-L4, 60 copies: every
        // L2 continues identically below, so independence at L2 holds.
        let q = chain(&ls);
        for _ in 0..60 {
            st.ingest(&q);
        }
        // Query the full 4-edge chain with k = 2.
        let est = st.count_large_ordered(&q).unwrap();
        assert!(
            (est - 60.0).abs() <= 18.0,
            "est {est} vs 60 on a Markovian stream"
        );
    }

    /// On an anti-correlated stream the independence assumption smears —
    /// the documented failure mode, shared with every Markov-style
    /// estimator.
    #[test]
    fn biased_on_correlated_stream() {
        let mut st = crate::sketchtree::SketchTree::new(config(1));
        let (a, b, c, d) = {
            let t = st.labels_mut();
            (t.intern("A"), t.intern("B"), t.intern("C"), t.intern("D"))
        };
        // 40 × A(B(C)) and 40 × D(B): B below A always continues to C.
        for _ in 0..40 {
            st.ingest(&Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]));
            st.ingest(&Tree::node(d, vec![Tree::leaf(b)]));
        }
        let q = chain(&[a, b, c]); // 2 edges > k = 1
        let est = st.count_large_ordered(&q).unwrap();
        // Chain rule: f(A,B)·f(B,C)/f(B) = 40·40/80 = 20 vs truth 40 (the
        // truth is by construction; the k = 1 synopsis can't count it
        // directly — that's the whole premise).
        assert!((est - 20.0).abs() <= 8.0, "est {est}, expected ≈ 20");
    }

    #[test]
    fn small_patterns_take_exact_path() {
        let mut st = crate::sketchtree::SketchTree::new(config(3));
        let a = st.labels_mut().intern("A");
        let t = Tree::node(a, vec![Tree::leaf(a)]);
        for _ in 0..30 {
            st.ingest(&t);
        }
        let est = st.count_large_ordered(&t).unwrap();
        assert!((est - 30.0).abs() < 8.0, "est {est}");
    }

    #[test]
    fn requires_single_node_counts() {
        let mut cfg = config(1);
        cfg.include_single_nodes = false;
        let mut st = crate::sketchtree::SketchTree::new(cfg);
        let a = st.labels_mut().intern("A");
        let q = Tree::node(a, vec![Tree::node(a, vec![Tree::leaf(a)])]);
        assert_eq!(
            st.count_large_ordered(&q),
            Err(LargePatternError::SingleNodeCountsRequired)
        );
    }

    #[test]
    fn unseen_cut_label_gives_zero() {
        let mut st = crate::sketchtree::SketchTree::new(config(1));
        let (a, z) = {
            let t = st.labels_mut();
            (t.intern("A"), t.intern("Z"))
        };
        st.ingest(&Tree::node(a, vec![Tree::leaf(a)]));
        let q = chain(&[a, z, a]);
        assert_eq!(st.count_large_ordered(&q).unwrap(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let mut lt = LabelTable::new();
        let a = lt.intern("A");
        decompose(&Tree::node(a, vec![Tree::leaf(a)]), 0);
    }
}
