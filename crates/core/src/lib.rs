//! SketchTree — approximate tree-pattern counts over streaming labeled trees.
//!
//! This crate is the paper's primary contribution (Rao & Moon, ICDE 2006)
//! assembled from the substrate crates:
//!
//! * [`enumtree`] — the EnumTree algorithm (paper Algorithm 3): enumerate
//!   every ordered tree pattern with 1..k edges of a data tree, with
//!   memoization;
//! * [`mapping`] — pattern → extended Prüfer sequence → one-dimensional
//!   value, via Rabin fingerprints (Section 6.1, the experimental default)
//!   or the exact arbitrary-precision pairing function (Section 2.2);
//! * [`exact`] — the deterministic one-counter-per-pattern baseline the
//!   paper argues is infeasible at scale; doubles as ground truth for
//!   error measurement;
//! * [`markov`] — the classic Markov-table path-selectivity baseline
//!   (related-work comparator for the `repro paths` ablation);
//! * [`large`] — heuristic estimation of patterns *larger than k* by
//!   chain-rule decomposition (the paper's named future-work item);
//! * [`exprparse`] — text syntax for `+ − ×` count expressions
//!   (`COUNT_ord(A(B)) * COUNT(C) - …`, Section 4);
//! * [`query`] — a small text syntax for tree patterns
//!   (`A(B, C(D))`, `*`, `//`) with label resolution;
//! * [`unordered`] — expansion of an unordered pattern into all its
//!   distinct ordered arrangements (Section 3.3);
//! * [`summary`] — the online structural summary that rewrites `*` and `//`
//!   queries into sets of parent-child patterns (Section 6.2);
//! * [`sketchtree`] — [`sketchtree::SketchTree`], the full streaming
//!   synopsis: Algorithm 1 ingest, Algorithm 2 estimation, unordered
//!   counts, set counts, and `+ − ×` query expressions;
//! * [`bounds`] — Theorem 1 error profiles attached to estimates;
//! * [`concurrent`] — [`concurrent::SharedSketchTree`], a thread-safe
//!   handle for multi-reader / writer deployments;
//! * [`parallel`] — the std-only worker pool behind batch ingest:
//!   enumeration fan-out plus partition-sharded sketch insertion,
//!   bit-identical to sequential ingest at every thread count;
//! * [`snapshot`] — versioned binary persistence of a synopsis across
//!   restarts;
//! * [`window`] — [`window::WindowedSketchTree`], exact sliding-window
//!   counting over the last W trees (an extension enabled by AMS deletion).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod concurrent;
pub mod enumtree;
pub mod exact;
pub mod exprparse;
pub mod mapping;
pub mod metrics;
pub mod parallel;
pub mod large;
pub mod markov;
pub mod query;
pub mod sketchtree;
pub mod snapshot;
pub mod summary;
pub mod unordered;
pub mod window;

pub use bounds::BoundedEstimate;
pub use concurrent::SharedSketchTree;
pub use enumtree::{count_patterns, enumerate_patterns, EnumArena};
pub use exact::ExactCounter;
pub use exprparse::parse_expr;
pub use mapping::Mapper;
pub use metrics::{CoreMetrics, SketchHealth};
pub use parallel::{default_ingest_threads, IngestOptions};
pub use large::decompose as decompose_pattern;
pub use markov::MarkovPathTable;
pub use query::{parse_pattern, QueryError, QueryPattern};
pub use sketchtree::{EnumScratch, SketchTree, SketchTreeConfig};
pub use summary::StructuralSummary;
pub use window::WindowedSketchTree;
