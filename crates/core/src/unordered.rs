//! Unordered tree pattern counts — paper Section 3.3.
//!
//! `COUNT(Q)` (unordered) is the sum of `COUNT_ord(Q_i)` over all *distinct
//! ordered arrangements* `Q_i` of `Q` — Figure 4 of the paper shows a
//! pattern with four arrangements.  This module enumerates those
//! arrangements: at every node, each child subtree is independently
//! arranged, and the (arranged) children are permuted in every order, with
//! structural deduplication so identical sibling subtrees don't multiply
//! spuriously.  The estimator for the sum then comes from Theorem 2 via
//! `StreamSynopsis::estimate_total`.
//!
//! The number of arrangements is exponential in the worst case (`n!` for a
//! star with distinct children), so enumeration takes a hard cap and
//! reports [`ArrangementError::TooMany`] rather than silently blowing up.

use sketchtree_tree::Tree;
use std::collections::HashSet;
use std::fmt;

/// Error from [`arrangements`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrangementError {
    /// More distinct arrangements than the configured cap.
    TooMany {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for ArrangementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrangementError::TooMany { cap } => {
                write!(f, "pattern has more than {cap} distinct ordered arrangements")
            }
        }
    }
}

impl std::error::Error for ArrangementError {}

/// Enumerates all distinct ordered arrangements of `pattern`, including the
/// pattern itself.  Fails if more than `cap` arrangements exist.
///
/// ```
/// use sketchtree_core::unordered::arrangements;
/// use sketchtree_tree::{LabelTable, Tree};
/// let mut labels = LabelTable::new();
/// let (a, b, c) = (labels.intern("A"), labels.intern("B"), labels.intern("C"));
/// let q = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
/// assert_eq!(arrangements(&q, 10).unwrap().len(), 2); // A(B,C) and A(C,B)
/// ```
pub fn arrangements(pattern: &Tree, cap: usize) -> Result<Vec<Tree>, ArrangementError> {
    let out = arrange_node(pattern, pattern.root(), cap)?;
    Ok(out)
}

fn arrange_node(
    tree: &Tree,
    node: sketchtree_tree::NodeId,
    cap: usize,
) -> Result<Vec<Tree>, ArrangementError> {
    let label = tree.label(node);
    let children = tree.children(node);
    if children.is_empty() {
        return Ok(vec![Tree::leaf(label)]);
    }
    // Arrangements of each child subtree.
    let child_options: Vec<Vec<Tree>> = children
        .iter()
        .map(|&c| arrange_node(tree, c, cap))
        .collect::<Result<_, _>>()?;
    // Cartesian choice of one arrangement per child, then all distinct
    // permutations of the chosen multiset.
    let mut seen: HashSet<String> = HashSet::new();
    let mut out: Vec<Tree> = Vec::new();
    let mut choice_idx = vec![0usize; child_options.len()];
    loop {
        let chosen: Vec<&Tree> = child_options
            .iter()
            .zip(&choice_idx)
            .map(|(opts, &i)| &opts[i])
            .collect();
        permute_distinct(&chosen, &mut |perm| {
            let t = Tree::node(label, perm.iter().map(|x| (*x).clone()).collect());
            let key = t.to_sexpr();
            if seen.insert(key) {
                out.push(t);
            }
            // Check inside the callback: a single permute_distinct call on a
            // star pattern yields n! trees, so deferring the check to the end
            // of the choice iteration would enumerate (and allocate) them all
            // before ever noticing the cap.
            if out.len() > cap {
                return Err(ArrangementError::TooMany { cap });
            }
            Ok(())
        })?;
        // Advance the mixed-radix choice counter.
        let mut pos = 0;
        loop {
            if pos == choice_idx.len() {
                return Ok(out);
            }
            choice_idx[pos] += 1;
            if choice_idx[pos] < child_options[pos].len() {
                break;
            }
            choice_idx[pos] = 0;
            pos += 1;
        }
    }
}

/// Calls `f` on every distinct permutation of `items` (distinctness by
/// structural tree equality, detected via sorted duplicate skipping).
fn permute_distinct<'a>(
    items: &[&'a Tree],
    f: &mut impl FnMut(&[&'a Tree]) -> Result<(), ArrangementError>,
) -> Result<(), ArrangementError> {
    // Sort indices by a canonical key so equal subtrees are adjacent.
    let keys: Vec<String> = items.iter().map(|t| t.to_sexpr()).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    let sorted: Vec<&Tree> = order.iter().map(|&i| items[i]).collect();
    let sorted_keys: Vec<&String> = order.iter().map(|&i| &keys[i]).collect();
    let mut used = vec![false; items.len()];
    let mut current: Vec<&Tree> = Vec::with_capacity(items.len());
    fn rec<'a>(
        sorted: &[&'a Tree],
        keys: &[&String],
        used: &mut [bool],
        current: &mut Vec<&'a Tree>,
        f: &mut impl FnMut(&[&'a Tree]) -> Result<(), ArrangementError>,
    ) -> Result<(), ArrangementError> {
        if current.len() == sorted.len() {
            return f(current);
        }
        for i in 0..sorted.len() {
            if used[i] {
                continue;
            }
            // Skip duplicates: only use the first unused among equal runs.
            if i > 0 && keys[i] == keys[i - 1] && !used[i - 1] {
                continue;
            }
            used[i] = true;
            current.push(sorted[i]);
            rec(sorted, keys, used, current, f)?;
            current.pop();
            used[i] = false;
        }
        Ok(())
    }
    rec(&sorted, &sorted_keys, &mut used, &mut current, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_tree::{Label, LabelTable};

    fn labels() -> (LabelTable, Label, Label, Label, Label) {
        let mut t = LabelTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let c = t.intern("C");
        let d = t.intern("D");
        (t, a, b, c, d)
    }

    #[test]
    fn leaf_has_one_arrangement() {
        let (_, a, ..) = labels();
        let arr = arrangements(&Tree::leaf(a), 10).unwrap();
        assert_eq!(arr, vec![Tree::leaf(a)]);
    }

    #[test]
    fn two_distinct_children_swap() {
        let (_, a, b, c, _) = labels();
        let q = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c)]);
        let arr = arrangements(&q, 10).unwrap();
        assert_eq!(arr.len(), 2);
        assert!(arr.contains(&q));
        assert!(arr.contains(&Tree::node(a, vec![Tree::leaf(c), Tree::leaf(b)])));
    }

    #[test]
    fn identical_children_do_not_multiply() {
        let (_, a, b, ..) = labels();
        let q = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(b)]);
        let arr = arrangements(&q, 10).unwrap();
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn paper_figure4_four_arrangements() {
        // A pattern with exactly four distinct ordered arrangements:
        // root with a 2-arrangement child and one other child:
        // A(B(C,D), B') → 2 (inner) × 2 (outer order) = 4.
        let (_, a, b, c, d) = labels();
        let inner = Tree::node(b, vec![Tree::leaf(c), Tree::leaf(d)]);
        let q = Tree::node(a, vec![inner, Tree::leaf(c)]);
        let arr = arrangements(&q, 10).unwrap();
        assert_eq!(arr.len(), 4);
        // All arrangements are pairwise distinct.
        let set: HashSet<String> = arr.iter().map(|t| t.to_sexpr()).collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn three_distinct_children_six_orders() {
        let (_, a, b, c, d) = labels();
        let q = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(c), Tree::leaf(d)]);
        assert_eq!(arrangements(&q, 10).unwrap().len(), 6);
    }

    #[test]
    fn multiset_children_count() {
        // Children {B, B, C}: 3!/2! = 3 arrangements.
        let (_, a, b, c, _) = labels();
        let q = Tree::node(a, vec![Tree::leaf(b), Tree::leaf(b), Tree::leaf(c)]);
        assert_eq!(arrangements(&q, 10).unwrap().len(), 3);
    }

    #[test]
    fn nested_identical_subtrees_dedup_across_choices() {
        // Both children are X(Y,Z)-shaped with 2 arrangements each; choices
        // overlap structurally and must be deduplicated globally.
        let (_, a, b, c, d) = labels();
        let sub = || Tree::node(b, vec![Tree::leaf(c), Tree::leaf(d)]);
        let q = Tree::node(a, vec![sub(), sub()]);
        let arr = arrangements(&q, 100).unwrap();
        // Multiset of {2 arrangements} chosen twice: distinct ordered pairs
        // (x, y) with x,y ∈ {CD, DC} → 4 distinct ordered trees.
        assert_eq!(arr.len(), 4);
    }

    #[test]
    fn cap_enforced() {
        let (mut t, a, b, c, d) = labels();
        let e = t.intern("E");
        let q = Tree::node(
            a,
            vec![Tree::leaf(b), Tree::leaf(c), Tree::leaf(d), Tree::leaf(e)],
        );
        // 4! = 24 > 10.
        assert_eq!(
            arrangements(&q, 10),
            Err(ArrangementError::TooMany { cap: 10 })
        );
    }

    #[test]
    fn cap_aborts_mid_permutation_on_wide_star() {
        // A 12-leaf star with all-distinct children has 12! ≈ 4.8e8
        // arrangements.  The cap must abort inside the permutation
        // callback; checking only between choice iterations would try to
        // materialize all of them first (this test would then run for
        // minutes and allocate gigabytes rather than fail an assertion).
        let mut t = LabelTable::new();
        let root = t.intern("R");
        let leaves: Vec<Tree> = (0..12)
            .map(|i| Tree::leaf(t.intern(&format!("L{i}"))))
            .collect();
        let q = Tree::node(root, leaves);
        let start = std::time::Instant::now();
        assert_eq!(
            arrangements(&q, 100),
            Err(ArrangementError::TooMany { cap: 100 })
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cap must abort enumeration promptly, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn original_pattern_always_included() {
        let (_, a, b, c, d) = labels();
        let q = Tree::node(
            a,
            vec![Tree::node(b, vec![Tree::leaf(d)]), Tree::leaf(c)],
        );
        let arr = arrangements(&q, 100).unwrap();
        assert!(arr.contains(&q));
    }
}
