//! Markov-table path selectivity estimation — a classic baseline.
//!
//! The paper positions SketchTree against the selectivity-estimation
//! literature (StatiX, XSKETCHES, Bloom histograms — Section 8) and names
//! comparison with such summaries as future work.  The simplest member of
//! that family is the *Markov table* (Aboulnaga, Alameldeen & Naughton,
//! VLDB 2001): store exact counts of all label paths of length ≤ 2 and
//! estimate a longer path `a₁/a₂/…/aₙ` by the first-order chain rule
//!
//! ```text
//! count(a₁/…/aₙ) ≈ f(a₁,a₂) · Π_{i=2..n-1} f(aᵢ,aᵢ₊₁) / f(aᵢ)
//! ```
//!
//! It is cheap and deterministic, but it only answers *linear paths* —
//! no branching patterns, no arbitrary expressions — and its accuracy
//! rests on the (routinely false) Markov independence assumption.  The
//! `repro paths` ablation pits it against SketchTree on chain queries:
//! SketchTree answers a strictly larger query class from comparable
//! memory, while the Markov table wins on short paths it stores exactly.

use sketchtree_tree::{Label, Tree};
use std::collections::HashMap;

/// A first-order Markov table over label paths.
///
/// ```
/// use sketchtree_core::MarkovPathTable;
/// use sketchtree_tree::{LabelTable, Tree};
/// let mut labels = LabelTable::new();
/// let (a, b) = (labels.intern("A"), labels.intern("B"));
/// let mut m = MarkovPathTable::new();
/// m.observe(&Tree::node(a, vec![Tree::leaf(b)]));
/// assert_eq!(m.estimate_path(&[a, b]), 1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MarkovPathTable {
    /// `f(a)`: occurrences of label `a` as a node.
    unigrams: HashMap<Label, u64>,
    /// `f(a, b)`: occurrences of edge `a → b`.
    bigrams: HashMap<(Label, Label), u64>,
}

impl MarkovPathTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one tree into the table.
    pub fn observe(&mut self, tree: &Tree) {
        for id in tree.preorder() {
            *self.unigrams.entry(tree.label(id)).or_insert(0) += 1;
            if let Some(p) = tree.parent(id) {
                *self
                    .bigrams
                    .entry((tree.label(p), tree.label(id)))
                    .or_insert(0) += 1;
            }
        }
    }

    /// Exact count of a single label.
    pub fn unigram(&self, a: Label) -> u64 {
        self.unigrams.get(&a).copied().unwrap_or(0)
    }

    /// Exact count of a parent-child label pair.
    pub fn bigram(&self, a: Label, b: Label) -> u64 {
        self.bigrams.get(&(a, b)).copied().unwrap_or(0)
    }

    /// Estimates the number of occurrences of the label path
    /// `path[0]/path[1]/…` using the first-order chain rule.  Paths of
    /// length ≤ 2 are answered exactly.
    ///
    /// # Panics
    /// Panics on an empty path.
    pub fn estimate_path(&self, path: &[Label]) -> f64 {
        assert!(!path.is_empty(), "empty path");
        match path {
            [a] => self.unigram(*a) as f64,
            [a, b] => self.bigram(*a, *b) as f64,
            longer => {
                let mut est = self.bigram(longer[0], longer[1]) as f64;
                for w in longer[1..].windows(2) {
                    let denom = self.unigram(w[0]) as f64;
                    if denom == 0.0 {
                        return 0.0;
                    }
                    est *= self.bigram(w[0], w[1]) as f64 / denom;
                }
                est
            }
        }
    }

    /// Number of stored entries.
    pub fn entries(&self) -> usize {
        self.unigrams.len() + self.bigrams.len()
    }

    /// Memory footprint in bytes (keys + counters, map overhead excluded).
    pub fn memory_bytes(&self) -> usize {
        self.unigrams.len() * 12 + self.bigrams.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchtree_tree::LabelTable;

    fn labels() -> (LabelTable, Label, Label, Label, Label) {
        let mut t = LabelTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        let c = t.intern("C");
        let d = t.intern("D");
        (t, a, b, c, d)
    }

    #[test]
    fn unigrams_and_bigrams_exact() {
        let (_, a, b, c, _) = labels();
        let mut m = MarkovPathTable::new();
        // A(B(C), B)
        m.observe(&Tree::node(
            a,
            vec![Tree::node(b, vec![Tree::leaf(c)]), Tree::leaf(b)],
        ));
        assert_eq!(m.unigram(a), 1);
        assert_eq!(m.unigram(b), 2);
        assert_eq!(m.bigram(a, b), 2);
        assert_eq!(m.bigram(b, c), 1);
        assert_eq!(m.bigram(a, c), 0);
        assert_eq!(m.estimate_path(&[a]), 1.0);
        assert_eq!(m.estimate_path(&[a, b]), 2.0);
    }

    #[test]
    fn chain_rule_exact_when_markov_holds() {
        // In a pure chain corpus A→B→C repeated n times, the independence
        // assumption holds and the 3-path estimate is exact.
        let (_, a, b, c, _) = labels();
        let mut m = MarkovPathTable::new();
        let t = Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]);
        for _ in 0..25 {
            m.observe(&t);
        }
        // f(A,B)·f(B,C)/f(B) = 25·25/25 = 25.
        assert_eq!(m.estimate_path(&[a, b, c]), 25.0);
    }

    #[test]
    fn chain_rule_errs_when_correlated() {
        // Corpus: 10 × A(B(C)) and 10 × D(B) — B under A always has a C,
        // B under D never does. Markov smears: f(A,B)=10, f(B,C)=10,
        // f(B)=20 → estimate 5, truth 10.
        let (_, a, b, c, d) = labels();
        let mut m = MarkovPathTable::new();
        for _ in 0..10 {
            m.observe(&Tree::node(a, vec![Tree::node(b, vec![Tree::leaf(c)])]));
            m.observe(&Tree::node(d, vec![Tree::leaf(b)]));
        }
        assert_eq!(m.estimate_path(&[a, b, c]), 5.0);
    }

    #[test]
    fn zero_propagates() {
        let (_, a, b, c, d) = labels();
        let mut m = MarkovPathTable::new();
        m.observe(&Tree::node(a, vec![Tree::leaf(b)]));
        assert_eq!(m.estimate_path(&[a, b, c]), 0.0);
        assert_eq!(m.estimate_path(&[c, d]), 0.0);
        assert_eq!(m.estimate_path(&[a, b, c, d]), 0.0);
    }

    #[test]
    fn memory_and_entries() {
        let (_, a, b, ..) = labels();
        let mut m = MarkovPathTable::new();
        m.observe(&Tree::node(a, vec![Tree::leaf(b)]));
        assert_eq!(m.entries(), 3); // A, B, (A,B)
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    #[should_panic]
    fn empty_path_panics() {
        MarkovPathTable::new().estimate_path(&[]);
    }
}
