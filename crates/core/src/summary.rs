//! Online structural summary and `*` / `//` query rewriting.
//!
//! Paper Section 6.2: when a structural summary exists (or can be built
//! online in limited space), queries with wildcard nodes and
//! ancestor-descendant edges can be rewritten into *sets of parent-child
//! patterns* whose total frequency equals the original query's — and total
//! frequencies of distinct pattern sets are exactly what Theorem 2
//! estimates.  Figure 7 shows both rewrites: `*` resolves to the labels
//! observed in that position; `//` resolves to the label paths observed
//! between the two endpoints.
//!
//! The summary itself is a label-transition graph maintained in one pass:
//! which labels occur at all, and which `(parent-label, child-label)` edges
//! occur — space `O(|Σ|²)` worst case but `O(edges observed)` in practice,
//! exactly the kind of "limited space" structure the paper anticipates.

use crate::query::{EdgeKind, QueryLabel, QueryNode, QueryPattern};
use sketchtree_tree::{Label, LabelTable, Tree};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An online structural summary of the tree stream.
#[derive(Debug, Clone, Default)]
pub struct StructuralSummary {
    /// Labels observed anywhere.
    labels: HashSet<Label>,
    /// Observed parent-label → child-labels transitions.
    children: HashMap<Label, HashSet<Label>>,
    /// Bumped only when a genuinely new label or transition is absorbed —
    /// the invalidation signal for compiled query expansions.  On a steady
    /// stream this counter goes quiet after the schema has been seen once,
    /// so standing queries stop re-expanding entirely.
    version: u64,
}

/// Errors from query expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandError {
    /// Expansion produced more than the configured number of patterns.
    TooManyPatterns {
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::TooManyPatterns { cap } => {
                write!(f, "query expands to more than {cap} concrete patterns")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// Expansion limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpandLimits {
    /// Maximum number of concrete patterns an expansion may produce.
    pub max_patterns: usize,
    /// Maximum number of *intermediate* labels a `//` edge may traverse.
    pub max_descendant_depth: usize,
}

impl Default for ExpandLimits {
    fn default() -> Self {
        Self {
            max_patterns: 4096,
            max_descendant_depth: 8,
        }
    }
}

impl StructuralSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one tree into the summary.
    pub fn observe(&mut self, tree: &Tree) {
        for id in tree.preorder() {
            let l = tree.label(id);
            if self.labels.insert(l) {
                self.version += 1;
            }
            if let Some(p) = tree.parent(id) {
                if self.children.entry(tree.label(p)).or_default().insert(l) {
                    self.version += 1;
                }
            }
        }
    }

    /// The summary's structure version: bumped exactly when a new label or
    /// parent-child transition is observed (never on re-observations), so
    /// an unchanged version guarantees [`StructuralSummary::expand`]
    /// returns the same pattern set it did before.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of distinct labels observed.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct parent-child label transitions observed.
    pub fn transition_count(&self) -> usize {
        self.children.values().map(HashSet::len).sum()
    }

    /// True if the transition `parent → child` has been observed.
    pub fn has_transition(&self, parent: Label, child: Label) -> bool {
        self.children.get(&parent).is_some_and(|s| s.contains(&child))
    }

    /// Memory footprint estimate in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.labels.len() * 4 + self.transition_count() * 8
    }

    /// Exports the summary as sorted label and transition lists (for
    /// snapshots; deterministic order).
    pub fn export(&self) -> (Vec<Label>, Vec<(Label, Label)>) {
        let mut labels: Vec<Label> = self.labels.iter().copied().collect();
        labels.sort_unstable();
        let mut transitions: Vec<(Label, Label)> = self
            .children
            .iter()
            .flat_map(|(&p, cs)| cs.iter().map(move |&c| (p, c)))
            .collect();
        transitions.sort_unstable();
        (labels, transitions)
    }

    /// Rebuilds a summary from exported parts.
    pub fn from_parts(labels: Vec<Label>, transitions: Vec<(Label, Label)>) -> Self {
        let mut s = Self::new();
        s.labels = labels.into_iter().collect();
        for (p, c) in transitions {
            s.labels.insert(p);
            s.labels.insert(c);
            s.children.entry(p).or_default().insert(c);
        }
        // A rebuilt summary is new structure as far as any compiled plan
        // is concerned.
        s.version = (s.labels.len() + s.transition_count()) as u64;
        s
    }

    /// Merges another summary into this one, passing every label of the
    /// other side through `remap` first.  The remap is how a synopsis
    /// merge reconciles label tables that interned the same names in
    /// different orders: ids are table-local, names are not, so the
    /// caller maps `other`'s id → name → this table's id.  Skipping the
    /// remap would silently cross-wire transitions between unrelated
    /// labels.
    pub fn merge_remapped(&mut self, other: &StructuralSummary, mut remap: impl FnMut(Label) -> Label) {
        for &l in &other.labels {
            if self.labels.insert(remap(l)) {
                self.version += 1;
            }
        }
        for (&p, cs) in &other.children {
            let p = remap(p);
            let entry = self.children.entry(p).or_default();
            for &c in cs {
                if entry.insert(remap(c)) {
                    self.version += 1;
                }
            }
        }
    }

    fn children_of(&self, l: Label) -> impl Iterator<Item = Label> + '_ {
        self.children.get(&l).into_iter().flatten().copied()
    }

    /// Rewrites a query with `*` / `//` into the set of *distinct*
    /// parent-child-only patterns it denotes under this summary
    /// (Section 6.2).  Simple queries expand to themselves.  Labels never
    /// observed yield an empty set (exact count 0).
    pub fn expand(
        &self,
        query: &QueryPattern,
        labels: &LabelTable,
        limits: ExpandLimits,
    ) -> Result<Vec<Tree>, ExpandError> {
        // Candidate labels for the root.
        let root_labels: Vec<Label> = match &query.root.label {
            QueryLabel::Wildcard => self.labels.iter().copied().collect(),
            QueryLabel::Name(n) => match labels.lookup(n) {
                Some(l) if self.labels.contains(&l) => vec![l],
                _ => return Ok(Vec::new()),
            },
        };
        let mut out: Vec<Tree> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        for rl in root_labels {
            let subtrees = self.expand_children(rl, &query.root.children, labels, limits)?;
            for t in subtrees {
                let full = if t.is_empty() {
                    Tree::leaf(rl)
                } else {
                    Tree::node(rl, t)
                };
                if seen.insert(full.to_sexpr()) {
                    out.push(full);
                    if out.len() > limits.max_patterns {
                        return Err(ExpandError::TooManyPatterns {
                            cap: limits.max_patterns,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// All ways to concretise `children` under a parent with label
    /// `parent`: returns a list of child-subtree-vectors.
    fn expand_children(
        &self,
        parent: Label,
        children: &[QueryNode],
        labels: &LabelTable,
        limits: ExpandLimits,
    ) -> Result<Vec<Vec<Tree>>, ExpandError> {
        // Options per query child.
        let mut per_child: Vec<Vec<Tree>> = Vec::with_capacity(children.len());
        for qc in children {
            let opts = self.expand_child(parent, qc, labels, limits)?;
            if opts.is_empty() {
                return Ok(Vec::new()); // some child is unsatisfiable
            }
            per_child.push(opts);
        }
        // Cartesian product.
        let mut combos: Vec<Vec<Tree>> = vec![Vec::new()];
        for opts in &per_child {
            let mut next = Vec::with_capacity(combos.len() * opts.len());
            for c in &combos {
                for o in opts {
                    let mut v = c.clone();
                    v.push(o.clone());
                    next.push(v);
                }
                if next.len() > limits.max_patterns {
                    return Err(ExpandError::TooManyPatterns {
                        cap: limits.max_patterns,
                    });
                }
            }
            combos = next;
        }
        Ok(combos)
    }

    /// All concrete subtrees a single query child can denote under
    /// `parent`, including any `//` chain of intermediate labels.
    fn expand_child(
        &self,
        parent: Label,
        qc: &QueryNode,
        labels: &LabelTable,
        limits: ExpandLimits,
    ) -> Result<Vec<Tree>, ExpandError> {
        // Resolve the child's own label candidates (ignoring the edge).
        let target: Option<Label> = match &qc.label {
            QueryLabel::Wildcard => None, // any
            QueryLabel::Name(n) => match labels.lookup(n) {
                Some(l) => Some(l),
                None => return Ok(Vec::new()),
            },
        };
        let mut out = Vec::new();
        match qc.edge {
            EdgeKind::Child => {
                for cl in self.children_of(parent) {
                    if target.is_some_and(|t| t != cl) {
                        continue;
                    }
                    for subtree in self.expand_children(cl, &qc.children, labels, limits)? {
                        out.push(if subtree.is_empty() {
                            Tree::leaf(cl)
                        } else {
                            Tree::node(cl, subtree)
                        });
                        if out.len() > limits.max_patterns {
                            return Err(ExpandError::TooManyPatterns {
                                cap: limits.max_patterns,
                            });
                        }
                    }
                }
            }
            EdgeKind::Descendant => {
                // Paths parent → i1 → … → i_d → target with d intermediates,
                // 0 ≤ d ≤ max_descendant_depth.
                let mut stack: Vec<(Label, Vec<Label>)> = self
                    .children_of(parent)
                    .map(|c| (c, Vec::new()))
                    .collect();
                while let Some((cur, path)) = stack.pop() {
                    let matches = target.is_none_or(|t| t == cur);
                    if matches {
                        for subtree in self.expand_children(cur, &qc.children, labels, limits)? {
                            let leafward = if subtree.is_empty() {
                                Tree::leaf(cur)
                            } else {
                                Tree::node(cur, subtree)
                            };
                            // Wrap in the chain of intermediates, innermost
                            // last.
                            let mut t = leafward;
                            for &mid in path.iter().rev() {
                                t = Tree::node(mid, vec![t]);
                            }
                            out.push(t);
                            if out.len() > limits.max_patterns {
                                return Err(ExpandError::TooManyPatterns {
                                    cap: limits.max_patterns,
                                });
                            }
                        }
                    }
                    if path.len() < limits.max_descendant_depth {
                        for next in self.children_of(cur) {
                            // Avoid label cycles blowing the walk up: a path
                            // may not revisit a label.
                            if path.contains(&next) || next == cur {
                                continue;
                            }
                            let mut p = path.clone();
                            p.push(cur);
                            stack.push((next, p));
                        }
                    }
                }
            }
        }
        // Deduplicate structurally (different paths can produce the same
        // concrete pattern only via dedup at the top level, but duplicate
        // subtrees here would multiply, so dedup early).
        let mut seen = HashSet::new();
        out.retain(|t| seen.insert(t.to_sexpr()));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_pattern;

    /// Builds the paper's Figure 7(a) structural summary:
    /// A → {B, C}, B → {D}, C → {D}.
    fn figure7() -> (StructuralSummary, LabelTable) {
        let mut labels = LabelTable::new();
        let a = labels.intern("A");
        let b = labels.intern("B");
        let c = labels.intern("C");
        let d = labels.intern("D");
        let t1 = Tree::node(
            a,
            vec![
                Tree::node(b, vec![Tree::leaf(d)]),
                Tree::node(c, vec![Tree::leaf(d)]),
            ],
        );
        let mut s = StructuralSummary::new();
        s.observe(&t1);
        (s, labels)
    }

    #[test]
    fn observe_collects_labels_and_transitions() {
        let (s, labels) = figure7();
        assert_eq!(s.label_count(), 4);
        assert_eq!(s.transition_count(), 4);
        let a = labels.lookup("A").unwrap();
        let b = labels.lookup("B").unwrap();
        let d = labels.lookup("D").unwrap();
        assert!(s.has_transition(a, b));
        assert!(s.has_transition(b, d));
        assert!(!s.has_transition(d, a));
    }

    #[test]
    fn simple_query_expands_to_itself() {
        let (s, labels) = figure7();
        let q = parse_pattern("A(B)").unwrap();
        let pats = s.expand(&q, &labels, ExpandLimits::default()).unwrap();
        assert_eq!(pats.len(), 1);
        assert_eq!(pats[0].to_sexpr_named(&labels), "A(B)");
    }

    #[test]
    fn paper_figure7b_wildcard() {
        // Q1 = A(*(D)): '*' resolves to B and C → two distinct patterns.
        let (s, labels) = figure7();
        let q = parse_pattern("A(*(D))").unwrap();
        let mut pats: Vec<String> = s
            .expand(&q, &labels, ExpandLimits::default())
            .unwrap()
            .iter()
            .map(|t| t.to_sexpr_named(&labels))
            .collect();
        pats.sort();
        assert_eq!(pats, vec!["A(B(D))", "A(C(D))"]);
    }

    #[test]
    fn paper_figure7c_descendant() {
        // Q2 = A(//D): '//' resolves through B and through C.
        let (s, labels) = figure7();
        let q = parse_pattern("A(//D)").unwrap();
        let mut pats: Vec<String> = s
            .expand(&q, &labels, ExpandLimits::default())
            .unwrap()
            .iter()
            .map(|t| t.to_sexpr_named(&labels))
            .collect();
        pats.sort();
        assert_eq!(pats, vec!["A(B(D))", "A(C(D))"]);
    }

    #[test]
    fn unknown_label_yields_empty() {
        let (s, labels) = figure7();
        let q = parse_pattern("A(ZZZ)").unwrap();
        assert!(s.expand(&q, &labels, ExpandLimits::default()).unwrap().is_empty());
    }

    #[test]
    fn unobserved_transition_yields_empty() {
        let (s, labels) = figure7();
        // D never has children in the summary.
        let q = parse_pattern("D(A)").unwrap();
        assert!(s.expand(&q, &labels, ExpandLimits::default()).unwrap().is_empty());
    }

    #[test]
    fn wildcard_root() {
        let (s, labels) = figure7();
        let q = parse_pattern("*(D)").unwrap();
        let mut pats: Vec<String> = s
            .expand(&q, &labels, ExpandLimits::default())
            .unwrap()
            .iter()
            .map(|t| t.to_sexpr_named(&labels))
            .collect();
        pats.sort();
        assert_eq!(pats, vec!["B(D)", "C(D)"]);
    }

    #[test]
    fn descendant_depth_limit() {
        // Chain A → B → C → D; query A(//D) with depth 0 intermediates
        // finds nothing, with depth 2 finds the chain.
        let mut labels = LabelTable::new();
        let a = labels.intern("A");
        let b = labels.intern("B");
        let c = labels.intern("C");
        let d = labels.intern("D");
        let t = Tree::node(
            a,
            vec![Tree::node(b, vec![Tree::node(c, vec![Tree::leaf(d)])])],
        );
        let mut s = StructuralSummary::new();
        s.observe(&t);
        let q = parse_pattern("A(//D)").unwrap();
        let shallow = s
            .expand(
                &q,
                &labels,
                ExpandLimits {
                    max_descendant_depth: 0,
                    ..ExpandLimits::default()
                },
            )
            .unwrap();
        assert!(shallow.is_empty());
        let deep = s
            .expand(
                &q,
                &labels,
                ExpandLimits {
                    max_descendant_depth: 2,
                    ..ExpandLimits::default()
                },
            )
            .unwrap();
        assert_eq!(deep.len(), 1);
        assert_eq!(deep[0].to_sexpr_named(&labels), "A(B(C(D)))");
    }

    #[test]
    fn expansion_cap_enforced() {
        // A summary with many labels under one parent; a double wildcard
        // explodes combinatorially.
        let mut labels = LabelTable::new();
        let root = labels.intern("R");
        let kids: Vec<Tree> = (0..30)
            .map(|i| Tree::leaf(labels.intern(&format!("c{i}"))))
            .collect();
        let t = Tree::node(root, kids);
        let mut s = StructuralSummary::new();
        s.observe(&t);
        let q = parse_pattern("R(*,*)").unwrap();
        let r = s.expand(
            &q,
            &labels,
            ExpandLimits {
                max_patterns: 100,
                ..ExpandLimits::default()
            },
        );
        assert_eq!(r, Err(ExpandError::TooManyPatterns { cap: 100 }));
    }

    #[test]
    fn export_import_roundtrip() {
        let (s, labels) = figure7();
        let (ls, ts) = s.export();
        let rebuilt = StructuralSummary::from_parts(ls.clone(), ts.clone());
        assert_eq!(rebuilt.label_count(), s.label_count());
        assert_eq!(rebuilt.transition_count(), s.transition_count());
        // Expansion behaviour is identical.
        let q = parse_pattern("A(*(D))").unwrap();
        let a: Vec<String> = s
            .expand(&q, &labels, ExpandLimits::default())
            .unwrap()
            .iter()
            .map(|t| t.to_sexpr())
            .collect();
        let b: Vec<String> = rebuilt
            .expand(&q, &labels, ExpandLimits::default())
            .unwrap()
            .iter()
            .map(|t| t.to_sexpr())
            .collect();
        let (mut a, mut b) = (a, b);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Export order is deterministic.
        assert_eq!(s.export(), (ls, ts));
    }

    #[test]
    fn multiple_trees_union_summary() {
        let mut labels = LabelTable::new();
        let a = labels.intern("A");
        let b = labels.intern("B");
        let c = labels.intern("C");
        let mut s = StructuralSummary::new();
        s.observe(&Tree::node(a, vec![Tree::leaf(b)]));
        s.observe(&Tree::node(a, vec![Tree::leaf(c)]));
        let q = parse_pattern("A(*)").unwrap();
        assert_eq!(s.expand(&q, &labels, ExpandLimits::default()).unwrap().len(), 2);
    }
}
