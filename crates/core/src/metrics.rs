//! Instrumentation hooks for the ingest/query pipeline.
//!
//! [`CoreMetrics`] bundles the handles a [`crate::SketchTree`] updates when
//! one is attached via [`crate::SketchTree::attach_metrics`]: per-stage
//! latency histograms (fused ingest, enumeration-only, sketch-insert-only),
//! ingest throughput counters, and per-kind query counters/latencies.  All
//! handles are pre-registered `Arc`s from `sketchtree-metrics`, so the hot
//! path pays one relaxed atomic RMW per event and never takes a lock.
//!
//! [`SketchHealth`] is the scrape-time snapshot of the synopsis' internal
//! state — counter fill, top-k occupancy, virtual-stream partition balance
//! and the estimator-variance proxy — that the server's `/metrics` endpoint
//! turns into gauges.  See `docs/observability.md` for how each field maps
//! onto the paper's Theorem 1/2 error bounds.

use sketchtree_metrics::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS};
use std::sync::Arc;

/// Pre-registered metric handles for the core pipeline.
///
/// Construct with [`CoreMetrics::register`] against the registry whose
/// exposition should carry these series, then attach to a synopsis with
/// [`crate::SketchTree::attach_metrics`].  A `SketchTree` without attached
/// metrics (the default) skips every instrumentation branch.
#[derive(Debug)]
pub struct CoreMetrics {
    /// Trees ingested (`sketchtree_ingest_trees_total`).
    pub ingest_trees: Arc<Counter>,
    /// Pattern instances inserted into the sketch
    /// (`sketchtree_ingest_patterns_total`).
    pub ingest_patterns: Arc<Counter>,
    /// Wall-clock seconds per fused [`crate::SketchTree::ingest`] call —
    /// enumeration, Prüfer encoding, fingerprint mapping and sketch update
    /// in one measurement (`sketchtree_ingest_seconds`).
    pub ingest_seconds: Arc<Histogram>,
    /// Seconds per [`crate::SketchTree::enumerate_values`] call — the
    /// read-only enumerate/encode/map half of Algorithm 1
    /// (`sketchtree_enumerate_seconds`).
    pub enumerate_seconds: Arc<Histogram>,
    /// Seconds per [`crate::SketchTree::ingest_precomputed`] call — the
    /// sketch-update half (`sketchtree_sketch_insert_seconds`).
    pub insert_seconds: Arc<Histogram>,
    /// Seconds each virtual-stream shard spent applying its partition's
    /// value queue during a sharded batch insert
    /// (`sketchtree_shard_insert_seconds`).  One observation per non-empty
    /// shard per batch; a long tail here means a hot partition is
    /// bounding batch latency (routing is `value mod p`, so a skewed
    /// pattern population lands on one shard).
    pub shard_insert_seconds: Arc<Histogram>,
    /// Trees awaiting enumeration in the current batch
    /// (`sketchtree_ingest_queue_depth`) — the worker pool's unclaimed
    /// backlog, zero when idle.
    pub ingest_queue_depth: Arc<Gauge>,
    /// Ordered-count queries (`sketchtree_query_total{kind="ordered"}`).
    pub query_ordered: Arc<Counter>,
    /// Unordered-count queries (`sketchtree_query_total{kind="unordered"}`).
    pub query_unordered: Arc<Counter>,
    /// Expression evaluations (`sketchtree_query_total{kind="expr"}`).
    pub query_expr: Arc<Counter>,
    /// Ordered-query latency (`sketchtree_query_seconds{kind="ordered"}`).
    pub query_ordered_seconds: Arc<Histogram>,
    /// Unordered-query latency — includes the arrangement fan-out
    /// (`sketchtree_query_seconds{kind="unordered"}`).
    pub query_unordered_seconds: Arc<Histogram>,
    /// Expression-evaluation latency
    /// (`sketchtree_query_seconds{kind="expr"}`).
    pub query_expr_seconds: Arc<Histogram>,
    /// Queries that returned an error (`sketchtree_query_errors_total`).
    pub query_errors: Arc<Counter>,
    /// Distinct mapped atoms evaluated across all queries — the Theorem 2
    /// fan-out width (`sketchtree_query_atoms_total`).
    pub query_atoms: Arc<Counter>,
}

impl CoreMetrics {
    /// Registers every core-pipeline series in `registry` and returns the
    /// handle bundle.
    pub fn register(registry: &Registry) -> Arc<Self> {
        let query_total = |kind: &str| {
            registry.counter_with(
                "sketchtree_query_total",
                "Pattern-count queries answered, by query kind",
                &[("kind", kind)],
            )
        };
        let query_seconds = |kind: &str| {
            registry.histogram_with(
                "sketchtree_query_seconds",
                "Query latency in seconds, by query kind",
                LATENCY_BUCKETS,
                &[("kind", kind)],
            )
        };
        Arc::new(Self {
            ingest_trees: registry.counter(
                "sketchtree_ingest_trees_total",
                "Data trees ingested into the synopsis",
            ),
            ingest_patterns: registry.counter(
                "sketchtree_ingest_patterns_total",
                "Pattern instances inserted into the sketch (mapped-stream length)",
            ),
            ingest_seconds: registry.histogram(
                "sketchtree_ingest_seconds",
                "Seconds per fused ingest (enumerate + encode + map + sketch update)",
                LATENCY_BUCKETS,
            ),
            enumerate_seconds: registry.histogram(
                "sketchtree_enumerate_seconds",
                "Seconds per enumerate_values call (read-only half of Algorithm 1)",
                LATENCY_BUCKETS,
            ),
            insert_seconds: registry.histogram(
                "sketchtree_sketch_insert_seconds",
                "Seconds per precomputed-value sketch insertion (write half of Algorithm 1)",
                LATENCY_BUCKETS,
            ),
            shard_insert_seconds: registry.histogram(
                "sketchtree_shard_insert_seconds",
                "Seconds per virtual-stream shard applying its partition queue in a sharded batch",
                LATENCY_BUCKETS,
            ),
            ingest_queue_depth: registry.gauge(
                "sketchtree_ingest_queue_depth",
                "Trees awaiting enumeration in the current ingest batch",
            ),
            query_ordered: query_total("ordered"),
            query_unordered: query_total("unordered"),
            query_expr: query_total("expr"),
            query_ordered_seconds: query_seconds("ordered"),
            query_unordered_seconds: query_seconds("unordered"),
            query_expr_seconds: query_seconds("expr"),
            query_errors: registry.counter(
                "sketchtree_query_errors_total",
                "Queries that returned an error (parse, expansion, estimator)",
            ),
            query_atoms: registry.counter(
                "sketchtree_query_atoms_total",
                "Distinct mapped atoms evaluated across all queries (Theorem 2 fan-out)",
            ),
        })
    }
}

/// A scrape-time snapshot of synopsis health.
///
/// Produced by [`crate::SketchTree::sketch_health`]; every field is cheap to
/// compute relative to a scrape (the group-mean pass is `O(s1·s2·p)` over
/// in-memory counters).  The observability handbook explains how to read
/// these against the paper's error bounds: the residual self-join drives the
/// Theorem 1 standard error, and the estimator spread is an empirical proxy
/// for the variance the `s2`-way median is suppressing.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchHealth {
    /// Sketch counters with a nonzero value.
    pub counters_nonzero: u64,
    /// Total sketch counters (`virtual_streams × s1 × s2`).
    pub counters_total: u64,
    /// Values currently tracked by the top-k heavy-hitter strategy.
    pub topk_tracked: u64,
    /// Total top-k slots (`virtual_streams × k`).
    pub topk_capacity: u64,
    /// Inserts routed to each virtual-stream partition since startup
    /// (monitoring counts — reset on restore).
    pub partition_inserts: Vec<u64>,
    /// Pattern values processed by the synopsis since its state began.
    pub values_processed: u64,
    /// Estimated residual self-join size `SJ(S)` of the sketched stream —
    /// the quantity inside the Theorem 1 error bound.
    pub residual_self_join: f64,
    /// Relative spread of the `s2` independent group-mean estimates of
    /// `SJ(S)` — an empirical proxy for estimator variance.
    pub estimator_spread: f64,
    /// Synopsis memory in bytes (counters + seeds + top-k + summary).
    pub memory_bytes: u64,
    /// Trees ingested.
    pub trees_processed: u64,
    /// Pattern instances processed.
    pub patterns_processed: u64,
    /// Distinct labels interned.
    pub labels: u64,
}

/// Relative spread `(max − min) / max(|median|, 1)` of a set of estimates.
///
/// Used as the estimator-variance proxy: the `s2` group means are
/// independent estimates of the same quantity, so a wide spread means the
/// median-of-means boosting is working hard and individual estimates are
/// noisy.  The `max(·, 1)` floor keeps the ratio meaningful when the
/// median is near zero (e.g. an empty synopsis).
pub fn relative_spread(estimates: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = estimates.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(f64::total_cmp);
    let min = sorted.first().copied().unwrap_or(0.0);
    let max = sorted.last().copied().unwrap_or(0.0);
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    (max - min) / median.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_creates_all_series() {
        let reg = Registry::new();
        let m = CoreMetrics::register(&reg);
        m.ingest_trees.inc();
        m.query_ordered.inc();
        m.query_ordered_seconds.observe(0.001);
        let text = reg.render_text();
        assert!(text.contains("sketchtree_ingest_trees_total 1"));
        assert!(text.contains("sketchtree_query_total{kind=\"ordered\"} 1"));
        assert!(text.contains("sketchtree_query_seconds_count{kind=\"ordered\"} 1"));
        // All three kinds share one family (HELP/TYPE appear once).
        assert_eq!(text.matches("# TYPE sketchtree_query_total").count(), 1);
    }

    #[test]
    fn relative_spread_behaves() {
        assert_eq!(relative_spread(&[]), 0.0);
        assert_eq!(relative_spread(&[5.0]), 0.0);
        // Median 10, spread (12-8)/10 = 0.4.
        assert!((relative_spread(&[8.0, 10.0, 12.0]) - 0.4).abs() < 1e-12);
        // Near-zero median: floored denominator.
        assert_eq!(relative_spread(&[0.0, 0.5]), 0.5);
        // Non-finite estimates are ignored.
        assert!((relative_spread(&[8.0, f64::NAN, 10.0, 12.0]) - 0.4).abs() < 1e-12);
    }
}
